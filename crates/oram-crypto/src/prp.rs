//! Format-preserving pseudo-random permutation over an arbitrary domain.
//!
//! The square-root-style storage layer of H-ORAM stores `N` blocks at
//! permuted physical positions. The initial permutation (and the one applied
//! after every full reshuffle) is realised here as a **cycle-walking Feistel
//! network**: a balanced Feistel cipher over `2b`-bit values (the smallest
//! even-bit width covering the domain) is iterated until the output lands
//! back inside `[0, n)`. Each round function is SipHash-2-4 under an
//! independently derived round key, giving a keyed bijection whose forward
//! and inverse evaluations are O(expected 1–4 Feistel passes).

use crate::prf::Prf;
use crate::siphash::siphash24;
use crate::CryptoError;

/// Number of Feistel rounds per pass.
///
/// Four rounds of a Feistel network with independent PRF round functions are
/// a strong PRP (Luby–Rackoff); we use six for margin, which is still cheap.
const ROUNDS: usize = 6;

/// A keyed pseudo-random permutation on `[0, domain)`.
///
/// # Example
///
/// ```
/// use oram_crypto::prp::FeistelPrp;
///
/// # fn main() -> Result<(), oram_crypto::CryptoError> {
/// let prp = FeistelPrp::new([1u8; 16], 1000)?;
/// let y = prp.permute(123)?;
/// assert!(y < 1000);
/// assert_eq!(prp.invert(y)?, 123);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FeistelPrp {
    domain: u64,
    /// Bits in each Feistel half.
    half_bits: u32,
    round_keys: [[u8; 16]; ROUNDS],
}

impl FeistelPrp {
    /// Creates a permutation on `[0, domain)` keyed by `key`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::EmptyDomain`] if `domain == 0`.
    pub fn new(key: [u8; 16], domain: u64) -> Result<Self, CryptoError> {
        if domain == 0 {
            return Err(CryptoError::EmptyDomain);
        }
        // Smallest b with 2^(2b) >= domain; at least 1 so halves are non-trivial.
        let total_bits = 64 - (domain - 1).leading_zeros();
        let half_bits = total_bits.div_ceil(2).max(1);
        let prf = Prf::new(key);
        let mut round_keys = [[0u8; 16]; ROUNDS];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = prf.subkey("feistel-round", i as u64);
        }
        Ok(Self {
            domain,
            half_bits,
            round_keys,
        })
    }

    /// The size of the permuted domain.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Applies the permutation: `x -> π(x)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::OutOfDomain`] if `x >= domain`.
    pub fn permute(&self, x: u64) -> Result<u64, CryptoError> {
        self.check(x)?;
        let mut value = x;
        // Cycle-walk: the Feistel cipher permutes [0, 2^(2b)); iterate until
        // the image lies inside [0, domain). Termination is guaranteed
        // because the cipher is a bijection on the covering set.
        loop {
            value = self.encrypt_once(value);
            if value < self.domain {
                return Ok(value);
            }
        }
    }

    /// Applies the inverse permutation: `y -> π⁻¹(y)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::OutOfDomain`] if `y >= domain`.
    pub fn invert(&self, y: u64) -> Result<u64, CryptoError> {
        self.check(y)?;
        let mut value = y;
        loop {
            value = self.decrypt_once(value);
            if value < self.domain {
                return Ok(value);
            }
        }
    }

    fn check(&self, v: u64) -> Result<(), CryptoError> {
        if v >= self.domain {
            Err(CryptoError::OutOfDomain {
                value: v,
                domain: self.domain,
            })
        } else {
            Ok(())
        }
    }

    fn half_mask(&self) -> u64 {
        (1u64 << self.half_bits) - 1
    }

    fn round_fn(&self, round: usize, half: u64) -> u64 {
        siphash24(&self.round_keys[round], &half.to_le_bytes()) & self.half_mask()
    }

    fn encrypt_once(&self, x: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for round in 0..ROUNDS {
            let new_left = right;
            let new_right = left ^ self.round_fn(round, right);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    fn decrypt_once(&self, y: u64) -> u64 {
        let mask = self.half_mask();
        let mut left = (y >> self.half_bits) & mask;
        let mut right = y & mask;
        for round in (0..ROUNDS).rev() {
            let prev_right = left;
            let prev_left = right ^ self.round_fn(round, prev_right);
            left = prev_left;
            right = prev_right;
        }
        (left << self.half_bits) | right
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn empty_domain_is_rejected() {
        assert_eq!(
            FeistelPrp::new([0u8; 16], 0).unwrap_err(),
            CryptoError::EmptyDomain
        );
    }

    #[test]
    fn domain_one_is_identity() {
        let prp = FeistelPrp::new([0u8; 16], 1).unwrap();
        assert_eq!(prp.permute(0).unwrap(), 0);
        assert_eq!(prp.invert(0).unwrap(), 0);
    }

    #[test]
    fn out_of_domain_is_rejected() {
        let prp = FeistelPrp::new([0u8; 16], 10).unwrap();
        assert!(matches!(
            prp.permute(10),
            Err(CryptoError::OutOfDomain {
                value: 10,
                domain: 10
            })
        ));
        assert!(matches!(
            prp.invert(11),
            Err(CryptoError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn small_domain_is_bijective() {
        for domain in [1u64, 2, 3, 7, 8, 100, 257, 1000] {
            let prp = FeistelPrp::new([7u8; 16], domain).unwrap();
            let mut seen = HashSet::new();
            for x in 0..domain {
                let y = prp.permute(x).unwrap();
                assert!(y < domain, "image out of domain");
                assert!(seen.insert(y), "collision at x={x} in domain {domain}");
                assert_eq!(prp.invert(y).unwrap(), x, "inverse broken at x={x}");
            }
            assert_eq!(seen.len() as u64, domain);
        }
    }

    #[test]
    fn different_keys_give_different_permutations() {
        let a = FeistelPrp::new([1u8; 16], 1 << 12).unwrap();
        let b = FeistelPrp::new([2u8; 16], 1 << 12).unwrap();
        let differing = (0..1u64 << 12)
            .filter(|&x| a.permute(x).unwrap() != b.permute(x).unwrap())
            .count();
        // Two random permutations of 4096 elements agree on ~1 point.
        assert!(
            differing > 4000,
            "permutations too similar: {differing} differences"
        );
    }

    #[test]
    fn permutation_looks_random_not_structured() {
        // A PRP should not preserve intervals: check that images of a small
        // interval are spread out.
        let prp = FeistelPrp::new([9u8; 16], 1 << 16).unwrap();
        let images: Vec<u64> = (0..32).map(|x| prp.permute(x).unwrap()).collect();
        let min = *images.iter().min().unwrap();
        let max = *images.iter().max().unwrap();
        assert!(max - min > 1 << 12, "images clustered: span {}", max - min);
    }

    #[test]
    fn non_power_of_two_cycle_walking_terminates_and_is_bijective() {
        // Awkward domain just above a power of two maximizes cycle-walking.
        let domain = (1u64 << 10) + 1;
        let prp = FeistelPrp::new([3u8; 16], domain).unwrap();
        let mut seen = HashSet::new();
        for x in 0..domain {
            let y = prp.permute(x).unwrap();
            assert!(seen.insert(y));
            assert_eq!(prp.invert(y).unwrap(), x);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_on_arbitrary_domains(key in any::<[u8; 16]>(), domain in 1u64..100_000, x_seed in any::<u64>()) {
            let prp = FeistelPrp::new(key, domain).unwrap();
            let x = x_seed % domain;
            let y = prp.permute(x).unwrap();
            prop_assert!(y < domain);
            prop_assert_eq!(prp.invert(y).unwrap(), x);
        }

        #[test]
        fn large_domain_roundtrip(key in any::<[u8; 16]>(), x in any::<u64>()) {
            // Domain near u64::MAX exercises the widest Feistel halves.
            let domain = u64::MAX - 1;
            let prp = FeistelPrp::new(key, domain).unwrap();
            let x = x % domain;
            let y = prp.permute(x).unwrap();
            prop_assert_eq!(prp.invert(y).unwrap(), x);
        }
    }
}

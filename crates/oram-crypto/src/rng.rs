//! Deterministic ChaCha20-based randomness source.
//!
//! Every stochastic choice in the reproduction — leaf remapping, workload
//! generation, shuffle permutations — flows through [`DeterministicRng`], so
//! a whole experiment is replayable from a single seed. The generator is the
//! ChaCha20 keystream over an all-zero nonce, consumed in 64-byte blocks.

use crate::chacha::{ChaCha20, BLOCK_LEN, KEY_LEN, NONCE_LEN};
use rand::{CryptoRng, RngCore, SeedableRng};

/// A reproducible cryptographically strong RNG.
///
/// Implements [`rand::RngCore`] and [`rand::SeedableRng`], so it plugs into
/// every `rand` API. Two instances with the same seed produce identical
/// streams on every platform (the generator is pure ChaCha20).
///
/// # Example
///
/// ```
/// use oram_crypto::rng::DeterministicRng;
/// use rand::{Rng, SeedableRng};
///
/// let mut a = DeterministicRng::from_seed([9u8; 32]);
/// let mut b = DeterministicRng::from_seed([9u8; 32]);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    cipher: ChaCha20,
    buffer: [u8; BLOCK_LEN],
    /// Next unserved byte within `buffer`; `BLOCK_LEN` means empty.
    cursor: usize,
}

impl DeterministicRng {
    /// Creates a generator from a 32-byte seed.
    pub fn from_seed_bytes(seed: [u8; KEY_LEN]) -> Self {
        Self {
            cipher: ChaCha20::new(&seed, &[0u8; NONCE_LEN]),
            buffer: [0u8; BLOCK_LEN],
            cursor: BLOCK_LEN,
        }
    }

    /// Creates a generator from a `u64` convenience seed (expanded into the
    /// 32-byte key by repetition with distinct lane counters).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        for lane in 0..4 {
            let word = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(lane as u64 + 1));
            bytes[lane * 8..lane * 8 + 8].copy_from_slice(&word.to_le_bytes());
        }
        Self::from_seed_bytes(bytes)
    }

    fn refill(&mut self) {
        self.buffer = [0u8; BLOCK_LEN];
        self.cipher.apply_keystream(&mut self.buffer);
        self.cursor = 0;
    }

    /// The stream position as `(block counter, byte cursor)`: the ChaCha20
    /// block counter after the last refill and the next unserved byte
    /// within the current 64-byte buffer. Together with the seed this
    /// pins the generator's state exactly — snapshot/restore uses it.
    pub fn stream_pos(&self) -> (u32, usize) {
        (self.cipher.counter(), self.cursor)
    }

    /// Repositions a generator (freshly built from the same seed) at a
    /// position previously captured by [`stream_pos`](Self::stream_pos).
    /// The regenerated output continues byte-for-byte where the captured
    /// generator left off.
    ///
    /// # Panics
    ///
    /// Panics if `cursor > 64`, or if `cursor < 64` while `counter` is 0
    /// (a partially consumed buffer implies at least one refill happened).
    pub fn seek_to(&mut self, counter: u32, cursor: usize) {
        assert!(cursor <= BLOCK_LEN, "cursor beyond one keystream block");
        if cursor == BLOCK_LEN {
            // Buffer exhausted (or never filled): contents are irrelevant.
            self.cipher.seek(counter);
            self.cursor = BLOCK_LEN;
        } else {
            assert!(counter > 0, "partially consumed buffer needs a refill");
            // Regenerate the block the captured buffer held, then restore
            // the cursor into it.
            self.cipher.seek(counter - 1);
            self.refill();
            self.cursor = cursor;
        }
    }
}

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.cursor == BLOCK_LEN {
                self.refill();
            }
            let available = BLOCK_LEN - self.cursor;
            let take = available.min(dest.len() - written);
            dest[written..written + take]
                .copy_from_slice(&self.buffer[self.cursor..self.cursor + take]);
            self.cursor += take;
            written += take;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for DeterministicRng {
    type Seed = [u8; KEY_LEN];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::from_seed_bytes(seed)
    }
}

// The stream is ChaCha20, a CSPRNG; mark it so rand's CryptoRng-gated APIs accept it.
impl CryptoRng for DeterministicRng {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::from_seed([7u8; 32]);
        let mut b = DeterministicRng::from_seed([7u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = DeterministicRng::from_seed([7u8; 32]);
        let mut b = DeterministicRng::from_seed([8u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn u64_seed_lanes_differ() {
        let mut a = DeterministicRng::from_u64_seed(1);
        let mut b = DeterministicRng::from_u64_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_matches_chacha_keystream() {
        // The RNG output must be exactly the ChaCha20 keystream of the seed.
        let seed = [3u8; 32];
        let mut rng = DeterministicRng::from_seed(seed);
        let mut out = [0u8; 128];
        rng.fill_bytes(&mut out);
        let mut expected = [0u8; 128];
        ChaCha20::new(&seed, &[0u8; NONCE_LEN]).apply_keystream(&mut expected);
        assert_eq!(out, expected);
    }

    #[test]
    fn fill_bytes_is_stream_consistent_across_read_sizes() {
        let mut big = DeterministicRng::from_seed([1u8; 32]);
        let mut small = DeterministicRng::from_seed([1u8; 32]);
        let mut big_out = [0u8; 96];
        big.fill_bytes(&mut big_out);
        let mut small_out = Vec::new();
        for chunk_len in [1usize, 3, 8, 20, 64] {
            let mut buf = vec![0u8; chunk_len];
            small.fill_bytes(&mut buf);
            small_out.extend_from_slice(&buf);
        }
        assert_eq!(small_out[..], big_out[..]);
    }

    #[test]
    fn gen_range_works_via_rand_traits() {
        let mut rng = DeterministicRng::from_u64_seed(42);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(0..17);
            assert!(x < 17);
        }
    }

    #[test]
    fn mean_of_uniform_draws_is_centered() {
        let mut rng = DeterministicRng::from_u64_seed(1234);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}

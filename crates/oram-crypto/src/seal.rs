//! Authenticated block sealing (encrypt-then-MAC).
//!
//! Every block leaving the trusted control layer — whether to the in-memory
//! Path ORAM tree or to the flat storage layer — is *sealed*: its payload is
//! encrypted with ChaCha20 under a per-epoch key and authenticated together
//! with its header by a SipHash-2-4 tag. Dummy blocks are sealed through the
//! identical code path, so real and dummy ciphertexts are indistinguishable
//! on the bus.

use crate::chacha::{ChaCha20, ChaChaKey, NONCE_LEN};
use crate::keys::SubKeys;
use crate::siphash::SipHash24;
use crate::CryptoError;
use std::fmt;

/// A sealed (encrypted + authenticated) ORAM block.
///
/// The header fields (`block_id`, `epoch`) are authenticated but not
/// encrypted: the ORAM protocols deliberately expose *physical* identifiers
/// on the bus while hiding the logical ones, and the sealing layer is used
/// with physical identifiers only.
#[derive(Clone, PartialEq, Eq)]
pub struct SealedBlock {
    block_id: u64,
    epoch: u64,
    body: Vec<u8>,
    tag: u64,
}

impl fmt::Debug for SealedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SealedBlock")
            .field("block_id", &self.block_id)
            .field("epoch", &self.epoch)
            .field("len", &self.body.len())
            .field("tag", &format_args!("{:#018x}", self.tag))
            .finish()
    }
}

impl SealedBlock {
    /// The (physical) block identifier the seal is bound to.
    pub fn block_id(&self) -> u64 {
        self.block_id
    }

    /// The key epoch the block was sealed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ciphertext length in bytes.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the ciphertext is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Read-only view of the ciphertext body.
    pub fn ciphertext(&self) -> &[u8] {
        &self.body
    }

    /// Total on-device size in bytes (header + body + tag), used by the
    /// storage simulator for timing.
    pub fn wire_size(&self) -> usize {
        8 + 8 + 8 + self.body.len()
    }

    /// The authentication tag (encrypt-then-MAC SipHash-2-4). Exposed so
    /// storage backends can serialize a block verbatim; forging a block
    /// requires forging this tag, which [`BlockSealer::open`] checks.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Reassembles a block from serialized parts (a storage backend
    /// reading its file, a snapshot restore). No validation happens here:
    /// a tampered block is rejected by [`BlockSealer::open`] when the
    /// trusted layer next touches it.
    pub fn from_parts(block_id: u64, epoch: u64, body: Vec<u8>, tag: u64) -> Self {
        Self {
            block_id,
            epoch,
            body,
            tag,
        }
    }

    /// Consumes the block, returning its ciphertext buffer. Used to
    /// recycle discarded blocks' allocations through a
    /// [`crate::pool::BufferPool`] (the bytes are ciphertext under a key
    /// that is being retired, so handing them back is harmless).
    pub fn into_body(self) -> Vec<u8> {
        self.body
    }

    /// Test-and-fault-injection hook: flips one bit of the ciphertext.
    ///
    /// Exposed so integration tests can verify that corruption is detected;
    /// not part of the protocol.
    pub fn corrupt_bit(&mut self, bit: usize) {
        if self.body.is_empty() {
            self.tag ^= 1;
            return;
        }
        let idx = (bit / 8) % self.body.len();
        self.body[idx] ^= 1 << (bit % 8);
    }
}

/// Seals and opens blocks under one epoch's keys.
///
/// # Example
///
/// ```
/// use oram_crypto::{keys::MasterKey, seal::BlockSealer};
///
/// # fn main() -> Result<(), oram_crypto::CryptoError> {
/// let keys = MasterKey::from_bytes([3u8; 32]).derive("storage", 0);
/// let sealer = BlockSealer::new(&keys);
/// let sealed = sealer.seal(7, 0, b"hello");
/// assert_eq!(sealer.open(&sealed)?, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct BlockSealer {
    /// Cached ChaCha20 key schedule: the 32 raw key bytes are parsed into
    /// state words **once per sealer**, not once per `seal_into`/`open`
    /// call. The rebuild stream seals every physical slot each period, so
    /// the per-call setup cost is measurable — see
    /// `crates/bench/benches/crypto.rs` (`sealer_key_schedule`).
    enc_key: ChaChaKey,
    /// Prepared SipHash-2-4 initial state for the MAC key; cloned per tag
    /// instead of re-deriving `v0..v3` from the raw key bytes.
    mac: SipHash24,
}

impl fmt::Debug for BlockSealer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockSealer")
            .field("keys", &"<redacted>")
            .finish()
    }
}

impl BlockSealer {
    /// Creates a sealer from an epoch key bundle.
    pub fn new(keys: &SubKeys) -> Self {
        Self::from_raw_keys(*keys.encryption(), *keys.mac())
    }

    /// Creates a sealer from raw keys (used by unit tests and tooling).
    pub fn from_raw_keys(enc_key: [u8; 32], mac_key: [u8; 16]) -> Self {
        Self {
            enc_key: ChaChaKey::new(&enc_key),
            mac: SipHash24::new(&mac_key),
        }
    }

    /// Seals `plaintext` as block `block_id` under `epoch`.
    ///
    /// The (block_id, epoch) pair must be unique per sealer key lifetime —
    /// the ORAM reshuffle discipline guarantees this by bumping the epoch
    /// whenever blocks are rewritten.
    pub fn seal(&self, block_id: u64, epoch: u64, plaintext: &[u8]) -> SealedBlock {
        // Fused copy+XOR: the ciphertext buffer is filled in one pass over
        // the plaintext instead of copy-then-encrypt-in-place.
        let mut body = vec![0u8; plaintext.len()];
        ChaCha20::from_key(&self.enc_key, &Self::nonce(block_id, epoch), 0)
            .apply_keystream_into(plaintext, &mut body);
        let tag = self.compute_tag(block_id, epoch, &body);
        SealedBlock {
            block_id,
            epoch,
            body,
            tag,
        }
    }

    /// Seals a caller-provided plaintext buffer, encrypting it **in place**
    /// — the buffer becomes the ciphertext body without a copy. This is the
    /// zero-copy core of [`seal`](Self::seal); the shuffle stream feeds it
    /// buffers recycled through a [`crate::pool::BufferPool`].
    pub fn seal_into(&self, block_id: u64, epoch: u64, mut body: Vec<u8>) -> SealedBlock {
        ChaCha20::from_key(&self.enc_key, &Self::nonce(block_id, epoch), 0)
            .apply_keystream(&mut body);
        let tag = self.compute_tag(block_id, epoch, &body);
        SealedBlock {
            block_id,
            epoch,
            body,
            tag,
        }
    }

    /// Verifies and decrypts a sealed block.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TagMismatch`] if the tag does not verify —
    /// i.e. the block was corrupted, truncated, replayed across epochs, or
    /// sealed under different keys. No plaintext is returned in that case.
    pub fn open(&self, block: &SealedBlock) -> Result<Vec<u8>, CryptoError> {
        self.open_in_place(block.clone())
    }

    /// Verifies and decrypts a sealed block the caller owns, reusing its
    /// ciphertext buffer as the plaintext output — no copy.
    /// [`open`](Self::open) is a thin wrapper that clones once to satisfy
    /// a borrowed input; bulk paths (batched loads, the shuffle stream)
    /// call this directly on blocks taken out of the device.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open); the buffer is dropped on tag mismatch.
    pub fn open_in_place(&self, block: SealedBlock) -> Result<Vec<u8>, CryptoError> {
        let SealedBlock {
            block_id,
            epoch,
            mut body,
            tag,
        } = block;
        let expected = self.compute_tag(block_id, epoch, &body);
        if expected != tag {
            return Err(CryptoError::TagMismatch { block_id });
        }
        ChaCha20::from_key(&self.enc_key, &Self::nonce(block_id, epoch), 0)
            .apply_keystream(&mut body);
        Ok(body)
    }

    /// Re-seals an already-open payload under a new identity, the common
    /// operation during shuffles (decrypt under old epoch done by caller).
    pub fn reseal(&self, block_id: u64, epoch: u64, plaintext: &[u8]) -> SealedBlock {
        self.seal(block_id, epoch, plaintext)
    }

    fn nonce(block_id: u64, epoch: u64) -> [u8; NONCE_LEN] {
        // 12-byte nonce: block id (8 bytes) || low 4 bytes of epoch. High
        // epoch bits are folded into the MAC; encryption-nonce uniqueness
        // holds for 2^32 epochs per block id, far beyond any simulation.
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&block_id.to_le_bytes());
        nonce[8..].copy_from_slice(&(epoch as u32).to_le_bytes());
        nonce
    }

    fn compute_tag(&self, block_id: u64, epoch: u64, ciphertext: &[u8]) -> u64 {
        let mut mac = self.mac.clone();
        mac.write_u64(block_id);
        mac.write_u64(epoch);
        mac.write_u64(ciphertext.len() as u64);
        mac.write(ciphertext);
        mac.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::MasterKey;
    use proptest::prelude::*;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([1u8; 32]).derive("test", 0))
    }

    #[test]
    fn roundtrip() {
        let sealer = sealer();
        let sealed = sealer.seal(1, 0, b"payload");
        assert_eq!(sealer.open(&sealed).unwrap(), b"payload");
    }

    #[test]
    fn seal_into_matches_seal_and_reuses_the_buffer() {
        let sealer = sealer();
        let by_ref = sealer.seal(3, 2, b"same bytes");
        let buffer = b"same bytes".to_vec();
        let pointer = buffer.as_ptr();
        let owned = sealer.seal_into(3, 2, buffer);
        assert_eq!(by_ref, owned);
        // Zero-copy: the ciphertext body is the caller's buffer.
        assert_eq!(owned.ciphertext().as_ptr(), pointer);
    }

    #[test]
    fn open_in_place_matches_open_and_reuses_the_buffer() {
        let sealer = sealer();
        let sealed = sealer.seal(4, 1, b"plaintext");
        assert_eq!(sealer.open(&sealed).unwrap(), b"plaintext");
        let pointer = sealed.ciphertext().as_ptr();
        let plain = sealer.open_in_place(sealed).unwrap();
        assert_eq!(plain, b"plaintext");
        assert_eq!(plain.as_ptr(), pointer);
    }

    #[test]
    fn open_in_place_rejects_corruption() {
        let sealer = sealer();
        let mut sealed = sealer.seal(6, 0, b"checked");
        sealed.corrupt_bit(3);
        assert_eq!(
            sealer.open_in_place(sealed).unwrap_err(),
            CryptoError::TagMismatch { block_id: 6 }
        );
    }

    #[test]
    fn into_body_returns_the_ciphertext() {
        let sealer = sealer();
        let sealed = sealer.seal(1, 0, b"abc");
        let ciphertext = sealed.ciphertext().to_vec();
        assert_eq!(sealed.into_body(), ciphertext);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let sealer = sealer();
        let sealed = sealer.seal(1, 0, b"");
        assert!(sealed.is_empty());
        assert_eq!(sealer.open(&sealed).unwrap(), b"");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let sealer = sealer();
        let sealed = sealer.seal(1, 0, b"a secret payload!");
        assert_ne!(sealed.ciphertext(), b"a secret payload!");
    }

    #[test]
    fn same_payload_different_ids_gives_different_ciphertexts() {
        let sealer = sealer();
        let a = sealer.seal(1, 0, b"identical");
        let b = sealer.seal(2, 0, b"identical");
        assert_ne!(a.ciphertext(), b.ciphertext());
    }

    #[test]
    fn same_payload_different_epochs_gives_different_ciphertexts() {
        let sealer = sealer();
        let a = sealer.seal(1, 0, b"identical");
        let b = sealer.seal(1, 1, b"identical");
        assert_ne!(a.ciphertext(), b.ciphertext());
    }

    #[test]
    fn corruption_is_detected() {
        let sealer = sealer();
        let mut sealed = sealer.seal(5, 0, b"integrity matters");
        sealed.corrupt_bit(13);
        assert_eq!(
            sealer.open(&sealed).unwrap_err(),
            CryptoError::TagMismatch { block_id: 5 }
        );
    }

    #[test]
    fn truncation_is_detected() {
        let sealer = sealer();
        let sealed = sealer.seal(5, 0, b"integrity matters");
        let truncated = SealedBlock {
            block_id: sealed.block_id,
            epoch: sealed.epoch,
            body: sealed.body[..sealed.body.len() - 1].to_vec(),
            tag: sealed.tag,
        };
        assert!(sealer.open(&truncated).is_err());
    }

    #[test]
    fn wrong_key_is_detected() {
        let sealed = sealer().seal(5, 0, b"integrity");
        let other = BlockSealer::new(&MasterKey::from_bytes([2u8; 32]).derive("test", 0));
        assert!(other.open(&sealed).is_err());
    }

    #[test]
    fn cross_epoch_replay_is_detected() {
        // A block sealed under epoch 0 must not open if presented as epoch 1.
        let sealer = sealer();
        let sealed = sealer.seal(5, 0, b"epoch bound");
        let replayed = SealedBlock { epoch: 1, ..sealed };
        assert!(sealer.open(&replayed).is_err());
    }

    #[test]
    fn wire_size_accounts_for_header_and_tag() {
        let sealed = sealer().seal(1, 0, &[0u8; 100]);
        assert_eq!(sealed.wire_size(), 100 + 24);
    }

    #[test]
    fn debug_shows_metadata_not_contents() {
        let sealed = sealer().seal(42, 3, b"secret");
        let debug = format!("{sealed:?}");
        assert!(debug.contains("block_id: 42"));
        assert!(debug.contains("epoch: 3"));
        assert!(!debug.contains("secret"));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_payloads(id in any::<u64>(), epoch in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
            let sealer = sealer();
            let sealed = sealer.seal(id, epoch, &payload);
            prop_assert_eq!(sealer.open(&sealed).unwrap(), payload);
        }

        #[test]
        fn any_single_bit_flip_is_detected(payload in proptest::collection::vec(any::<u8>(), 1..64), bit in any::<usize>()) {
            let sealer = sealer();
            let mut sealed = sealer.seal(9, 2, &payload);
            sealed.corrupt_bit(bit);
            prop_assert!(sealer.open(&sealed).is_err());
        }
    }
}

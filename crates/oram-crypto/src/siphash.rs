//! SipHash-2-4 keyed pseudo-random function (Aumasson & Bernstein).
//!
//! SipHash is the workhorse PRF of this workspace: it keys the Feistel
//! permutation rounds ([`crate::prp`]), authenticates sealed blocks
//! ([`crate::seal`]) and backs the general PRF helpers ([`crate::prf`]).
//!
//! The implementation is the standard 2 compression / 4 finalization round
//! variant with a 128-bit key and 64-bit output, validated against the
//! reference test vectors (regenerated with `openssl mac SipHash`).

/// Key length in bytes (128-bit key).
pub const KEY_LEN: usize = 16;

/// An incremental SipHash-2-4 hasher.
///
/// # Example
///
/// ```
/// use oram_crypto::siphash::{siphash24, SipHash24};
///
/// let key = [0u8; 16];
/// let mut hasher = SipHash24::new(&key);
/// hasher.write(b"split ");
/// hasher.write(b"input");
/// assert_eq!(hasher.finish(), siphash24(&key, b"split input"));
/// ```
#[derive(Debug, Clone)]
pub struct SipHash24 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Bytes not yet forming a full 8-byte word.
    buffer: [u8; 8],
    buffered: usize,
    /// Total message length in bytes (mod 2^64), folded into finalization.
    length: u64,
}

impl SipHash24 {
    /// Creates a hasher from a 16-byte key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let k0 = u64::from_le_bytes(key[..8].try_into().expect("8-byte half"));
        let k1 = u64::from_le_bytes(key[8..].try_into().expect("8-byte half"));
        Self::from_key_words(k0, k1)
    }

    /// Creates a hasher from the two 64-bit key words `k0 || k1`.
    pub fn from_key_words(k0: u64, k1: u64) -> Self {
        Self {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            buffer: [0u8; 8],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `bytes` into the hash state.
    pub fn write(&mut self, bytes: &[u8]) {
        self.length = self.length.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;

        if self.buffered > 0 {
            let need = 8 - self.buffered;
            let take = need.min(rest.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered < 8 {
                // Input exhausted without completing a word.
                return;
            }
            let word = u64::from_le_bytes(self.buffer);
            self.compress(word);
            self.buffered = 0;
        }

        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.compress(word);
        }
        let tail = chunks.remainder();
        self.buffer[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    /// Convenience for absorbing a little-endian `u64`.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Completes the hash and returns the 64-bit digest.
    ///
    /// The hasher is not consumed; further writes continue from the absorbed
    /// prefix (finalization operates on a copy of the state).
    pub fn finish(&self) -> u64 {
        let mut state = self.clone();
        // Final word: length byte in the top 8 bits, remaining bytes below.
        let mut last = [0u8; 8];
        last[..state.buffered].copy_from_slice(&state.buffer[..state.buffered]);
        last[7] = (state.length & 0xff) as u8;
        let word = u64::from_le_bytes(last);
        state.compress(word);

        state.v2 ^= 0xff;
        for _ in 0..4 {
            state.round();
        }
        state.v0 ^ state.v1 ^ state.v2 ^ state.v3
    }

    fn compress(&mut self, word: u64) {
        self.v3 ^= word;
        self.round();
        self.round();
        self.v0 ^= word;
    }

    #[inline(always)]
    fn round(&mut self) {
        self.v0 = self.v0.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(13);
        self.v1 ^= self.v0;
        self.v0 = self.v0.rotate_left(32);
        self.v2 = self.v2.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(16);
        self.v3 ^= self.v2;
        self.v0 = self.v0.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(21);
        self.v3 ^= self.v0;
        self.v2 = self.v2.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(17);
        self.v1 ^= self.v2;
        self.v2 = self.v2.rotate_left(32);
    }
}

/// One-shot SipHash-2-4 of `data` under `key`.
pub fn siphash24(key: &[u8; KEY_LEN], data: &[u8]) -> u64 {
    let mut hasher = SipHash24::new(key);
    hasher.write(data);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    /// Reference vectors for key 000102...0f and input 00 01 02 ... (i bytes),
    /// regenerated with `openssl mac -macopt size:8 SipHash`. Digest bytes are
    /// the little-endian encoding of the returned u64.
    #[test]
    fn reference_vectors() {
        let key = reference_key();
        let cases: [(usize, [u8; 8]); 4] = [
            (0, [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72]),
            (1, [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74]),
            (3, [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85]),
            (15, [0xe5, 0x45, 0xbe, 0x49, 0x61, 0xca, 0x29, 0xa1]),
        ];
        for (len, expected) in cases {
            let input: Vec<u8> = (0..len as u8).collect();
            let digest = siphash24(&key, &input);
            assert_eq!(
                digest.to_le_bytes(),
                expected,
                "vector mismatch for {len}-byte input"
            );
        }
    }

    #[test]
    fn incremental_equals_one_shot() {
        let key = reference_key();
        let data: Vec<u8> = (0..100u8).collect();
        for split in [0usize, 1, 7, 8, 9, 50, 99, 100] {
            let mut hasher = SipHash24::new(&key);
            hasher.write(&data[..split]);
            hasher.write(&data[split..]);
            assert_eq!(hasher.finish(), siphash24(&key, &data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let key = reference_key();
        let data: Vec<u8> = (0..33u8).collect();
        let mut hasher = SipHash24::new(&key);
        for b in &data {
            hasher.write(std::slice::from_ref(b));
        }
        assert_eq!(hasher.finish(), siphash24(&key, &data));
    }

    #[test]
    fn finish_is_idempotent_and_non_consuming() {
        let key = reference_key();
        let mut hasher = SipHash24::new(&key);
        hasher.write(b"abc");
        let first = hasher.finish();
        assert_eq!(first, hasher.finish());
        hasher.write(b"def");
        assert_eq!(hasher.finish(), siphash24(&key, b"abcdef"));
    }

    #[test]
    fn distinct_keys_give_distinct_digests() {
        let a = siphash24(&[0u8; KEY_LEN], b"payload");
        let b = siphash24(&[1u8; KEY_LEN], b"payload");
        assert_ne!(a, b);
    }

    #[test]
    fn length_extension_of_zero_bytes_changes_digest() {
        // Messages "ab" and "ab\0" must hash differently (length is mixed in).
        let key = reference_key();
        assert_ne!(siphash24(&key, b"ab"), siphash24(&key, b"ab\0"));
    }

    #[test]
    fn write_u64_matches_le_bytes() {
        let key = reference_key();
        let mut a = SipHash24::new(&key);
        a.write_u64(0x0123_4567_89ab_cdef);
        let mut b = SipHash24::new(&key);
        b.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}

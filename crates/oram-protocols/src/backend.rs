//! Tree storage backends: where the bucket tree physically lives.
//!
//! The same Path ORAM logic runs against two placements:
//!
//! * [`SingleDeviceBackend`] — the whole tree on one device. With a DRAM
//!   device this is H-ORAM's memory layer; with an HDD it is a worst-case
//!   baseline.
//! * [`SplitBackend`] — the paper's *tree-top cache* baseline (§3.1,
//!   Figure 3-1a): the top levels of the tree live in memory, the bottom
//!   levels extend onto storage, so every path access costs a few fast
//!   memory bucket reads **plus** a few slow I/O bucket reads.
//!
//! Backends report cumulative `(memory, storage)` busy time so protocols
//! can compose wall-clock time per their concurrency model.

use oram_crypto::seal::SealedBlock;
use oram_storage::clock::SimDuration;
use oram_storage::device::Device;
use oram_storage::stats::DeviceStats;
use oram_storage::StorageError;
use std::fmt;

/// Physical placement of tree slots.
///
/// Slot addresses are `node · Z + slot` (see
/// [`crate::bucket_tree::TreeGeometry::slot_addr`]).
pub trait TreeBackend: fmt::Debug {
    /// Reads one slot.
    fn read_slot(&mut self, addr: u64) -> Result<SealedBlock, StorageError>;

    /// Writes one slot.
    fn write_slot(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError>;

    /// Streams the full initial slot image (tree construction / rebuild).
    fn init_all_slots(&mut self, blocks: Vec<SealedBlock>) -> Result<(), StorageError>;

    /// Streams out all slots (tree eviction reads every block).
    fn read_all_slots(&mut self, total: u64) -> Result<Vec<Option<SealedBlock>>, StorageError>;

    /// Cumulative `(memory, storage)` busy time.
    fn busy(&self) -> (SimDuration, SimDuration);

    /// Cumulative `(memory, storage)` device statistics.
    fn stats(&self) -> (DeviceStats, DeviceStats);

    /// Drops all stored slots (tree teardown).
    fn clear(&mut self) -> Result<(), StorageError>;
}

/// The whole tree on a single device.
#[derive(Debug)]
pub struct SingleDeviceBackend {
    device: Device,
}

impl SingleDeviceBackend {
    /// Wraps a device as the tree's home.
    pub fn new(device: Device) -> Self {
        Self { device }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the underlying device (experiment plumbing).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }
}

impl TreeBackend for SingleDeviceBackend {
    fn read_slot(&mut self, addr: u64) -> Result<SealedBlock, StorageError> {
        self.device.read_block(addr)
    }

    fn write_slot(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        self.device.write_block(addr, block)
    }

    fn init_all_slots(&mut self, blocks: Vec<SealedBlock>) -> Result<(), StorageError> {
        self.device.write_run(0, blocks)
    }

    fn read_all_slots(&mut self, total: u64) -> Result<Vec<Option<SealedBlock>>, StorageError> {
        self.device.read_run(0, total)
    }

    fn busy(&self) -> (SimDuration, SimDuration) {
        (self.device.stats().busy, SimDuration::ZERO)
    }

    fn stats(&self) -> (DeviceStats, DeviceStats) {
        (*self.device.stats(), DeviceStats::default())
    }

    fn clear(&mut self) -> Result<(), StorageError> {
        self.device.clear()
    }
}

/// Tree-top cache: slots below `boundary_addr` in memory, the rest on
/// storage.
#[derive(Debug)]
pub struct SplitBackend {
    memory: Device,
    storage: Device,
    /// First slot address that lives on the storage device.
    boundary_addr: u64,
}

impl SplitBackend {
    /// Creates a split backend with the given memory/storage boundary.
    ///
    /// `boundary_addr` is the first slot address on storage; it must align
    /// with a whole-level boundary for the geometry in use (the
    /// tree-top-cache constructor computes it).
    pub fn new(memory: Device, storage: Device, boundary_addr: u64) -> Self {
        Self {
            memory,
            storage,
            boundary_addr,
        }
    }

    /// First slot address on the storage device.
    pub fn boundary_addr(&self) -> u64 {
        self.boundary_addr
    }

    /// The memory device.
    pub fn memory(&self) -> &Device {
        &self.memory
    }

    /// The storage device.
    pub fn storage(&self) -> &Device {
        &self.storage
    }

    fn route(&mut self, addr: u64) -> (&mut Device, u64) {
        if addr < self.boundary_addr {
            (&mut self.memory, addr)
        } else {
            // Storage device addressing starts at 0 for its own region so
            // seek distances reflect the on-disk layout, not tree indices.
            (&mut self.storage, addr - self.boundary_addr)
        }
    }
}

impl TreeBackend for SplitBackend {
    fn read_slot(&mut self, addr: u64) -> Result<SealedBlock, StorageError> {
        let (device, local) = self.route(addr);
        device.read_block(local)
    }

    fn write_slot(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        let (device, local) = self.route(addr);
        device.write_block(local, block)
    }

    fn init_all_slots(&mut self, blocks: Vec<SealedBlock>) -> Result<(), StorageError> {
        let boundary = (self.boundary_addr as usize).min(blocks.len());
        let mut blocks = blocks;
        let storage_part = blocks.split_off(boundary);
        self.memory.write_run(0, blocks)?;
        self.storage.write_run(0, storage_part)
    }

    fn read_all_slots(&mut self, total: u64) -> Result<Vec<Option<SealedBlock>>, StorageError> {
        let memory_count = self.boundary_addr.min(total);
        let mut all = self.memory.read_run(0, memory_count)?;
        if total > memory_count {
            all.extend(self.storage.read_run(0, total - memory_count)?);
        }
        Ok(all)
    }

    fn busy(&self) -> (SimDuration, SimDuration) {
        (self.memory.stats().busy, self.storage.stats().busy)
    }

    fn stats(&self) -> (DeviceStats, DeviceStats) {
        (*self.memory.stats(), *self.storage.stats())
    }

    fn clear(&mut self) -> Result<(), StorageError> {
        self.memory.clear()?;
        self.storage.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([1; 32]).derive("backend", 0))
    }

    fn split() -> SplitBackend {
        let config = MachineConfig::dac2019();
        let clock = SimClock::new();
        SplitBackend::new(
            config.build_memory(clock.clone(), None),
            config.build_storage(clock, None),
            4,
        )
    }

    #[test]
    fn split_routes_by_boundary() {
        let mut backend = split();
        let s = sealer();
        backend.write_slot(0, s.seal(0, 0, b"mem")).unwrap();
        backend.write_slot(7, s.seal(7, 0, b"disk")).unwrap();
        assert_eq!(backend.memory().stored_blocks(), 1);
        assert_eq!(backend.storage().stored_blocks(), 1);
        assert_eq!(s.open(&backend.read_slot(0).unwrap()).unwrap(), b"mem");
        assert_eq!(s.open(&backend.read_slot(7).unwrap()).unwrap(), b"disk");
    }

    #[test]
    fn split_storage_accesses_cost_more() {
        let mut backend = split();
        let s = sealer();
        backend.write_slot(0, s.seal(0, 0, b"m")).unwrap();
        backend.write_slot(100, s.seal(100, 0, b"d")).unwrap();
        backend.read_slot(0).unwrap();
        backend.read_slot(100).unwrap();
        let (mem, storage) = backend.busy();
        assert!(storage.as_nanos() > 50 * mem.as_nanos());
    }

    #[test]
    fn split_init_streams_both_regions() {
        let mut backend = split();
        let s = sealer();
        let blocks: Vec<_> = (0..10u64).map(|i| s.seal(i, 0, b"x")).collect();
        backend.init_all_slots(blocks).unwrap();
        assert_eq!(backend.memory().stored_blocks(), 4);
        assert_eq!(backend.storage().stored_blocks(), 6);
        // Streamed: one write op per region.
        assert_eq!(backend.memory().stats().writes, 1);
        assert_eq!(backend.storage().stats().writes, 1);
    }

    #[test]
    fn split_read_all_concatenates_in_order() {
        let mut backend = split();
        let s = sealer();
        let blocks: Vec<_> = (0..10u64).map(|i| s.seal(i, 0, &[i as u8])).collect();
        backend.init_all_slots(blocks).unwrap();
        let all = backend.read_all_slots(10).unwrap();
        for (i, slot) in all.iter().enumerate() {
            let payload = s.open(slot.as_ref().unwrap()).unwrap();
            assert_eq!(payload, vec![i as u8]);
        }
    }

    #[test]
    fn single_device_backend_roundtrip() {
        let config = MachineConfig::dac2019();
        let mut backend = SingleDeviceBackend::new(config.build_memory(SimClock::new(), None));
        let s = sealer();
        backend.write_slot(3, s.seal(3, 0, b"v")).unwrap();
        assert_eq!(s.open(&backend.read_slot(3).unwrap()).unwrap(), b"v");
        let (mem, storage) = backend.busy();
        assert!(mem > SimDuration::ZERO);
        assert_eq!(storage, SimDuration::ZERO);
        backend.clear().unwrap();
        assert_eq!(backend.device().stored_blocks(), 0);
    }
}

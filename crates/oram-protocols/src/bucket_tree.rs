//! Bucket-tree geometry for Path ORAM.
//!
//! A Path ORAM tree of depth `d` has `2^d − 1` buckets of `Z` slots in heap
//! order (node 0 is the root; node `i` has children `2i+1`, `2i+2`); the
//! `2^(d−1)` leaves sit at level `d−1`. Slot `s` of node `n` maps to device
//! slot address `n·Z + s`, so buckets are contiguous on the device — a
//! bucket read is one seek plus `Z` sequential block transfers, matching
//! how the paper's implementation lays buckets out on disk.
//!
//! Sizing follows the paper's §2.1.2: "storing N real blocks requires 2N
//! space" (≈50 % utilization), i.e. the tree is the smallest depth whose
//! slot count is at least `2N` (within one bucket, see
//! [`TreeGeometry::for_capacity`]).

use oram_crypto::rng::DeterministicRng;
use rand::Rng;

/// Immutable shape of a bucket tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeGeometry {
    depth: u32,
    z: u32,
}

impl TreeGeometry {
    /// Creates a geometry of explicit depth and bucket size.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`, `depth > 48`, or `z == 0`.
    pub fn new(depth: u32, z: u32) -> Self {
        assert!(depth > 0, "tree depth must be positive");
        assert!(depth <= 48, "tree depth beyond simulation scale");
        assert!(z > 0, "bucket size must be positive");
        Self { depth, z }
    }

    /// Smallest tree storing `real_blocks` at ≈50 % utilization
    /// (slot count ≥ 2·real_blocks − Z, i.e. within one bucket of 2N).
    pub fn for_capacity(real_blocks: u64, z: u32) -> Self {
        assert!(real_blocks > 0, "capacity must be positive");
        let target_slots = 2 * real_blocks;
        let mut depth = 1;
        while Self::new(depth, z).total_slots() + u64::from(z) < target_slots {
            depth += 1;
        }
        Self::new(depth, z)
    }

    /// Largest tree whose slots fit within `slot_budget` (the H-ORAM
    /// memory layer: "the memory can store up to n data blocks").
    ///
    /// # Panics
    ///
    /// Panics if even a depth-1 tree does not fit.
    pub fn for_slot_budget(slot_budget: u64, z: u32) -> Self {
        let mut depth = 1;
        assert!(
            Self::new(1, z).total_slots() <= slot_budget,
            "slot budget {slot_budget} smaller than one bucket"
        );
        while depth < 48 && Self::new(depth + 1, z).total_slots() <= slot_budget {
            depth += 1;
        }
        Self::new(depth, z)
    }

    /// Number of bucket levels (root = level 0 … leaves = level `depth−1`).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Slots per bucket.
    pub fn z(&self) -> u32 {
        self.z
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> u64 {
        1u64 << (self.depth - 1)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> u64 {
        (1u64 << self.depth) - 1
    }

    /// Total block slots.
    pub fn total_slots(&self) -> u64 {
        self.bucket_count() * self.z as u64
    }

    /// Heap index of the bucket holding leaf `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf >= leaf_count()`.
    pub fn leaf_node(&self, leaf: u64) -> u64 {
        assert!(leaf < self.leaf_count(), "leaf {leaf} out of range");
        (self.leaf_count() - 1) + leaf
    }

    /// Bucket level of heap node `node` (root = 0).
    pub fn node_level(&self, node: u64) -> u32 {
        63 - (node + 1).leading_zeros()
    }

    /// Nodes on the path root → leaf, in root-first order.
    pub fn path_nodes(&self, leaf: u64) -> Vec<u64> {
        let mut nodes = Vec::with_capacity(self.depth as usize);
        let mut node = self.leaf_node(leaf);
        loop {
            nodes.push(node);
            if node == 0 {
                break;
            }
            node = (node - 1) / 2;
        }
        nodes.reverse();
        nodes
    }

    /// Whether `node` lies on the root→`leaf` path.
    pub fn node_on_path(&self, node: u64, leaf: u64) -> bool {
        let level = self.node_level(node);
        let leaf1 = self.leaf_node(leaf) + 1;
        (leaf1 >> (self.depth - 1 - level)) == node + 1
    }

    /// Device slot address of `(node, slot)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= z`.
    pub fn slot_addr(&self, node: u64, slot: u32) -> u64 {
        assert!(slot < self.z, "slot {slot} out of bucket");
        node * self.z as u64 + slot as u64
    }

    /// A uniformly random leaf.
    pub fn random_leaf(&self, rng: &mut DeterministicRng) -> u64 {
        rng.gen_range(0..self.leaf_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_counts() {
        let g = TreeGeometry::new(3, 4);
        assert_eq!(g.leaf_count(), 4);
        assert_eq!(g.bucket_count(), 7);
        assert_eq!(g.total_slots(), 28);
    }

    #[test]
    fn for_capacity_is_about_2n() {
        // N = 2^20 blocks, Z=4: depth 19 gives 2,097,148 slots ≈ 2N.
        let g = TreeGeometry::for_capacity(1 << 20, 4);
        assert_eq!(g.depth(), 19);
        let slots = g.total_slots();
        let ratio = slots as f64 / (1u64 << 20) as f64;
        assert!((1.9..2.1).contains(&ratio), "slots/N = {ratio}");
    }

    #[test]
    fn for_capacity_small_sizes() {
        for n in [1u64, 2, 3, 5, 10, 100] {
            let g = TreeGeometry::for_capacity(n, 4);
            assert!(
                g.total_slots() + 4 >= 2 * n,
                "n={n}: {} slots",
                g.total_slots()
            );
        }
    }

    #[test]
    fn for_slot_budget_fits() {
        // 8 MB of 1 KB blocks = 8192 slots, Z=4: depth 11 = 2047 buckets =
        // 8188 slots.
        let g = TreeGeometry::for_slot_budget(8192, 4);
        assert_eq!(g.depth(), 11);
        assert!(g.total_slots() <= 8192);
        // The next depth would not fit.
        assert!(TreeGeometry::new(g.depth() + 1, 4).total_slots() > 8192);
    }

    #[test]
    #[should_panic(expected = "smaller than one bucket")]
    fn slot_budget_below_bucket_panics() {
        TreeGeometry::for_slot_budget(3, 4);
    }

    #[test]
    fn path_walks_root_to_leaf() {
        let g = TreeGeometry::new(3, 1);
        // Leaves are nodes 3,4,5,6.
        assert_eq!(g.path_nodes(0), vec![0, 1, 3]);
        assert_eq!(g.path_nodes(1), vec![0, 1, 4]);
        assert_eq!(g.path_nodes(2), vec![0, 2, 5]);
        assert_eq!(g.path_nodes(3), vec![0, 2, 6]);
    }

    #[test]
    fn node_on_path_matches_path_nodes() {
        let g = TreeGeometry::new(5, 4);
        for leaf in 0..g.leaf_count() {
            let path = g.path_nodes(leaf);
            for node in 0..g.bucket_count() {
                assert_eq!(
                    g.node_on_path(node, leaf),
                    path.contains(&node),
                    "node {node} leaf {leaf}"
                );
            }
        }
    }

    #[test]
    fn node_levels() {
        let g = TreeGeometry::new(3, 4);
        assert_eq!(g.node_level(0), 0);
        assert_eq!(g.node_level(1), 1);
        assert_eq!(g.node_level(2), 1);
        assert_eq!(g.node_level(3), 2);
        assert_eq!(g.node_level(6), 2);
    }

    #[test]
    fn slot_addresses_are_contiguous_per_bucket() {
        let g = TreeGeometry::new(4, 4);
        assert_eq!(g.slot_addr(2, 0), 8);
        assert_eq!(g.slot_addr(2, 3), 11);
        assert_eq!(g.slot_addr(3, 0), 12);
    }

    #[test]
    fn random_leaf_in_range_and_covers() {
        let g = TreeGeometry::new(4, 4);
        let mut rng = DeterministicRng::from_u64_seed(1);
        let mut seen = vec![false; g.leaf_count() as usize];
        for _ in 0..500 {
            let leaf = g.random_leaf(&mut rng);
            seen[leaf as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some leaf never drawn");
    }

    #[test]
    #[should_panic(expected = "leaf 4 out of range")]
    fn leaf_out_of_range_panics() {
        TreeGeometry::new(3, 4).leaf_node(4);
    }
}

//! The protocol-level error type.

use oram_crypto::CryptoError;
use oram_storage::StorageError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by ORAM protocol operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OramError {
    /// A logical block identifier beyond the instance capacity.
    BlockOutOfRange {
        /// The offending identifier.
        id: u64,
        /// Instance capacity in blocks.
        capacity: u64,
    },
    /// A write payload whose length does not match the configured size.
    PayloadSize {
        /// Configured payload length in bytes.
        expected: usize,
        /// Supplied payload length in bytes.
        got: usize,
    },
    /// The stash exceeded its configured bound — a protocol invariant
    /// violation (or an adversarial workload beyond the security parameter).
    StashOverflow {
        /// Configured bound.
        limit: usize,
    },
    /// A sealed block failed to parse after decryption — storage returned
    /// bytes that were never produced by this instance.
    MalformedBlock {
        /// Physical slot the block was read from.
        slot: u64,
    },
    /// A response ticket that is unknown or whose response was already
    /// collected.
    UnknownTicket {
        /// The offending ticket.
        ticket: u64,
    },
    /// An underlying storage error.
    Storage(StorageError),
    /// An underlying cryptographic error (tag mismatch, PRP misuse).
    Crypto(CryptoError),
    /// A state snapshot could not be taken or restored: truncated,
    /// corrupted, wrong key, wrong geometry, or the instance was not in a
    /// snapshottable state (e.g. requests in flight). Restores fail
    /// closed — no partial state is ever adopted.
    SnapshotInvalid {
        /// What was wrong.
        reason: String,
    },
    /// A protocol invariant was violated — scheduler misclassification,
    /// broken once-per-period accounting, impossible geometry. These used
    /// to be panics; they now surface as typed errors so a damaged shard
    /// can be quarantined instead of taking the whole process down. The
    /// instance that raised one must be considered unrecoverable (restore
    /// from a checkpoint or rebuild).
    Internal {
        /// Which invariant broke, and where.
        context: String,
    },
}

impl OramError {
    /// Shorthand for an [`OramError::Internal`] invariant report.
    pub fn internal(context: impl Into<String>) -> Self {
        OramError::Internal {
            context: context.into(),
        }
    }
}

impl fmt::Display for OramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OramError::BlockOutOfRange { id, capacity } => {
                write!(f, "block {id} out of range for capacity {capacity}")
            }
            OramError::PayloadSize { expected, got } => {
                write!(
                    f,
                    "payload length {got} does not match configured {expected}"
                )
            }
            OramError::StashOverflow { limit } => {
                write!(f, "stash exceeded its bound of {limit} entries")
            }
            OramError::MalformedBlock { slot } => {
                write!(f, "malformed block content at slot {slot}")
            }
            OramError::UnknownTicket { ticket } => {
                write!(f, "ticket {ticket} is unknown or already collected")
            }
            OramError::Storage(e) => write!(f, "storage error: {e}"),
            OramError::Crypto(e) => write!(f, "crypto error: {e}"),
            OramError::SnapshotInvalid { reason } => {
                write!(f, "snapshot invalid: {reason}")
            }
            OramError::Internal { context } => {
                write!(f, "internal invariant violated: {context}")
            }
        }
    }
}

impl Error for OramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OramError::Storage(e) => Some(e),
            OramError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for OramError {
    fn from(e: StorageError) -> Self {
        OramError::Storage(e)
    }
}

impl From<CryptoError> for OramError {
    fn from(e: CryptoError) -> Self {
        OramError::Crypto(e)
    }
}

impl From<oram_crypto::persist::PersistError> for OramError {
    fn from(e: oram_crypto::persist::PersistError) -> Self {
        OramError::SnapshotInvalid {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = OramError::BlockOutOfRange {
            id: 10,
            capacity: 4,
        };
        assert!(e.to_string().contains("block 10"));
        let e = OramError::PayloadSize {
            expected: 64,
            got: 3,
        };
        assert!(e.to_string().contains("64"));
        let e = OramError::StashOverflow { limit: 100 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn sources_chain() {
        let inner = StorageError::MissingBlock {
            device: "hdd".into(),
            addr: 1,
        };
        let err = OramError::from(inner.clone());
        assert_eq!(err.source().unwrap().to_string(), inner.to_string());
        let inner = CryptoError::TagMismatch { block_id: 3 };
        let err = OramError::from(inner);
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OramError>();
    }
}

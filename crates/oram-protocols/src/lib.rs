//! Baseline ORAM protocols for the H-ORAM reproduction.
//!
//! This crate implements every ORAM scheme the paper discusses, all against
//! the deterministic device simulator in `oram-storage`:
//!
//! * [`path_oram::PathOram`] — Path ORAM on a single device (§2.1.2); also
//!   the engine of H-ORAM's in-memory cache layer.
//! * [`tree_top_cache`] — the paper's **baseline** (§3.1): a Path ORAM tree
//!   whose top levels live in memory and whose bottom levels extend onto
//!   storage, so every access pays several slow I/O bucket transfers.
//! * [`square_root::SquareRootOram`] — the Goldreich–Ostrovsky flat scheme
//!   (§2.1.3): shelter + permuted layout + full periodic reshuffle.
//! * [`partition_oram::PartitionOram`] — √N partitions with per-partition
//!   reshuffles (§2.1.4), the scheme H-ORAM's shuffle security reduces to.
//!
//! All protocols share the [`Oram`] trait, the sealed uniform-size block
//! wire format ([`types::BlockContent`]), the trusted-side structures
//! ([`position_map::PositionMap`], [`stash::Stash`]) and the tree geometry
//! ([`bucket_tree::TreeGeometry`]), so the evaluation compares protocols —
//! not incidental implementation choices.
#![deny(missing_docs)]

pub mod backend;
pub mod bucket_tree;
pub mod error;
pub mod oram_trait;
pub mod partition_oram;
pub mod path_oram;
pub mod position_map;
pub mod recursive;
pub mod square_root;
pub mod stash;
pub mod tree_top_cache;
pub mod types;

pub use backend::{SingleDeviceBackend, SplitBackend, TreeBackend};
pub use bucket_tree::TreeGeometry;
pub use error::OramError;
pub use oram_trait::Oram;
pub use partition_oram::{PartitionOram, PartitionStats};
pub use path_oram::{AccessReceipt, PathOram, PathOramConfig, PathOramCore, PathOramStats};
pub use position_map::PositionMap;
pub use recursive::RecursivePathOram;
pub use square_root::{SquareRootOram, SquareRootStats};
pub use stash::{Stash, StashEntry};
pub use tree_top_cache::{build_tree_top_cache, TreeTopCachePathOram, TreeTopSplit};
pub use types::{BlockContent, BlockContentRef, BlockId, Request, RequestOp};

//! The common ORAM interface.

use crate::error::OramError;
use crate::types::{BlockId, Request, RequestOp};

/// A block-granular oblivious RAM.
///
/// All protocols in this workspace expose the same logical contract: a
/// fixed-capacity array of fixed-size blocks, zero-initialized, with
/// `read`/`write` access. What differs — and what the evaluation measures —
/// is the *physical* access pattern and cost each protocol generates.
///
/// # Example
///
/// ```
/// use oram_protocols::{Oram, PathOram, PathOramConfig, BlockId};
/// use oram_storage::calibration::MachineConfig;
/// use oram_storage::clock::SimClock;
/// use oram_crypto::keys::MasterKey;
///
/// # fn main() -> Result<(), oram_protocols::OramError> {
/// let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
/// let keys = MasterKey::from_bytes([1; 32]).derive("doc", 0);
/// let mut oram = PathOram::new(PathOramConfig::new(16, 4), device, &keys)?;
///
/// oram.write(BlockId(3), &[1, 2, 3, 4])?;
/// assert_eq!(oram.read(BlockId(3))?, vec![1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
pub trait Oram {
    /// Number of logical blocks.
    fn capacity(&self) -> u64;

    /// Application payload bytes per block.
    fn payload_len(&self) -> usize;

    /// Reads block `id`.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] if `id ≥ capacity`; protocol-specific
    /// storage/crypto errors propagate.
    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError>;

    /// Writes block `id`, returning the previous payload.
    ///
    /// # Errors
    ///
    /// [`OramError::PayloadSize`] if `data.len() != payload_len()`;
    /// [`OramError::BlockOutOfRange`] if `id ≥ capacity`.
    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError>;

    /// Serves one [`Request`], returning the read value (reads) or the
    /// previous value (writes).
    ///
    /// # Errors
    ///
    /// As [`read`](Self::read) / [`write`](Self::write).
    fn access(&mut self, request: &Request) -> Result<Vec<u8>, OramError> {
        match &request.op {
            RequestOp::Read => self.read(request.id),
            RequestOp::Write(data) => self.write(request.id, data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A trivial in-memory Oram used to test the default `access` method.
    #[derive(Debug, Default)]
    struct PlainOram {
        blocks: HashMap<u64, Vec<u8>>,
    }

    impl Oram for PlainOram {
        fn capacity(&self) -> u64 {
            8
        }
        fn payload_len(&self) -> usize {
            2
        }
        fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
            Ok(self
                .blocks
                .get(&id.0)
                .cloned()
                .unwrap_or_else(|| vec![0; 2]))
        }
        fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
            Ok(self
                .blocks
                .insert(id.0, data.to_vec())
                .unwrap_or_else(|| vec![0; 2]))
        }
    }

    #[test]
    fn access_dispatches_reads_and_writes() {
        let mut oram = PlainOram::default();
        let prev = oram.access(&Request::write(1u64, vec![7, 7])).unwrap();
        assert_eq!(prev, vec![0, 0]);
        let got = oram.access(&Request::read(1u64)).unwrap();
        assert_eq!(got, vec![7, 7]);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut oram = PlainOram::default();
        let dynamic: &mut dyn Oram = &mut oram;
        dynamic.write(BlockId(0), &[1, 2]).unwrap();
        assert_eq!(dynamic.read(BlockId(0)).unwrap(), vec![1, 2]);
        assert_eq!(dynamic.capacity(), 8);
    }
}

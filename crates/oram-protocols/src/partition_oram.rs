//! Partition ORAM (paper §2.1.4, after Stefanov–Shi–Song).
//!
//! The second flat-layout ancestor of H-ORAM, and the protocol whose
//! security H-ORAM's group-partition shuffle reduces to (§4.3.3). The
//! database is divided into `√N` partitions of ≈`√N` blocks. Every access
//! fetches exactly one block from the partition the position map names,
//! shelters it, and reassigns it to a uniformly random partition; every `v`
//! accesses (`v ≤ √N`, the *shuffle period*), the sheltered blocks are
//! evicted to their assigned partitions and only those partitions are
//! reshuffled — amortizing the reshuffle that square-root ORAM pays in one
//! monolithic pass.
//!
//! Simplifications versus the published system (documented for DESIGN.md):
//! each partition is a flat permuted array rather than a level hierarchy,
//! and evictions re-permute whole partitions. The properties the paper's
//! arguments use — one storage touch per access, per-partition reshuffles,
//! uniform partition choice — are preserved exactly.

use crate::error::OramError;
use crate::oram_trait::Oram;
use crate::types::{BlockContent, BlockId};
use oram_crypto::keys::KeyHierarchy;
use oram_crypto::rng::DeterministicRng;
use oram_crypto::seal::BlockSealer;
use oram_shuffle::permutation::Permutation;
use oram_storage::clock::SimDuration;
use oram_storage::device::Device;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};

/// Statistics of a partition ORAM instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Logical accesses served.
    pub accesses: u64,
    /// Dummy reads issued for sheltered blocks.
    pub dummy_reads: u64,
    /// Eviction rounds performed.
    pub evictions: u64,
    /// Individual partitions reshuffled.
    pub partitions_shuffled: u64,
    /// Simulated time spent in eviction/shuffle rounds.
    pub shuffle_time: SimDuration,
}

/// Where a block currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residence {
    /// In partition `p`, at permuted in-partition index `i`.
    Stored { partition: u32, index: u32 },
    /// In the shelter, already reassigned to partition `p`.
    Sheltered { assigned: u32 },
}

/// The partition ORAM. See the [module docs](self).
#[derive(Debug)]
pub struct PartitionOram {
    device: Device,
    sealer: BlockSealer,
    residence: Vec<Residence>,
    /// Per-partition block lists: partition → in-partition index → logical id
    /// (`None` = dummy slot).
    partitions: Vec<Vec<Option<BlockId>>>,
    shelter: BTreeMap<BlockId, Vec<u8>>,
    rng: DeterministicRng,
    capacity: u64,
    partition_count: u32,
    /// Slots per partition (includes dummy headroom).
    partition_slots: u32,
    /// Accesses per eviction round (the paper's `v`).
    evict_period: u32,
    accesses_since_evict: u32,
    payload_len: usize,
    epoch: u64,
    seal_seq: u64,
    stats: PartitionStats,
}

impl PartitionOram {
    /// Builds a partition ORAM of `capacity` blocks on `device`.
    ///
    /// `evict_period` is the paper's `v` (defaults to `√N/2` when `None`):
    /// the number of accesses between eviction rounds.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial layout write.
    pub fn new(
        capacity: u64,
        payload_len: usize,
        evict_period: Option<u32>,
        device: Device,
        keys: KeyHierarchy,
        seed: u64,
    ) -> Result<Self, OramError> {
        assert!(capacity > 0, "capacity must be positive");
        let partition_count = (capacity as f64).sqrt().ceil() as u32;
        // Headroom: partitions receive evictions before their next shuffle;
        // 2× the balanced load keeps overflow negligible, and overflows are
        // absorbed by early eviction.
        let balanced = capacity.div_ceil(partition_count as u64) as u32;
        let partition_slots = (2 * balanced).max(4);
        let evict_period = evict_period.unwrap_or((partition_count / 2).max(1));
        assert!(evict_period >= 1, "eviction period must be positive");

        // Partial reshuffles keep one sealing key (see `evict`); epoch 0's
        // bundle serves the instance lifetime, uniqueness coming from the
        // per-seal sequence number.
        let epoch = 0;
        let sealer = BlockSealer::new(&keys.epoch_keys(epoch));
        let mut oram = Self {
            device,
            sealer,
            residence: vec![Residence::Sheltered { assigned: 0 }; capacity as usize],
            partitions: vec![vec![None; partition_slots as usize]; partition_count as usize],
            shelter: BTreeMap::new(),
            rng: DeterministicRng::from_u64_seed(seed),
            capacity,
            partition_count,
            partition_slots,
            evict_period,
            accesses_since_evict: 0,
            payload_len,
            epoch,
            seal_seq: 0,
            stats: PartitionStats::default(),
        };
        oram.initial_layout()?;
        Ok(oram)
    }

    /// Number of partitions (√N).
    pub fn partition_count(&self) -> u32 {
        self.partition_count
    }

    /// The eviction period `v`.
    pub fn evict_period(&self) -> u32 {
        self.evict_period
    }

    /// Statistics of this instance.
    pub fn stats(&self) -> PartitionStats {
        self.stats
    }

    /// The underlying device (experiment accounting).
    pub fn device(&self) -> &Device {
        &self.device
    }

    fn partition_base(&self, partition: u32) -> u64 {
        partition as u64 * self.partition_slots as u64
    }

    fn seal_content(
        &mut self,
        slot: u64,
        content: &BlockContent,
    ) -> oram_crypto::seal::SealedBlock {
        let seq = self.seal_seq;
        self.seal_seq += 1;
        self.sealer
            .seal(slot, seq, &content.encode(self.payload_len))
    }

    /// Round-robin initial distribution, then per-partition permutation and
    /// one streaming write of the whole layout.
    fn initial_layout(&mut self) -> Result<(), OramError> {
        let mut payloads: HashMap<BlockId, Vec<u8>> = HashMap::new();
        for id in 0..self.capacity {
            let partition = (id % self.partition_count as u64) as u32;
            payloads.insert(BlockId(id), vec![0u8; self.payload_len]);
            self.place_in_partition(BlockId(id), partition);
        }
        for partition in 0..self.partition_count {
            self.write_partition(partition, &payloads)?;
        }
        Ok(())
    }

    /// Records `id` into the partition table at the first free slot.
    fn place_in_partition(&mut self, id: BlockId, partition: u32) {
        let slots = &mut self.partitions[partition as usize];
        let index = slots
            .iter()
            .position(|s| s.is_none())
            .expect("partition headroom exhausted — eviction policy broken");
        slots[index] = Some(id);
        self.residence[id.0 as usize] = Residence::Stored {
            partition,
            index: index as u32,
        };
    }

    /// Rewrites one partition: fresh in-partition permutation, fresh
    /// sealing, one streaming read+write. `payloads` supplies block
    /// contents for ids not currently on the device.
    fn write_partition(
        &mut self,
        partition: u32,
        payloads: &HashMap<BlockId, Vec<u8>>,
    ) -> Result<(), OramError> {
        let base = self.partition_base(partition);
        let slot_count = self.partition_slots as usize;

        // Current on-device contents (absent during initial construction).
        let mut current: HashMap<BlockId, Vec<u8>> = HashMap::new();
        if self.device.stored_blocks() > 0 {
            let slots = self.device.read_run(base, slot_count as u64)?;
            for (offset, sealed) in slots.into_iter().enumerate() {
                let Some(sealed) = sealed else { continue };
                if let BlockContent::Real { id, payload, .. } =
                    BlockContent::decode(&self.sealer.open(&sealed)?, base + offset as u64)?
                {
                    current.insert(id, payload);
                }
            }
        }

        // Fresh permutation of in-partition positions.
        let members: Vec<BlockId> = self.partitions[partition as usize]
            .iter()
            .flatten()
            .copied()
            .collect();
        let perm = Permutation::random(slot_count, {
            use rand::RngCore;
            self.rng.next_u64()
        });
        let mut layout: Vec<Option<BlockId>> = vec![None; slot_count];
        for (dense, id) in members.iter().enumerate() {
            let index = perm.apply(dense) as u32;
            layout[index as usize] = Some(*id);
            self.residence[id.0 as usize] = Residence::Stored { partition, index };
        }
        self.partitions[partition as usize] = layout.clone();

        let mut image = Vec::with_capacity(slot_count);
        for (offset, slot) in layout.into_iter().enumerate() {
            let addr = base + offset as u64;
            let content = match slot {
                Some(id) => {
                    let payload = payloads
                        .get(&id)
                        .or_else(|| current.get(&id))
                        .cloned()
                        .unwrap_or_else(|| vec![0u8; self.payload_len]);
                    BlockContent::Real {
                        id,
                        leaf: 0,
                        payload,
                    }
                }
                None => BlockContent::Dummy,
            };
            image.push(self.seal_content(addr, &content));
        }
        self.device.write_run(base, image)?;
        Ok(())
    }

    fn check_range(&self, id: BlockId) -> Result<(), OramError> {
        if id.0 >= self.capacity {
            return Err(OramError::BlockOutOfRange {
                id: id.0,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    fn access_inner(&mut self, id: BlockId, update: Option<&[u8]>) -> Result<Vec<u8>, OramError> {
        self.check_range(id)?;
        if let Some(data) = update {
            if data.len() != self.payload_len {
                return Err(OramError::PayloadSize {
                    expected: self.payload_len,
                    got: data.len(),
                });
            }
        }

        match self.residence[id.0 as usize] {
            Residence::Stored { partition, index } => {
                let addr = self.partition_base(partition) + index as u64;
                let sealed = self.device.read_block(addr)?;
                let BlockContent::Real { payload, .. } =
                    BlockContent::decode(&self.sealer.open(&sealed)?, addr)?
                else {
                    return Err(OramError::MalformedBlock { slot: addr });
                };
                // Remove from partition table; reassign to a random partition.
                self.partitions[partition as usize][index as usize] = None;
                let assigned = self.rng.gen_range(0..self.partition_count);
                self.residence[id.0 as usize] = Residence::Sheltered { assigned };
                self.shelter.insert(id, payload);
            }
            Residence::Sheltered { .. } => {
                // Shelter hit: issue a dummy read at a random slot of a
                // random partition so the bus still sees one storage touch.
                let partition = self.rng.gen_range(0..self.partition_count);
                let offset = self.rng.gen_range(0..self.partition_slots as u64);
                let _ = self.device.charge(
                    oram_storage::device::AccessKind::Read,
                    self.partition_base(partition) + offset,
                    self.device.charged_block_bytes(),
                );
                self.stats.dummy_reads += 1;
            }
        }

        let entry = self.shelter.get_mut(&id).expect("sheltered above");
        let previous = entry.clone();
        if let Some(data) = update {
            *entry = data.to_vec();
        }
        self.stats.accesses += 1;
        self.accesses_since_evict += 1;

        if self.accesses_since_evict >= self.evict_period {
            self.evict()?;
        }
        Ok(previous)
    }

    /// Eviction round: write every sheltered block to its assigned
    /// partition and reshuffle exactly those partitions.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn evict(&mut self) -> Result<(), OramError> {
        let busy_before = self.device.stats().busy;
        let shelter = std::mem::take(&mut self.shelter);
        let mut by_partition: HashMap<u32, Vec<(BlockId, Vec<u8>)>> = HashMap::new();
        for (id, payload) in shelter {
            let Residence::Sheltered { assigned } = self.residence[id.0 as usize] else {
                unreachable!("shelter and residence out of sync");
            };
            by_partition
                .entry(assigned)
                .or_default()
                .push((id, payload));
        }

        let mut touched: Vec<u32> = by_partition.keys().copied().collect();
        touched.sort_unstable();
        for partition in touched {
            let mut members = by_partition.remove(&partition).expect("keyed above");
            // Overflow handling (as in the published protocol): a partition
            // that cannot absorb all its assignees keeps the excess
            // sheltered under fresh random assignments until a later round.
            let free = self.partitions[partition as usize]
                .iter()
                .filter(|s| s.is_none())
                .count();
            let overflow = if members.len() > free {
                members.split_off(free)
            } else {
                Vec::new()
            };
            for (id, payload) in overflow {
                let assigned = self.rng.gen_range(0..self.partition_count);
                self.residence[id.0 as usize] = Residence::Sheltered { assigned };
                self.shelter.insert(id, payload);
            }
            let payloads: HashMap<BlockId, Vec<u8>> = members.iter().cloned().collect();
            for (id, _) in &members {
                self.place_in_partition(*id, partition);
            }
            self.write_partition(partition, &payloads)?;
            self.stats.partitions_shuffled += 1;
        }
        self.accesses_since_evict = 0;
        self.stats.evictions += 1;
        // Partial reshuffles cannot rotate the sealing key: untouched
        // partitions keep their existing ciphertexts. Freshness comes from
        // the per-seal sequence number; full key rotation across complete
        // reshuffles is exercised by SquareRootOram and H-ORAM.
        self.epoch += 1;
        self.stats.shuffle_time += self.device.stats().busy - busy_before;
        Ok(())
    }
}

impl Oram for PartitionOram {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn payload_len(&self) -> usize {
        self.payload_len
    }

    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
        self.access_inner(id, None)
    }

    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
        self.access_inner(id, Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use oram_storage::trace::AccessTrace;

    fn build(capacity: u64) -> PartitionOram {
        build_traced(capacity).0
    }

    fn build_traced(capacity: u64) -> (PartitionOram, AccessTrace) {
        let trace = AccessTrace::new();
        let device = MachineConfig::dac2019().build_storage(SimClock::new(), Some(trace.clone()));
        let keys = KeyHierarchy::new(MasterKey::from_bytes([4; 32]), "partition-test");
        (
            PartitionOram::new(capacity, 4, None, device, keys, 21).unwrap(),
            trace,
        )
    }

    #[test]
    fn read_your_writes_across_evictions() {
        let mut oram = build(64);
        for i in 0..64u64 {
            oram.write(BlockId(i), &[i as u8; 4]).unwrap();
        }
        for i in (0..64u64).rev() {
            assert_eq!(
                oram.read(BlockId(i)).unwrap(),
                vec![i as u8; 4],
                "block {i}"
            );
        }
        assert!(oram.stats().evictions > 0);
    }

    #[test]
    fn partition_count_is_sqrt_n() {
        let oram = build(100);
        assert_eq!(oram.partition_count(), 10);
    }

    #[test]
    fn one_storage_read_per_access() {
        let (mut oram, trace) = build_traced(64);
        trace.clear();
        let reads_before = oram.device().stats().reads;
        // Access within one eviction period.
        for i in 0..oram.evict_period().min(3) as u64 {
            oram.read(BlockId(i)).unwrap();
        }
        let n = oram.evict_period().min(3) as u64;
        let reads = oram.device().stats().reads - reads_before;
        assert_eq!(
            reads, n,
            "exactly one storage read per access before eviction"
        );
    }

    #[test]
    fn sheltered_blocks_cost_dummy_reads() {
        let mut oram = build(400); // evict period = 10: room for repeats
        oram.read(BlockId(5)).unwrap();
        oram.read(BlockId(5)).unwrap();
        oram.read(BlockId(5)).unwrap();
        assert_eq!(oram.stats().dummy_reads, 2);
    }

    #[test]
    fn eviction_fires_every_v_accesses() {
        let mut oram = build(100);
        let v = oram.evict_period() as u64;
        for i in 0..v {
            oram.read(BlockId(i)).unwrap();
        }
        assert_eq!(oram.stats().evictions, 1);
        assert!(oram.stats().partitions_shuffled >= 1);
        assert!(
            oram.stats().partitions_shuffled <= v,
            "only assigned partitions reshuffle"
        );
    }

    #[test]
    fn eviction_shuffles_only_touched_partitions() {
        let mut oram = build(400);
        let v = oram.evict_period() as u64;
        for i in 0..v {
            oram.read(BlockId(i)).unwrap();
        }
        // v blocks spread over ≤ v partitions out of 20.
        assert!(oram.stats().partitions_shuffled <= v);
        assert!((oram.stats().partitions_shuffled as u32) < oram.partition_count());
    }

    #[test]
    fn validation_errors() {
        let mut oram = build(16);
        assert!(matches!(
            oram.read(BlockId(16)),
            Err(OramError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            oram.write(BlockId(0), &[9]),
            Err(OramError::PayloadSize {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn long_mixed_workload_stays_consistent() {
        let mut oram = build(49);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = DeterministicRng::from_u64_seed(31);
        for _ in 0..600 {
            let id = rng.gen_range(0..49u64);
            if rng.gen_bool(0.4) {
                let payload = vec![rng.gen_range(0..=255u8); 4];
                let prev = oram.write(BlockId(id), &payload).unwrap();
                let expected = reference.insert(id, payload).unwrap_or(vec![0u8; 4]);
                assert_eq!(prev, expected);
            } else {
                let got = oram.read(BlockId(id)).unwrap();
                let expected = reference.get(&id).cloned().unwrap_or(vec![0u8; 4]);
                assert_eq!(got, expected, "block {id}");
            }
        }
    }
}

//! Path ORAM (Stefanov et al.) over a pluggable tree backend.
//!
//! The protocol the paper builds on twice: as the **in-memory cache layer**
//! of H-ORAM (tree on DRAM, §4.1.2) and — in its *tree-top-cache* placement
//! (see [`crate::tree_top_cache`]) — as the **baseline** every evaluation
//! table compares against.
//!
//! Per access (paper §2.1.2): look up the block's leaf in the position map,
//! read the whole root→leaf path into the stash, remap the block to a fresh
//! uniformly random leaf, serve the request from the stash, and write the
//! path back greedily (each bucket takes up to `Z` stash blocks whose
//! current leaf keeps them on this path; empty slots become dummies). Every
//! slot that leaves the trusted boundary is sealed, so real and dummy
//! ciphertexts are indistinguishable.
//!
//! Additions for the H-ORAM memory layer (used in `horam-core`):
//!
//! * [`PathOramCore::insert_block`] — place an I/O-fetched block directly
//!   into the stash with a fresh leaf (no device access; the block enters
//!   the tree through later write-backs), matching §4.1 "the I/O access
//!   brings data to the stash of the in-memory path ORAM";
//! * [`PathOramCore::dummy_access`] — a full path read+write-back of a
//!   random leaf, used by the secure scheduler to pad short cycles;
//! * [`PathOramCore::evict_all`] — stream every slot out, returning the
//!   real blocks (the oblivious-evict step performs the shuffle);
//! * [`PathOramCore::rebuild_empty`] — re-initialize an all-dummy tree for
//!   the next access period.

use crate::backend::{SingleDeviceBackend, TreeBackend};
use crate::bucket_tree::TreeGeometry;
use crate::error::OramError;
use crate::oram_trait::Oram;
use crate::position_map::PositionMap;
use crate::stash::{Stash, StashEntry};
use crate::types::{BlockContent, BlockId};
use oram_crypto::keys::SubKeys;
use oram_crypto::rng::DeterministicRng;
use oram_crypto::seal::BlockSealer;
use oram_storage::clock::SimDuration;
use oram_storage::device::Device;

/// Time spent by one logical operation, split by device class.
///
/// Protocols compose these into wall-clock time: the tree-top-cache
/// baseline adds them (dependent accesses), H-ORAM overlaps memory time of
/// hits with the storage time of the cycle's miss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessReceipt {
    /// Simulated time on the memory device.
    pub memory: SimDuration,
    /// Simulated time on the storage device.
    pub storage: SimDuration,
}

impl AccessReceipt {
    /// Component-wise sum.
    pub fn merged(&self, other: &AccessReceipt) -> AccessReceipt {
        AccessReceipt {
            memory: self.memory + other.memory,
            storage: self.storage + other.storage,
        }
    }

    /// Serial wall-clock interpretation (`memory + storage`).
    pub fn serial(&self) -> SimDuration {
        self.memory + self.storage
    }
}

/// Configuration of a Path ORAM instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathOramConfig {
    /// Number of logical blocks (N).
    pub capacity: u64,
    /// Bucket size; the paper uses Z = 4 throughout.
    pub z: u32,
    /// Application payload bytes per block.
    pub payload_len: usize,
    /// Stash bound (entries) before [`OramError::StashOverflow`].
    pub stash_limit: usize,
    /// Seed for leaf-remapping randomness.
    pub seed: u64,
}

impl PathOramConfig {
    /// A conventional configuration: Z=4, generous stash, given capacity
    /// and payload size.
    pub fn new(capacity: u64, payload_len: usize) -> Self {
        Self {
            capacity,
            z: 4,
            payload_len,
            stash_limit: 4096,
            seed: 0x0_5e_ed,
        }
    }
}

/// Statistics of one Path ORAM instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathOramStats {
    /// Logical accesses served (reads + writes).
    pub accesses: u64,
    /// Dummy (padding) path accesses performed.
    pub dummy_accesses: u64,
    /// Blocks inserted directly into the stash (H-ORAM I/O arrivals).
    pub stash_inserts: u64,
    /// Tree rebuilds (H-ORAM periods).
    pub rebuilds: u64,
}

/// Plaintext blocks returned by [`PathOramCore::evict_all`]:
/// `(logical id, payload)` pairs.
pub type EvictedBlocks = Vec<(BlockId, Vec<u8>)>;

/// Path ORAM over a generic backend. See the [module docs](self).
#[derive(Debug)]
pub struct PathOramCore<B: TreeBackend> {
    geometry: TreeGeometry,
    backend: B,
    position_map: PositionMap,
    stash: Stash,
    sealer: BlockSealer,
    rng: DeterministicRng,
    payload_len: usize,
    capacity: u64,
    /// Monotonic sequence number making every seal nonce unique.
    seal_seq: u64,
    stats: PathOramStats,
}

/// Path ORAM with the whole tree on one device — the H-ORAM memory layer
/// (DRAM device) or a single-device baseline.
pub type PathOram = PathOramCore<SingleDeviceBackend>;

impl PathOram {
    /// Builds a Path ORAM wholly on `device`, sized for
    /// `config.capacity` real blocks (≈2N slots), with an all-dummy tree.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial tree write.
    pub fn new(config: PathOramConfig, device: Device, keys: &SubKeys) -> Result<Self, OramError> {
        let geometry = TreeGeometry::for_capacity(config.capacity, config.z);
        Self::with_geometry(config, geometry, SingleDeviceBackend::new(device), keys)
    }

    /// Builds a Path ORAM constrained to `slot_budget` device slots (the
    /// H-ORAM memory layer: largest tree that fits the memory budget).
    ///
    /// `capacity` is the *logical id range* the position map covers, which
    /// may far exceed the tree's resident capacity — H-ORAM keeps at most
    /// `slot_budget/2` blocks resident but any of the N dataset blocks can
    /// be cached. When `capacity` is `None`, it defaults to half the slot
    /// count (a standalone 50 %-utilization tree).
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial tree write.
    pub fn for_slot_budget(
        slot_budget: u64,
        capacity: Option<u64>,
        payload_len: usize,
        device: Device,
        keys: &SubKeys,
        seed: u64,
    ) -> Result<Self, OramError> {
        let geometry = TreeGeometry::for_slot_budget(slot_budget, 4);
        let config = PathOramConfig {
            capacity: capacity.unwrap_or(geometry.total_slots() / 2),
            z: 4,
            payload_len,
            stash_limit: 16384,
            seed,
        };
        Self::with_geometry(config, geometry, SingleDeviceBackend::new(device), keys)
    }

    /// The underlying device (experiment accounting).
    pub fn device(&self) -> &Device {
        self.backend().device()
    }

    /// Mutable access to the underlying device (experiment plumbing, e.g.
    /// charging the oblivious-evict buffer shuffle to DRAM).
    pub fn device_mut(&mut self) -> &mut Device {
        self.backend.device_mut()
    }

    /// Serializes every piece of mutable state a restore needs to resume
    /// byte-identically: position map, stash (plaintext — the caller
    /// seals the snapshot), RNG stream position, seal sequence,
    /// statistics, and the device image (tree ciphertexts, device stats,
    /// timing-model locality state).
    ///
    /// # Errors
    ///
    /// Storage backend errors propagate.
    pub fn save_state(
        &mut self,
        w: &mut oram_crypto::persist::StateWriter,
    ) -> Result<(), OramError> {
        w.put_u64(self.capacity);
        w.put_usize(self.payload_len);
        w.put_u64(self.geometry.total_slots());
        w.put_u64(self.seal_seq);
        let (counter, cursor) = self.rng.stream_pos();
        w.put_u32(counter);
        w.put_usize(cursor);
        w.put_u64(self.stats.accesses);
        w.put_u64(self.stats.dummy_accesses);
        w.put_u64(self.stats.stash_inserts);
        w.put_u64(self.stats.rebuilds);
        let positions: Vec<(u64, u64)> = self.position_map.assigned_entries().collect();
        w.put_usize(positions.len());
        for (id, tag) in positions {
            w.put_u64(id);
            w.put_u64(tag);
        }
        w.put_usize(self.stash.len());
        for entry in self.stash.iter() {
            w.put_u64(entry.id.0);
            w.put_u64(entry.leaf);
            w.put_bytes(&entry.payload);
        }
        w.put_usize(self.stash.peak());
        self.backend
            .device_mut()
            .save_state(w)
            .map_err(OramError::Storage)
    }

    /// Restores state captured by [`save_state`](Self::save_state) onto a
    /// freshly constructed instance of the same configuration. After this
    /// returns, the instance behaves byte-identically to the one the
    /// state was captured from.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] on geometry mismatch or malformed
    /// state; nothing is partially adopted on error paths that matter
    /// (validation happens before mutation).
    pub fn load_state(
        &mut self,
        r: &mut oram_crypto::persist::StateReader<'_>,
    ) -> Result<(), OramError> {
        let capacity = r.get_u64()?;
        let payload_len = r.get_usize()?;
        let total_slots = r.get_u64()?;
        if capacity != self.capacity
            || payload_len != self.payload_len
            || total_slots != self.geometry.total_slots()
        {
            return Err(OramError::SnapshotInvalid {
                reason: format!(
                    "memory-tree geometry mismatch: snapshot has \
                     {capacity}×{payload_len}B over {total_slots} slots, instance has {}×{}B \
                     over {}",
                    self.capacity,
                    self.payload_len,
                    self.geometry.total_slots()
                ),
            });
        }
        let seal_seq = r.get_u64()?;
        let rng_counter = r.get_u32()?;
        let rng_cursor = r.get_usize()?;
        if rng_cursor > 64 || (rng_cursor < 64 && rng_counter == 0) {
            return Err(OramError::SnapshotInvalid {
                reason: "rng stream position out of range".into(),
            });
        }
        let stats = PathOramStats {
            accesses: r.get_u64()?,
            dummy_accesses: r.get_u64()?,
            stash_inserts: r.get_u64()?,
            rebuilds: r.get_u64()?,
        };
        let position_count = r.get_usize()?;
        let mut positions = Vec::with_capacity(position_count);
        for _ in 0..position_count {
            let id = r.get_u64()?;
            let tag = r.get_u64()?;
            if id >= self.capacity || tag >= self.geometry.leaf_count() {
                return Err(OramError::SnapshotInvalid {
                    reason: format!("position entry ({id}, {tag}) out of range"),
                });
            }
            positions.push((id, tag));
        }
        let stash_count = r.get_usize()?;
        let mut entries = Vec::with_capacity(stash_count);
        for _ in 0..stash_count {
            let id = BlockId(r.get_u64()?);
            let leaf = r.get_u64()?;
            let payload = r.get_bytes()?.to_vec();
            if id.0 >= self.capacity || leaf >= self.geometry.leaf_count() {
                return Err(OramError::SnapshotInvalid {
                    reason: format!("stash entry {id} out of range"),
                });
            }
            entries.push(StashEntry { id, leaf, payload });
        }
        if entries.len() > self.stash.limit() {
            return Err(OramError::SnapshotInvalid {
                reason: "stash beyond configured bound".into(),
            });
        }
        let stash_peak = r.get_usize()?;
        self.backend.device_mut().load_state(r)?;
        self.seal_seq = seal_seq;
        self.rng.seek_to(rng_counter, rng_cursor);
        self.stats = stats;
        self.position_map.restore(positions);
        self.stash.restore(entries, stash_peak);
        Ok(())
    }
}

impl<B: TreeBackend> PathOramCore<B> {
    /// Builds a Path ORAM with an explicit geometry over `backend`.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial tree write.
    pub fn with_geometry(
        config: PathOramConfig,
        geometry: TreeGeometry,
        backend: B,
        keys: &SubKeys,
    ) -> Result<Self, OramError> {
        assert!(config.capacity > 0, "capacity must be positive");
        let mut oram = Self {
            geometry,
            backend,
            position_map: PositionMap::new(config.capacity),
            stash: Stash::new(config.stash_limit),
            sealer: BlockSealer::new(keys),
            rng: DeterministicRng::from_u64_seed(config.seed),
            payload_len: config.payload_len,
            capacity: config.capacity,
            seal_seq: 0,
            stats: PathOramStats::default(),
        };
        oram.write_dummy_image()?;
        Ok(oram)
    }

    fn write_dummy_image(&mut self) -> Result<(), OramError> {
        let total = self.geometry.total_slots();
        let mut image = Vec::with_capacity(total as usize);
        for addr in 0..total {
            image.push(self.seal_content(addr, &BlockContent::Dummy));
        }
        self.backend.init_all_slots(image)?;
        Ok(())
    }

    fn seal_content(
        &mut self,
        slot_addr: u64,
        content: &BlockContent,
    ) -> oram_crypto::seal::SealedBlock {
        let seq = self.seal_seq;
        self.seal_seq += 1;
        self.sealer
            .seal(slot_addr, seq, &content.encode(self.payload_len))
    }

    fn open_content(
        &self,
        slot_addr: u64,
        sealed: &oram_crypto::seal::SealedBlock,
    ) -> Result<BlockContent, OramError> {
        let bytes = self.sealer.open(sealed)?;
        BlockContent::decode(&bytes, slot_addr)
    }

    /// The tree geometry.
    pub fn geometry(&self) -> TreeGeometry {
        self.geometry
    }

    /// The backend (device accounting).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Statistics of this instance.
    pub fn stats(&self) -> PathOramStats {
        self.stats
    }

    /// Peak stash occupancy (the bounded-stash invariant's witness).
    pub fn stash_peak(&self) -> usize {
        self.stash.peak()
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Number of logical blocks currently resident (position-map entries).
    pub fn resident_blocks(&self) -> usize {
        self.position_map.assigned()
    }

    fn check_range(&self, id: BlockId) -> Result<(), OramError> {
        if id.0 >= self.capacity {
            return Err(OramError::BlockOutOfRange {
                id: id.0,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    fn busy_delta(&self, before: (SimDuration, SimDuration)) -> AccessReceipt {
        let (mem, storage) = self.backend.busy();
        AccessReceipt {
            memory: mem - before.0,
            storage: storage - before.1,
        }
    }

    /// Core path access: read path into stash, serve `op`, remap, write
    /// back.
    ///
    /// `op` receives the stash entry (created zero-filled on first touch)
    /// and returns the bytes handed to the caller.
    fn path_access(
        &mut self,
        id: BlockId,
        mut op: impl FnMut(&mut StashEntry) -> Vec<u8>,
    ) -> Result<(Vec<u8>, AccessReceipt), OramError> {
        self.check_range(id)?;
        let busy_before = self.backend.busy();
        let leaf_count = self.geometry.leaf_count();
        let leaf = {
            let rng = &mut self.rng;
            self.position_map
                .get_or_assign(id, || rng_uniform(rng, leaf_count))
        };

        self.read_path_into_stash(leaf)?;

        // Remap before serving so the stash entry carries the new leaf.
        let new_leaf = rng_uniform(&mut self.rng, leaf_count);
        self.position_map.set(id, new_leaf);

        if !self.stash.contains(id) {
            // First access to this block: materialize zero-filled content
            // (the ORAM stores the whole logical array, lazily).
            self.stash.insert(StashEntry {
                id,
                leaf: new_leaf,
                payload: vec![0u8; self.payload_len],
            })?;
        }
        let entry = self.stash.get_mut(id).expect("just ensured present");
        entry.leaf = new_leaf;
        let out = op(entry);

        self.write_back_path(leaf)?;
        self.stats.accesses += 1;
        Ok((out, self.busy_delta(busy_before)))
    }

    fn read_path_into_stash(&mut self, leaf: u64) -> Result<(), OramError> {
        for node in self.geometry.path_nodes(leaf) {
            for slot in 0..self.geometry.z() {
                let addr = self.geometry.slot_addr(node, slot);
                let sealed = self.backend.read_slot(addr)?;
                match self.open_content(addr, &sealed)? {
                    BlockContent::Dummy => {}
                    BlockContent::Real {
                        id,
                        leaf: stored_leaf,
                        payload,
                    } => {
                        // The position map is authoritative; the stored leaf
                        // should match it for tree-resident blocks.
                        let current = self.position_map.get(id).unwrap_or(stored_leaf);
                        self.stash.insert(StashEntry {
                            id,
                            leaf: current,
                            payload,
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    fn write_back_path(&mut self, leaf: u64) -> Result<(), OramError> {
        // Leaf-first: deepest buckets take the most constrained blocks.
        let mut nodes = self.geometry.path_nodes(leaf);
        nodes.reverse();
        for node in nodes {
            let geometry = self.geometry;
            let selected = self.stash.take_matching(geometry.z() as usize, |entry| {
                geometry.node_on_path(node, entry.leaf)
            });
            for slot in 0..geometry.z() {
                let addr = geometry.slot_addr(node, slot);
                let content = match selected.get(slot as usize) {
                    Some(entry) => BlockContent::Real {
                        id: entry.id,
                        leaf: entry.leaf,
                        payload: entry.payload.clone(),
                    },
                    None => BlockContent::Dummy,
                };
                let sealed = self.seal_content(addr, &content);
                self.backend.write_slot(addr, sealed)?;
            }
        }
        Ok(())
    }

    /// Reads block `id`, returning its payload and timing receipt.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for ids ≥ capacity; storage/crypto
    /// errors propagate.
    pub fn access_read(&mut self, id: BlockId) -> Result<(Vec<u8>, AccessReceipt), OramError> {
        self.path_access(id, |entry| entry.payload.clone())
    }

    /// One access with **caller-supplied** position-map state: reads the
    /// path of `known_leaf` (or a uniformly random path when the block was
    /// never assigned), applies `op` to the stash entry, remaps the block
    /// to `new_leaf`, and writes the path back.
    ///
    /// This is the building block of the recursive-position-map
    /// construction ([`crate::recursive`]): the caller keeps leaf labels
    /// in higher ORAM levels and this instance's internal map is merely
    /// kept in sync as a debugging cross-check (a production recursive
    /// build would omit it — it is trusted-side metadata and costs no
    /// simulated time either way).
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for ids ≥ capacity; storage/crypto
    /// errors propagate.
    pub fn access_explicit(
        &mut self,
        id: BlockId,
        known_leaf: Option<u64>,
        new_leaf: u64,
        op: impl FnMut(&mut StashEntry) -> Vec<u8>,
    ) -> Result<(Vec<u8>, AccessReceipt), OramError> {
        self.check_range(id)?;
        assert!(
            new_leaf < self.geometry.leaf_count(),
            "new leaf out of range"
        );
        let busy_before = self.backend.busy();
        let leaf = match known_leaf {
            Some(leaf) => {
                assert!(leaf < self.geometry.leaf_count(), "known leaf out of range");
                leaf
            }
            // Never-assigned block: a random path keeps the bus pattern
            // identical to a real lookup.
            None => rng_uniform(&mut self.rng, self.geometry.leaf_count()),
        };

        self.read_path_into_stash(leaf)?;
        self.position_map.set(id, new_leaf);
        if !self.stash.contains(id) {
            self.stash.insert(StashEntry {
                id,
                leaf: new_leaf,
                payload: vec![0u8; self.payload_len],
            })?;
        }
        let entry = self.stash.get_mut(id).expect("just ensured present");
        entry.leaf = new_leaf;
        let mut op = op;
        let out = op(entry);
        self.write_back_path(leaf)?;
        self.stats.accesses += 1;
        Ok((out, self.busy_delta(busy_before)))
    }

    /// A uniformly random leaf drawn from this instance's seeded RNG —
    /// exposed so recursive wrappers draw remap targets from the same
    /// replayable stream, and so pipelined schedulers can **pre-draw** an
    /// access's randomness at plan time (see the `*_at` access variants).
    pub fn draw_leaf(&mut self) -> u64 {
        rng_uniform(&mut self.rng, self.geometry.leaf_count())
    }

    /// The RNG stream position `(block counter, byte cursor)` — exposed
    /// for determinism audits: the pipelined scheduler's regression tests
    /// pin these positions to prove that pre-drawing randomness at plan
    /// time consumes the stream exactly as the unpipelined path does.
    pub fn rng_stream_pos(&self) -> (u32, usize) {
        self.rng.stream_pos()
    }

    /// The assigned leaf of `id`, or an error if the block was never
    /// assigned — the lookup backing the pinned-randomness access
    /// variants, which exist precisely for blocks whose position is
    /// already known at plan time.
    fn pinned_leaf(&self, id: BlockId) -> Result<u64, OramError> {
        self.check_range(id)?;
        self.position_map.get(id).ok_or_else(|| {
            OramError::internal(format!("pre-drawn access to unassigned block {id}"))
        })
    }

    /// [`access_read`](Self::access_read) with **pre-drawn** remap
    /// randomness: the block must already be assigned (H-ORAM hit blocks
    /// always are — their I/O arrival assigned a leaf), and `new_leaf`
    /// replaces the draw [`path_access`](Self::access_read) would make.
    /// Device accesses, stash transitions, and statistics are identical
    /// to `access_read`; callers drawing `new_leaf` from
    /// [`draw_leaf`](Self::draw_leaf) in the same order the unpinned path
    /// would preserve the RNG stream byte for byte.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for ids ≥ capacity;
    /// [`OramError::Internal`] for unassigned blocks (the caller's
    /// hit classification is broken); storage/crypto errors propagate.
    pub fn access_read_at(
        &mut self,
        id: BlockId,
        new_leaf: u64,
    ) -> Result<(Vec<u8>, AccessReceipt), OramError> {
        let leaf = self.pinned_leaf(id)?;
        self.access_explicit(id, Some(leaf), new_leaf, |entry| entry.payload.clone())
    }

    /// [`access_write`](Self::access_write) with pre-drawn remap
    /// randomness; see [`access_read_at`](Self::access_read_at).
    ///
    /// # Errors
    ///
    /// As [`access_read_at`](Self::access_read_at), plus
    /// [`OramError::PayloadSize`] for a wrong-length payload.
    pub fn access_write_at(
        &mut self,
        id: BlockId,
        new_leaf: u64,
        data: &[u8],
    ) -> Result<(Vec<u8>, AccessReceipt), OramError> {
        if data.len() != self.payload_len {
            return Err(OramError::PayloadSize {
                expected: self.payload_len,
                got: data.len(),
            });
        }
        let leaf = self.pinned_leaf(id)?;
        let data = data.to_vec();
        self.access_explicit(id, Some(leaf), new_leaf, move |entry| {
            std::mem::replace(&mut entry.payload, data.clone())
        })
    }

    /// The internal position-map entry for `id`, if assigned. Root levels
    /// of the recursive construction use their internal map as the trusted
    /// root table; this is its lookup.
    pub fn leaf_hint(&self, id: BlockId) -> Option<u64> {
        if id.0 >= self.capacity {
            return None;
        }
        self.position_map.get(id)
    }

    /// Writes block `id`, returning the previous payload and timing
    /// receipt.
    ///
    /// # Errors
    ///
    /// [`OramError::PayloadSize`] if `data` has the wrong length;
    /// [`OramError::BlockOutOfRange`] for ids ≥ capacity.
    pub fn access_write(
        &mut self,
        id: BlockId,
        data: &[u8],
    ) -> Result<(Vec<u8>, AccessReceipt), OramError> {
        if data.len() != self.payload_len {
            return Err(OramError::PayloadSize {
                expected: self.payload_len,
                got: data.len(),
            });
        }
        let data = data.to_vec();
        self.path_access(id, move |entry| {
            std::mem::replace(&mut entry.payload, data.clone())
        })
    }

    /// A padding access: full read+write-back of a uniformly random path,
    /// touching no logical block. Indistinguishable from a real access on
    /// the bus.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn dummy_access(&mut self) -> Result<AccessReceipt, OramError> {
        let leaf = rng_uniform(&mut self.rng, self.geometry.leaf_count());
        self.dummy_access_at(leaf)
    }

    /// [`dummy_access`](Self::dummy_access) with a **pre-drawn** path:
    /// reads and writes back the path of `leaf` instead of drawing one.
    /// Pipelined schedulers draw the leaf (via
    /// [`draw_leaf`](Self::draw_leaf)) at plan time so overlap depth
    /// cannot reorder the RNG stream.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is outside the tree.
    pub fn dummy_access_at(&mut self, leaf: u64) -> Result<AccessReceipt, OramError> {
        assert!(leaf < self.geometry.leaf_count(), "dummy leaf out of range");
        let busy_before = self.backend.busy();
        self.read_path_into_stash(leaf)?;
        self.write_back_path(leaf)?;
        self.stats.dummy_accesses += 1;
        Ok(self.busy_delta(busy_before))
    }

    /// Places an externally fetched block into the stash with a fresh
    /// random leaf (H-ORAM I/O arrival). Costs no device access.
    ///
    /// # Errors
    ///
    /// [`OramError::StashOverflow`] if the stash bound is hit;
    /// [`OramError::PayloadSize`] on wrong payload length.
    pub fn insert_block(&mut self, id: BlockId, payload: Vec<u8>) -> Result<(), OramError> {
        let leaf = rng_uniform(&mut self.rng, self.geometry.leaf_count());
        self.insert_block_at(id, payload, leaf)
    }

    /// [`insert_block`](Self::insert_block) with a **pre-drawn** leaf
    /// assignment — the pipelined scheduler's I/O-arrival path, where the
    /// leaf was drawn at plan time (see
    /// [`draw_leaf`](Self::draw_leaf)).
    ///
    /// # Errors
    ///
    /// As [`insert_block`](Self::insert_block).
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is outside the tree.
    pub fn insert_block_at(
        &mut self,
        id: BlockId,
        payload: Vec<u8>,
        leaf: u64,
    ) -> Result<(), OramError> {
        assert!(leaf < self.geometry.leaf_count(), "leaf out of range");
        self.check_range(id)?;
        if payload.len() != self.payload_len {
            return Err(OramError::PayloadSize {
                expected: self.payload_len,
                got: payload.len(),
            });
        }
        self.position_map.set(id, leaf);
        self.stash.insert(StashEntry { id, leaf, payload })?;
        self.stats.stash_inserts += 1;
        Ok(())
    }

    /// Whether block `id` is resident (in tree or stash).
    pub fn contains(&self, id: BlockId) -> bool {
        id.0 < self.capacity && self.position_map.get(id).is_some()
    }

    /// Streams the whole tree out and drains the stash, returning every
    /// resident real block. The tree is left empty (torn down); call
    /// [`rebuild_empty`](Self::rebuild_empty) before reusing it.
    ///
    /// This is step 1 of H-ORAM's shuffle period ("read all the blocks,
    /// both real and dummy, into a temporary buffer" — the caller runs the
    /// oblivious shuffle on the result).
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn evict_all(&mut self) -> Result<(EvictedBlocks, AccessReceipt), OramError> {
        let busy_before = self.backend.busy();
        let total = self.geometry.total_slots();
        let slots = self.backend.read_all_slots(total)?;
        let mut blocks = Vec::new();
        for (addr, slot) in slots.into_iter().enumerate() {
            let Some(sealed) = slot else { continue };
            if let BlockContent::Real { id, payload, .. } =
                self.open_content(addr as u64, &sealed)?
            {
                blocks.push((id, payload));
            }
        }
        for entry in self.stash.drain_all() {
            blocks.push((entry.id, entry.payload));
        }
        self.backend.clear()?;
        self.position_map.clear_all();
        Ok((blocks, self.busy_delta(busy_before)))
    }

    /// Writes a fresh all-dummy tree image and resets the position map —
    /// step 3 of the shuffle period ("initialize a new Path ORAM tree").
    ///
    /// # Errors
    ///
    /// Storage errors propagate.
    pub fn rebuild_empty(&mut self) -> Result<AccessReceipt, OramError> {
        let busy_before = self.backend.busy();
        self.position_map.clear_all();
        self.write_dummy_image()?;
        self.stats.rebuilds += 1;
        Ok(self.busy_delta(busy_before))
    }

    /// Bulk-loads a dataset at construction time: every block gets a random
    /// leaf and is greedily placed into the deepest bucket on its path
    /// (leftovers go to the stash). One streaming device pass.
    ///
    /// Used by baselines that start full (tree-top-cache Path ORAM); the
    /// H-ORAM memory layer starts empty instead.
    ///
    /// # Errors
    ///
    /// [`OramError::StashOverflow`] if more than the stash bound fails
    /// placement (practically impossible at ≤50 % utilization);
    /// [`OramError::PayloadSize`] on wrong payload length.
    pub fn bulk_load(
        &mut self,
        blocks: impl IntoIterator<Item = (BlockId, Vec<u8>)>,
    ) -> Result<AccessReceipt, OramError> {
        let busy_before = self.backend.busy();
        let z = self.geometry.z() as usize;
        let bucket_count = self.geometry.bucket_count() as usize;
        let mut staged: Vec<Vec<(BlockId, u64, Vec<u8>)>> = vec![Vec::new(); bucket_count];

        for (id, payload) in blocks {
            self.check_range(id)?;
            if payload.len() != self.payload_len {
                return Err(OramError::PayloadSize {
                    expected: self.payload_len,
                    got: payload.len(),
                });
            }
            let leaf = rng_uniform(&mut self.rng, self.geometry.leaf_count());
            self.position_map.set(id, leaf);
            // Deepest-first greedy placement.
            let mut placed = false;
            for node in self.geometry.path_nodes(leaf).into_iter().rev() {
                if staged[node as usize].len() < z {
                    staged[node as usize].push((id, leaf, payload.clone()));
                    placed = true;
                    break;
                }
            }
            if !placed {
                self.stash.insert(StashEntry { id, leaf, payload })?;
            }
        }

        let mut image = Vec::with_capacity(self.geometry.total_slots() as usize);
        for (node, bucket) in staged.into_iter().enumerate() {
            for slot in 0..z {
                let addr = self.geometry.slot_addr(node as u64, slot as u32);
                let content = match bucket.get(slot) {
                    Some((id, leaf, payload)) => BlockContent::Real {
                        id: *id,
                        leaf: *leaf,
                        payload: payload.clone(),
                    },
                    None => BlockContent::Dummy,
                };
                image.push(self.seal_content(addr, &content));
            }
        }
        self.backend.init_all_slots(image)?;
        Ok(self.busy_delta(busy_before))
    }
}

impl<B: TreeBackend> Oram for PathOramCore<B> {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn payload_len(&self) -> usize {
        self.payload_len
    }

    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
        self.access_read(id).map(|(data, _)| data)
    }

    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
        self.access_write(id, data).map(|(prev, _)| prev)
    }
}

fn rng_uniform(rng: &mut DeterministicRng, bound: u64) -> u64 {
    use rand::Rng;
    rng.gen_range(0..bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use proptest::prelude::*;

    fn keys() -> SubKeys {
        MasterKey::from_bytes([7u8; 32]).derive("path-oram-test", 0)
    }

    fn memory_oram(capacity: u64, payload_len: usize) -> PathOram {
        let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
        PathOram::new(PathOramConfig::new(capacity, payload_len), device, &keys()).unwrap()
    }

    #[test]
    fn fresh_blocks_read_as_zeros() {
        let mut oram = memory_oram(16, 8);
        assert_eq!(oram.read(BlockId(3)).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn read_your_writes() {
        let mut oram = memory_oram(16, 4);
        oram.write(BlockId(2), &[9, 8, 7, 6]).unwrap();
        assert_eq!(oram.read(BlockId(2)).unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn write_returns_previous() {
        let mut oram = memory_oram(16, 2);
        let prev = oram.write(BlockId(0), &[1, 1]).unwrap();
        assert_eq!(prev, vec![0, 0]);
        let prev = oram.write(BlockId(0), &[2, 2]).unwrap();
        assert_eq!(prev, vec![1, 1]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut oram = memory_oram(4, 2);
        assert!(matches!(
            oram.read(BlockId(4)),
            Err(OramError::BlockOutOfRange { id: 4, capacity: 4 })
        ));
    }

    #[test]
    fn wrong_payload_length_rejected() {
        let mut oram = memory_oram(4, 2);
        assert!(matches!(
            oram.write(BlockId(0), &[1, 2, 3]),
            Err(OramError::PayloadSize {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn many_blocks_roundtrip_through_tree() {
        let mut oram = memory_oram(64, 8);
        for i in 0..64u64 {
            let payload: Vec<u8> = (0..8).map(|b| (i as u8).wrapping_add(b)).collect();
            oram.write(BlockId(i), &payload).unwrap();
        }
        for i in (0..64u64).rev() {
            let expected: Vec<u8> = (0..8).map(|b| (i as u8).wrapping_add(b)).collect();
            assert_eq!(oram.read(BlockId(i)).unwrap(), expected, "block {i}");
        }
    }

    #[test]
    fn stash_stays_bounded_under_load() {
        let mut oram = memory_oram(128, 4);
        let mut rng = DeterministicRng::from_u64_seed(99);
        use rand::Rng;
        for _ in 0..2000 {
            let id = BlockId(rng.gen_range(0..128));
            if rng.gen_bool(0.5) {
                oram.write(id, &[1, 2, 3, 4]).unwrap();
            } else {
                oram.read(id).unwrap();
            }
        }
        // The classic Path ORAM result: stash stays O(log N)·ω(1); for
        // N=128 a peak beyond 40 would indicate a protocol bug.
        assert!(oram.stash_peak() < 40, "stash peak {}", oram.stash_peak());
    }

    #[test]
    fn access_touches_z_times_depth_slots() {
        let mut oram = memory_oram(32, 4);
        let reads_before = oram.device().stats().reads;
        oram.read(BlockId(0)).unwrap();
        let reads = oram.device().stats().reads - reads_before;
        let expected = (oram.geometry().depth() * oram.geometry().z()) as u64;
        assert_eq!(reads, expected);
    }

    #[test]
    fn dummy_access_is_bus_equivalent_to_real() {
        let mut oram = memory_oram(32, 4);
        oram.read(BlockId(0)).unwrap();
        let before = *oram.device().stats();
        oram.dummy_access().unwrap();
        let after_dummy = *oram.device().stats();
        oram.read(BlockId(1)).unwrap();
        let after_real = *oram.device().stats();
        assert_eq!(
            after_dummy.reads - before.reads,
            after_real.reads - after_dummy.reads,
            "dummy and real accesses must read the same number of slots"
        );
        assert_eq!(
            after_dummy.writes - before.writes,
            after_real.writes - after_dummy.writes,
        );
    }

    #[test]
    fn insert_block_costs_no_device_access() {
        let mut oram = memory_oram(32, 4);
        let ops_before = oram.device().stats().ops();
        oram.insert_block(BlockId(5), vec![1, 2, 3, 4]).unwrap();
        assert_eq!(oram.device().stats().ops(), ops_before);
        assert!(oram.contains(BlockId(5)));
        assert_eq!(oram.read(BlockId(5)).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn pinned_variants_match_drawing_variants_exactly() {
        // Two same-seed instances: one uses the drawing entry points, the
        // other pre-draws each access's randomness in the same order and
        // feeds it to the `*_at` variants. Results, device access counts,
        // statistics, and the RNG stream position must all be identical —
        // the contract the pipelined scheduler's pre-draw rests on.
        let mut drawing = memory_oram(32, 4);
        let mut pinned = memory_oram(32, 4);

        drawing.insert_block(BlockId(3), vec![1, 2, 3, 4]).unwrap();
        let leaf = pinned.draw_leaf();
        pinned
            .insert_block_at(BlockId(3), vec![1, 2, 3, 4], leaf)
            .unwrap();

        let (a, _) = drawing.access_read(BlockId(3)).unwrap();
        let leaf = pinned.draw_leaf();
        let (b, _) = pinned.access_read_at(BlockId(3), leaf).unwrap();
        assert_eq!(a, b);

        let (a, _) = drawing.access_write(BlockId(3), &[9; 4]).unwrap();
        let leaf = pinned.draw_leaf();
        let (b, _) = pinned.access_write_at(BlockId(3), leaf, &[9; 4]).unwrap();
        assert_eq!(a, b);

        drawing.dummy_access().unwrap();
        let leaf = pinned.draw_leaf();
        pinned.dummy_access_at(leaf).unwrap();

        assert_eq!(drawing.rng_stream_pos(), pinned.rng_stream_pos());
        assert_eq!(drawing.stats(), pinned.stats());
        assert_eq!(
            drawing.device().stats().ops(),
            pinned.device().stats().ops()
        );
        assert_eq!(
            drawing.read(BlockId(3)).unwrap(),
            pinned.read(BlockId(3)).unwrap()
        );
    }

    #[test]
    fn pinned_access_to_unassigned_block_is_rejected() {
        let mut oram = memory_oram(8, 4);
        assert!(matches!(
            oram.access_read_at(BlockId(1), 0),
            Err(OramError::Internal { .. })
        ));
        assert!(matches!(
            oram.access_write_at(BlockId(1), 0, &[0; 4]),
            Err(OramError::Internal { .. })
        ));
    }

    #[test]
    fn evict_all_returns_resident_blocks_and_empties() {
        let mut oram = memory_oram(32, 4);
        for i in 0..10u64 {
            oram.write(BlockId(i), &[i as u8; 4]).unwrap();
        }
        let (blocks, _) = oram.evict_all().unwrap();
        assert_eq!(blocks.len(), 10);
        let mut ids: Vec<u64> = blocks.iter().map(|(id, _)| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        for (id, payload) in &blocks {
            assert_eq!(payload, &vec![id.0 as u8; 4]);
        }
        assert_eq!(oram.resident_blocks(), 0);
    }

    #[test]
    fn rebuild_after_evict_gives_fresh_tree() {
        let mut oram = memory_oram(32, 4);
        oram.write(BlockId(1), &[5; 4]).unwrap();
        let _ = oram.evict_all().unwrap();
        oram.rebuild_empty().unwrap();
        // Fresh tree: block 1 is gone; first read materializes zeros.
        assert_eq!(oram.read(BlockId(1)).unwrap(), vec![0; 4]);
        assert_eq!(oram.stats().rebuilds, 1);
    }

    #[test]
    fn bulk_load_places_everything() {
        let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
        let mut oram = PathOram::new(PathOramConfig::new(256, 4), device, &keys()).unwrap();
        oram.bulk_load((0..256u64).map(|i| (BlockId(i), vec![i as u8; 4])))
            .unwrap();
        for i in [0u64, 17, 100, 255] {
            assert_eq!(
                oram.read(BlockId(i)).unwrap(),
                vec![i as u8; 4],
                "block {i}"
            );
        }
    }

    #[test]
    fn for_slot_budget_respects_budget() {
        let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
        let oram = PathOram::for_slot_budget(8192, None, 16, device, &keys(), 1).unwrap();
        assert!(oram.geometry().total_slots() <= 8192);
        assert_eq!(oram.geometry().depth(), 11);
    }

    #[test]
    fn slot_budget_with_wide_capacity_caches_any_id() {
        // H-ORAM's memory layer: tiny tree, huge logical id range.
        let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
        let mut oram =
            PathOram::for_slot_budget(128, Some(1 << 20), 4, device, &keys(), 2).unwrap();
        assert_eq!(oram.capacity(), 1 << 20);
        oram.insert_block(BlockId(999_999), vec![7; 4]).unwrap();
        assert_eq!(oram.read(BlockId(999_999)).unwrap(), vec![7; 4]);
    }

    #[test]
    fn receipts_report_memory_time_only_for_dram_tree() {
        let mut oram = memory_oram(32, 4);
        let (_, receipt) = oram.access_read(BlockId(0)).unwrap();
        assert!(receipt.memory > SimDuration::ZERO);
        assert_eq!(receipt.storage, SimDuration::ZERO);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((0u64..32, proptest::option::of(0u8..255)), 1..60)) {
            let mut oram = memory_oram(32, 4);
            let mut reference = std::collections::HashMap::new();
            for (id, write_byte) in ops {
                match write_byte {
                    Some(b) => {
                        let payload = vec![b; 4];
                        let prev = oram.write(BlockId(id), &payload).unwrap();
                        let expected_prev = reference.insert(id, payload).unwrap_or(vec![0u8; 4]);
                        prop_assert_eq!(prev, expected_prev);
                    }
                    None => {
                        let got = oram.read(BlockId(id)).unwrap();
                        let expected = reference.get(&id).cloned().unwrap_or(vec![0u8; 4]);
                        prop_assert_eq!(got, expected);
                    }
                }
            }
        }
    }
}

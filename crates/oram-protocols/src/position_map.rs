//! The position map: logical block → current position tag.
//!
//! For Path ORAM the tag is the block's current leaf; for the flat
//! protocols it is a slot or partition index. The map lives inside the
//! trusted control layer (the paper reserves 4 MB for it in Figure 4-1),
//! so lookups cost no observable accesses.

use crate::types::BlockId;

/// A dense logical-id → tag map with lazy assignment.
#[derive(Debug, Clone)]
pub struct PositionMap {
    tags: Vec<Option<u64>>,
    assigned: usize,
}

impl PositionMap {
    /// Creates an unassigned map for `capacity` blocks.
    pub fn new(capacity: u64) -> Self {
        Self {
            tags: vec![None; capacity as usize],
            assigned: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.tags.len() as u64
    }

    /// Number of blocks with an assigned tag.
    pub fn assigned(&self) -> usize {
        self.assigned
    }

    /// The tag of `id`, if assigned.
    ///
    /// # Panics
    ///
    /// Panics if `id` is beyond capacity (callers validate range first).
    pub fn get(&self, id: BlockId) -> Option<u64> {
        self.tags[id.0 as usize]
    }

    /// Sets the tag of `id`, returning the previous tag.
    pub fn set(&mut self, id: BlockId, tag: u64) -> Option<u64> {
        let slot = &mut self.tags[id.0 as usize];
        let prev = slot.replace(tag);
        if prev.is_none() {
            self.assigned += 1;
        }
        prev
    }

    /// Returns the tag of `id`, assigning one from `draw` on first use.
    pub fn get_or_assign(&mut self, id: BlockId, draw: impl FnOnce() -> u64) -> u64 {
        if let Some(tag) = self.tags[id.0 as usize] {
            tag
        } else {
            let tag = draw();
            self.set(id, tag);
            tag
        }
    }

    /// Removes the assignment of `id`, returning it.
    pub fn clear_tag(&mut self, id: BlockId) -> Option<u64> {
        let prev = self.tags[id.0 as usize].take();
        if prev.is_some() {
            self.assigned -= 1;
        }
        prev
    }

    /// Drops all assignments (tree teardown between H-ORAM periods).
    pub fn clear_all(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
        self.assigned = 0;
    }

    /// In-enclave memory footprint in bytes (for reporting the control
    /// layer's budget, cf. the paper's "position map (4 MB)" annotation).
    pub fn memory_bytes(&self) -> usize {
        self.tags.len() * std::mem::size_of::<Option<u64>>()
    }

    /// The assigned `(id, tag)` pairs in id order (snapshot serialization;
    /// sparse on purpose — most H-ORAM memory-layer maps are mostly
    /// unassigned between periods).
    pub fn assigned_entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter_map(|(id, tag)| tag.map(|t| (id as u64, t)))
    }

    /// Replaces all assignments with the given `(id, tag)` pairs
    /// (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics if any id is beyond capacity.
    pub fn restore(&mut self, entries: impl IntoIterator<Item = (u64, u64)>) {
        self.clear_all();
        for (id, tag) in entries {
            self.set(BlockId(id), tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unassigned() {
        let map = PositionMap::new(10);
        assert_eq!(map.capacity(), 10);
        assert_eq!(map.assigned(), 0);
        assert_eq!(map.get(BlockId(3)), None);
    }

    #[test]
    fn set_and_get() {
        let mut map = PositionMap::new(4);
        assert_eq!(map.set(BlockId(1), 99), None);
        assert_eq!(map.get(BlockId(1)), Some(99));
        assert_eq!(map.set(BlockId(1), 7), Some(99));
        assert_eq!(map.assigned(), 1);
    }

    #[test]
    fn get_or_assign_draws_once() {
        let mut map = PositionMap::new(4);
        let mut draws = 0;
        let first = map.get_or_assign(BlockId(2), || {
            draws += 1;
            42
        });
        let second = map.get_or_assign(BlockId(2), || {
            draws += 1;
            77
        });
        assert_eq!(first, 42);
        assert_eq!(second, 42);
        assert_eq!(draws, 1);
    }

    #[test]
    fn clear_tag_and_clear_all() {
        let mut map = PositionMap::new(4);
        map.set(BlockId(0), 1);
        map.set(BlockId(1), 2);
        assert_eq!(map.clear_tag(BlockId(0)), Some(1));
        assert_eq!(map.assigned(), 1);
        map.clear_all();
        assert_eq!(map.assigned(), 0);
        assert_eq!(map.get(BlockId(1)), None);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        PositionMap::new(2).get(BlockId(2));
    }

    #[test]
    fn memory_footprint_scales() {
        assert!(PositionMap::new(1000).memory_bytes() >= 8000);
    }
}

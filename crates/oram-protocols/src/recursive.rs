//! Recursive-position-map Path ORAM.
//!
//! The paper evaluates "the naive setting (no recursive)" (§5.2.1): every
//! instance holds its full position map in trusted memory. The standard
//! remedy when that map is too large is **recursion** (Stefanov et al.):
//! store the data ORAM's leaf labels packed into blocks of a smaller Path
//! ORAM, that ORAM's labels in a yet smaller one, and so on until the top
//! map fits a trusted-memory threshold. This module provides that variant
//! so the reproduction covers the design point the paper explicitly set
//! aside — and so its cost (one extra ORAM access per level per request)
//! can be measured against the naive setting.
//!
//! Layout: with `k` labels per map block, map level 0 holds
//! `⌈N/k⌉` blocks covering the data ORAM, level 1 holds `⌈N/k²⌉`, …; the
//! topmost level is a plain [`PathOram`] whose internal (small) map is the
//! trusted-memory root table. Labels are stored `leaf + 1` so zero means
//! "unassigned" (map payloads start zeroed).
//!
//! Every logical access walks the chain top-down, read-modify-writing one
//! label per level (each an ordinary, oblivious ORAM access that also
//! remaps the map block), then performs the data access with the
//! retrieved leaf — exactly `levels + 1` path accesses per request, the
//! textbook recursion overhead.

use crate::error::OramError;
use crate::oram_trait::Oram;
use crate::path_oram::{AccessReceipt, PathOram, PathOramConfig};
use crate::types::BlockId;
use oram_crypto::keys::SubKeys;
use oram_storage::device::Device;

/// Labels per map block (`payload_len / 8`).
const LABEL_BYTES: usize = 8;

/// Path ORAM with its position map stored recursively in smaller ORAMs.
#[derive(Debug)]
pub struct RecursivePathOram {
    data: PathOram,
    /// Map levels, closest-to-data first; the last level's own (small)
    /// internal map is the trusted root table.
    maps: Vec<PathOram>,
    /// Labels per map block.
    fanout: u64,
    capacity: u64,
    payload_len: usize,
    accesses: u64,
}

impl RecursivePathOram {
    /// Builds the recursive construction.
    ///
    /// `map_payload_len` sets the map-block size (fanout =
    /// `map_payload_len / 8`); recursion stops once a level has at most
    /// `root_threshold` blocks. `device_factory` supplies one device per
    /// tree (call-order: data ORAM first, then map levels bottom-up).
    ///
    /// # Errors
    ///
    /// Propagates storage errors from tree construction.
    ///
    /// # Panics
    ///
    /// Panics if `map_payload_len < 16` (fanout must be ≥ 2) or
    /// `root_threshold == 0`.
    pub fn new(
        config: PathOramConfig,
        map_payload_len: usize,
        root_threshold: u64,
        mut device_factory: impl FnMut() -> Device,
        keys: &SubKeys,
    ) -> Result<Self, OramError> {
        assert!(
            map_payload_len >= 2 * LABEL_BYTES,
            "fanout must be at least 2"
        );
        assert!(
            map_payload_len.is_multiple_of(LABEL_BYTES),
            "map payload must pack whole labels"
        );
        assert!(root_threshold > 0, "root threshold must be positive");
        let fanout = (map_payload_len / LABEL_BYTES) as u64;

        let capacity = config.capacity;
        let data = PathOram::new(config.clone(), device_factory(), keys)?;

        // Level ℓ covers the entries of level ℓ−1 (level 0 covers the
        // data blocks). Add levels until a level's block count fits the
        // trusted-memory threshold; that level is the root.
        let mut maps = Vec::new();
        let mut entries = capacity;
        loop {
            let blocks = entries.div_ceil(fanout).max(1);
            let map_config = PathOramConfig {
                capacity: blocks,
                z: config.z,
                payload_len: map_payload_len,
                stash_limit: config.stash_limit,
                seed: config.seed ^ (0xAEC0 + maps.len() as u64),
            };
            maps.push(PathOram::new(map_config, device_factory(), keys)?);
            if blocks <= root_threshold {
                break;
            }
            entries = blocks;
        }

        Ok(Self {
            data,
            maps,
            fanout,
            capacity,
            payload_len: config.payload_len,
            accesses: 0,
        })
    }

    /// Number of map levels (excluding the in-enclave root table).
    pub fn map_levels(&self) -> usize {
        self.maps.len()
    }

    /// Trusted-memory bytes of the root table plus stashes — the quantity
    /// recursion exists to shrink (compare with `capacity * 8` for the
    /// naive setting).
    pub fn enclave_bytes(&self) -> usize {
        let root = self.maps.last().expect("at least one map level");
        root.resident_blocks() * LABEL_BYTES
            + (root.geometry().total_slots() as usize / 2) * LABEL_BYTES
    }

    /// Total logical accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Reads the label for `index` at map level `level`, replacing it with
    /// `new_label`. Returns the previous label (0 = unassigned).
    fn map_rmw(
        &mut self,
        level: usize,
        index: u64,
        known_leaf: Option<u64>,
        new_block_leaf: u64,
        new_label: u64,
    ) -> Result<(u64, AccessReceipt), OramError> {
        let block = BlockId(index / self.fanout);
        let slot = (index % self.fanout) as usize;
        let (old_bytes, receipt) =
            self.maps[level].access_explicit(block, known_leaf, new_block_leaf, move |entry| {
                let range = slot * LABEL_BYTES..(slot + 1) * LABEL_BYTES;
                let old = entry.payload[range.clone()].to_vec();
                entry.payload[range].copy_from_slice(&new_label.to_le_bytes());
                old
            })?;
        let old = u64::from_le_bytes(old_bytes.try_into().expect("8-byte label"));
        Ok((old, receipt))
    }

    /// One full recursive access; `op` mutates the data-block stash entry.
    fn access_chain(
        &mut self,
        id: BlockId,
        op: impl FnMut(&mut crate::stash::StashEntry) -> Vec<u8>,
    ) -> Result<(Vec<u8>, AccessReceipt), OramError> {
        if id.0 >= self.capacity {
            return Err(OramError::BlockOutOfRange {
                id: id.0,
                capacity: self.capacity,
            });
        }

        // Indices of the covering map blocks, bottom-up: level 0 block
        // covers the data block, level 1 covers level-0 blocks, …
        let mut indices = Vec::with_capacity(self.maps.len());
        let mut index = id.0;
        for _ in 0..self.maps.len() {
            indices.push(index);
            index /= self.fanout;
        }

        // Fresh leaves for every level's touched block and for the data
        // block, drawn up front (each level's new label is the leaf drawn
        // for the level below).
        let new_data_leaf = self.data.draw_leaf();
        let new_map_leaves: Vec<u64> = (0..self.maps.len())
            .map(|l| self.maps[l].draw_leaf())
            .collect();

        // Walk top-down. The top level is a plain ORAM (its internal map
        // is the root table), so its access uses the ordinary entry point.
        let mut receipt = AccessReceipt::default();
        let top = self.maps.len() - 1;
        let mut child_leaf: Option<u64> = None; // leaf of the level below's block
        for level in (0..=top).rev() {
            let idx = indices[level];
            let new_label_for_child = if level == 0 {
                new_data_leaf
            } else {
                new_map_leaves[level - 1]
            };
            let (old, r) = if level == top {
                // Root level: internal map supplies/updates the block leaf.
                let block = BlockId(idx / self.fanout);
                let slot = (idx % self.fanout) as usize;
                let (old_bytes, r) = {
                    let new_leaf = new_map_leaves[level];
                    let hint = self.maps[level].leaf_hint(block);
                    self.maps[level].access_explicit(block, hint, new_leaf, move |entry| {
                        let range = slot * LABEL_BYTES..(slot + 1) * LABEL_BYTES;
                        let old = entry.payload[range.clone()].to_vec();
                        entry.payload[range]
                            .copy_from_slice(&(new_label_for_child + 1).to_le_bytes());
                        old
                    })?
                };
                (u64::from_le_bytes(old_bytes.try_into().expect("label")), r)
            } else {
                self.map_rmw(
                    level,
                    idx,
                    child_leaf,
                    new_map_leaves[level],
                    new_label_for_child + 1,
                )?
            };
            receipt = receipt.merged(&r);
            // The label read at this level locates the block one level
            // down (sentinel 0 ⇒ unassigned ⇒ None).
            child_leaf = old.checked_sub(1);
        }

        let (out, r) = self
            .data
            .access_explicit(id, child_leaf, new_data_leaf, op)?;
        receipt = receipt.merged(&r);
        self.accesses += 1;
        Ok((out, receipt))
    }
}

impl Oram for RecursivePathOram {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn payload_len(&self) -> usize {
        self.payload_len
    }

    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
        self.access_chain(id, |entry| entry.payload.clone())
            .map(|(data, _)| data)
    }

    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
        if data.len() != self.payload_len {
            return Err(OramError::PayloadSize {
                expected: self.payload_len,
                got: data.len(),
            });
        }
        let data = data.to_vec();
        self.access_chain(id, move |entry| {
            std::mem::replace(&mut entry.payload, data.clone())
        })
        .map(|(prev, _)| prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::rng::DeterministicRng;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use rand::Rng;
    use std::collections::HashMap;

    fn build(capacity: u64) -> RecursivePathOram {
        let machine = MachineConfig::dac2019();
        let clock = SimClock::new();
        let keys = MasterKey::from_bytes([61u8; 32]).derive("recursive", 0);
        RecursivePathOram::new(
            PathOramConfig::new(capacity, 8),
            16, // fanout 2: forces several levels even at test sizes
            4,
            move || machine.build_memory(clock.clone(), None),
            &keys,
        )
        .unwrap()
    }

    #[test]
    fn recursion_produces_multiple_levels() {
        let oram = build(256);
        // fanout 2, threshold 4: 256→128→64→32→16→8→4 blocks.
        assert!(oram.map_levels() >= 4, "levels: {}", oram.map_levels());
    }

    #[test]
    fn read_your_writes() {
        let mut oram = build(64);
        oram.write(BlockId(7), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(oram.read(BlockId(7)).unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(
            oram.read(BlockId(9)).unwrap(),
            vec![0u8; 8],
            "untouched block is zero"
        );
    }

    #[test]
    fn matches_reference_over_random_ops() {
        let mut oram = build(64);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = DeterministicRng::from_u64_seed(71);
        for _ in 0..200 {
            let id = rng.gen_range(0..64u64);
            if rng.gen_bool(0.5) {
                let payload = vec![rng.gen::<u8>(); 8];
                let prev = oram.write(BlockId(id), &payload).unwrap();
                let expected = reference.insert(id, payload).unwrap_or(vec![0u8; 8]);
                assert_eq!(prev, expected, "write-previous of {id}");
            } else {
                let got = oram.read(BlockId(id)).unwrap();
                assert_eq!(got, reference.get(&id).cloned().unwrap_or(vec![0u8; 8]));
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let mut oram = build(32);
        assert!(matches!(
            oram.read(BlockId(32)),
            Err(OramError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn each_access_touches_every_level() {
        let mut oram = build(128);
        let before: Vec<u64> = oram.maps.iter().map(|m| m.stats().accesses).collect();
        oram.read(BlockId(3)).unwrap();
        for (level, map) in oram.maps.iter().enumerate() {
            assert_eq!(
                map.stats().accesses,
                before[level] + 1,
                "map level {level} skipped"
            );
        }
        assert_eq!(oram.accesses(), 1);
    }

    #[test]
    fn enclave_footprint_is_smaller_than_naive() {
        let oram = build(1024);
        // Naive map: 1024 × 8 B = 8192 B. The recursive root covers ≤ 4
        // blocks of labels.
        assert!(
            oram.enclave_bytes() < 2048,
            "enclave {} B not smaller than naive 8192 B",
            oram.enclave_bytes()
        );
    }
}

//! Square-root ORAM (Goldreich–Ostrovsky construction, paper §2.1.3).
//!
//! The flat-layout ancestor of H-ORAM's storage layer. `N` real blocks plus
//! `√N` dummy blocks are stored at pseudo-randomly permuted positions; a
//! trusted *shelter* (stash) of `√N` slots absorbs one period's accesses:
//!
//! * if the requested block is **not** sheltered, read its permuted slot;
//! * if it **is** sheltered, read the *next unused dummy* slot instead — so
//!   the bus sees one fresh, never-repeated slot per access either way;
//! * after `√N` accesses the shelter is full: write everything back and
//!   reshuffle the whole array under a fresh permutation (a new epoch).
//!
//! The reshuffle here runs as the paper describes for the baseline: a full
//! streaming read + in-enclave permutation + full streaming write, the
//! `O(√N)`-amortized cost that motivates both partition ORAM's and
//! H-ORAM's cheaper shuffles.

use crate::error::OramError;
use crate::oram_trait::Oram;
use crate::types::{BlockContent, BlockId};
use oram_crypto::keys::KeyHierarchy;
use oram_crypto::seal::BlockSealer;
use oram_shuffle::permutation::Permutation;
use oram_storage::clock::SimDuration;
use oram_storage::device::Device;
use std::collections::BTreeMap;

/// Statistics of a square-root ORAM instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquareRootStats {
    /// Logical accesses served.
    pub accesses: u64,
    /// Accesses that read a dummy slot (shelter hits).
    pub dummy_reads: u64,
    /// Full reshuffles performed.
    pub reshuffles: u64,
    /// Simulated time spent reshuffling.
    pub reshuffle_time: SimDuration,
}

/// The square-root ORAM. See the [module docs](self).
#[derive(Debug)]
pub struct SquareRootOram {
    device: Device,
    keys: KeyHierarchy,
    sealer: BlockSealer,
    /// Permutation over all `N + √N` physical slots for the current epoch.
    permutation: Permutation,
    /// Shelter: logical id → payload for blocks touched this period.
    shelter: BTreeMap<BlockId, Vec<u8>>,
    /// Next dummy index (0..√N) to consume for shelter hits.
    next_dummy: u64,
    capacity: u64,
    dummy_count: u64,
    payload_len: usize,
    epoch: u64,
    seal_seq: u64,
    period_seed: u64,
    stats: SquareRootStats,
}

impl SquareRootOram {
    /// Builds a square-root ORAM of `capacity` blocks on `device`, with all
    /// blocks zero-initialized and a fresh permutation installed.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial layout write.
    pub fn new(
        capacity: u64,
        payload_len: usize,
        device: Device,
        keys: KeyHierarchy,
        seed: u64,
    ) -> Result<Self, OramError> {
        assert!(capacity > 0, "capacity must be positive");
        let dummy_count = (capacity as f64).sqrt().ceil() as u64;
        let epoch = 0;
        let sealer = BlockSealer::new(&keys.epoch_keys(epoch));
        let mut oram = Self {
            device,
            keys,
            sealer,
            permutation: Permutation::identity((capacity + dummy_count) as usize),
            shelter: BTreeMap::new(),
            next_dummy: 0,
            capacity,
            dummy_count,
            payload_len,
            epoch,
            seal_seq: 0,
            period_seed: seed,
            stats: SquareRootStats::default(),
        };
        oram.install_layout(&BTreeMap::new())?;
        Ok(oram)
    }

    /// Number of dummy blocks (√N).
    pub fn dummy_count(&self) -> u64 {
        self.dummy_count
    }

    /// Accesses remaining before the next forced reshuffle.
    pub fn accesses_until_reshuffle(&self) -> u64 {
        self.dummy_count - self.next_dummy
    }

    /// Statistics of this instance.
    pub fn stats(&self) -> SquareRootStats {
        self.stats
    }

    /// The underlying device (experiment accounting).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Current key epoch (bumps on every reshuffle).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn total_slots(&self) -> u64 {
        self.capacity + self.dummy_count
    }

    /// Logical index space: real blocks are `0..N`, dummies `N..N+√N`.
    fn slot_of_logical(&self, logical: u64) -> u64 {
        self.permutation.apply(logical as usize) as u64
    }

    fn seal_content(
        &mut self,
        slot: u64,
        content: &BlockContent,
    ) -> oram_crypto::seal::SealedBlock {
        let seq = self.seal_seq;
        self.seal_seq += 1;
        self.sealer
            .seal(slot, seq, &content.encode(self.payload_len))
    }

    /// Writes the full permuted layout, folding in `overrides` (id →
    /// payload) over the blocks currently on the device.
    ///
    /// One streaming pass; also the initial construction path.
    fn install_layout(&mut self, overrides: &BTreeMap<BlockId, Vec<u8>>) -> Result<(), OramError> {
        // Gather current payloads (empty on first install).
        let mut payloads: Vec<Vec<u8>> = vec![vec![0u8; self.payload_len]; self.capacity as usize];
        if self.device.stored_blocks() > 0 {
            let slots = self.device.read_run(0, self.total_slots())?;
            for (slot, sealed) in slots.into_iter().enumerate() {
                let Some(sealed) = sealed else { continue };
                if let BlockContent::Real { id, payload, .. } =
                    BlockContent::decode(&self.sealer.open(&sealed)?, slot as u64)?
                {
                    payloads[id.0 as usize] = payload;
                }
            }
        }
        for (id, payload) in overrides {
            payloads[id.0 as usize] = payload.clone();
        }

        // New epoch: fresh permutation and keys.
        self.epoch += 1;
        self.sealer = BlockSealer::new(&self.keys.epoch_keys(self.epoch));
        self.permutation = Permutation::random(
            self.total_slots() as usize,
            self.period_seed ^ self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );

        // Build the permuted image and stream it out.
        let mut image: Vec<Option<oram_crypto::seal::SealedBlock>> =
            (0..self.total_slots()).map(|_| None).collect();
        for logical in 0..self.total_slots() {
            let slot = self.slot_of_logical(logical);
            let content = if logical < self.capacity {
                BlockContent::Real {
                    id: BlockId(logical),
                    leaf: 0,
                    payload: payloads[logical as usize].clone(),
                }
            } else {
                BlockContent::Dummy
            };
            image[slot as usize] = Some(self.seal_content(slot, &content));
        }
        let blocks: Vec<_> = image
            .into_iter()
            .map(|b| b.expect("all slots filled"))
            .collect();
        self.device.write_run(0, blocks)?;
        self.next_dummy = 0;
        Ok(())
    }

    fn check_range(&self, id: BlockId) -> Result<(), OramError> {
        if id.0 >= self.capacity {
            return Err(OramError::BlockOutOfRange {
                id: id.0,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// One oblivious access; `update` optionally replaces the payload.
    fn access_inner(&mut self, id: BlockId, update: Option<&[u8]>) -> Result<Vec<u8>, OramError> {
        self.check_range(id)?;
        if let Some(data) = update {
            if data.len() != self.payload_len {
                return Err(OramError::PayloadSize {
                    expected: self.payload_len,
                    got: data.len(),
                });
            }
        }

        let sheltered = self.shelter.contains_key(&id);
        if sheltered {
            // Shelter hit: burn the next unused dummy slot on the bus.
            let dummy_logical = self.capacity + self.next_dummy;
            let slot = self.slot_of_logical(dummy_logical);
            let _ = self.device.read_block(slot)?;
            self.stats.dummy_reads += 1;
        } else {
            let slot = self.slot_of_logical(id.0);
            let sealed = self.device.read_block(slot)?;
            match BlockContent::decode(&self.sealer.open(&sealed)?, slot)? {
                BlockContent::Real { payload, .. } => {
                    self.shelter.insert(id, payload);
                }
                BlockContent::Dummy => return Err(OramError::MalformedBlock { slot }),
            }
        }
        self.next_dummy += 1;

        let entry = self.shelter.get_mut(&id).expect("sheltered above");
        let previous = entry.clone();
        if let Some(data) = update {
            *entry = data.to_vec();
        }
        self.stats.accesses += 1;

        if self.next_dummy >= self.dummy_count {
            self.reshuffle()?;
        }
        Ok(previous)
    }

    /// Forces the end-of-period reshuffle: write shelter back, re-permute,
    /// re-encrypt, new epoch.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn reshuffle(&mut self) -> Result<(), OramError> {
        let busy_before = self.device.stats().busy;
        let shelter = std::mem::take(&mut self.shelter);
        self.install_layout(&shelter)?;
        self.stats.reshuffles += 1;
        self.stats.reshuffle_time += self.device.stats().busy - busy_before;
        Ok(())
    }
}

impl Oram for SquareRootOram {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn payload_len(&self) -> usize {
        self.payload_len
    }

    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
        self.access_inner(id, None)
    }

    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
        self.access_inner(id, Some(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use oram_storage::trace::AccessTrace;
    use std::collections::HashSet;

    fn build(capacity: u64) -> SquareRootOram {
        build_traced(capacity).0
    }

    fn build_traced(capacity: u64) -> (SquareRootOram, AccessTrace) {
        let trace = AccessTrace::new();
        let device = MachineConfig::dac2019().build_storage(SimClock::new(), Some(trace.clone()));
        let keys = KeyHierarchy::new(MasterKey::from_bytes([2; 32]), "sqrt-test");
        (
            SquareRootOram::new(capacity, 4, device, keys, 11).unwrap(),
            trace,
        )
    }

    #[test]
    fn read_your_writes_across_reshuffles() {
        let mut oram = build(25);
        for i in 0..25u64 {
            oram.write(BlockId(i), &[i as u8; 4]).unwrap();
        }
        for i in 0..25u64 {
            assert_eq!(
                oram.read(BlockId(i)).unwrap(),
                vec![i as u8; 4],
                "block {i}"
            );
        }
        assert!(
            oram.stats().reshuffles >= 9,
            "50 accesses / √25 shelter = 10 periods"
        );
    }

    #[test]
    fn period_length_is_sqrt_n() {
        let mut oram = build(100);
        assert_eq!(oram.dummy_count(), 10);
        for i in 0..9u64 {
            oram.read(BlockId(i)).unwrap();
            assert_eq!(oram.stats().reshuffles, 0);
        }
        oram.read(BlockId(9)).unwrap();
        assert_eq!(oram.stats().reshuffles, 1, "10th access closes the period");
    }

    #[test]
    fn each_slot_read_at_most_once_per_period() {
        let (mut oram, trace) = build_traced(64);
        trace.clear();
        // Repeatedly access the same block: shelter absorbs repeats, dummies
        // burn — every bus read address must still be unique.
        for _ in 0..8 {
            oram.read(BlockId(1)).unwrap();
        }
        let reads: Vec<u64> = trace
            .snapshot()
            .iter()
            .filter(|e| e.kind == oram_storage::device::AccessKind::Read && e.bytes == 1024)
            .map(|e| e.addr)
            .collect();
        let unique: HashSet<u64> = reads.iter().copied().collect();
        assert_eq!(
            unique.len(),
            reads.len(),
            "a slot was read twice in one period"
        );
    }

    #[test]
    fn repeated_access_burns_dummies() {
        let mut oram = build(64);
        for _ in 0..5 {
            oram.read(BlockId(7)).unwrap();
        }
        assert_eq!(oram.stats().dummy_reads, 4, "first access real, rest dummy");
    }

    #[test]
    fn epoch_bumps_on_reshuffle() {
        let mut oram = build(16);
        let before = oram.epoch();
        oram.reshuffle().unwrap();
        assert_eq!(oram.epoch(), before + 1);
    }

    #[test]
    fn out_of_range_and_payload_validation() {
        let mut oram = build(9);
        assert!(matches!(
            oram.read(BlockId(9)),
            Err(OramError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            oram.write(BlockId(0), &[1, 2]),
            Err(OramError::PayloadSize {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn reshuffle_time_accumulates() {
        let mut oram = build(36);
        for i in 0..6u64 {
            oram.read(BlockId(i)).unwrap();
        }
        assert!(oram.stats().reshuffle_time > SimDuration::ZERO);
    }
}

//! The stash (shelter): trusted overflow buffer for in-flight blocks.
//!
//! Blocks decrypted from a path live here until they are written back along
//! a later path; square-root-style protocols use the same structure as the
//! "shelter" that absorbs one period's accesses. The stash lives in the
//! trusted control layer; its *occupancy* must stay bounded (Path ORAM's
//! main theorem), which [`Stash::insert`] enforces and tests assert.

use crate::error::OramError;
use crate::types::BlockId;
use std::collections::BTreeMap;

/// One stash entry: a decrypted block and its current position tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StashEntry {
    /// Logical identifier.
    pub id: BlockId,
    /// Current position tag (leaf for tree protocols).
    pub leaf: u64,
    /// Plaintext payload.
    pub payload: Vec<u8>,
}

/// A bounded, id-indexed stash.
#[derive(Debug, Clone)]
pub struct Stash {
    entries: BTreeMap<BlockId, StashEntry>,
    limit: usize,
    peak: usize,
}

impl Stash {
    /// Creates a stash bounded at `limit` entries.
    pub fn new(limit: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            limit,
            peak: 0,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest occupancy ever observed (the statistic Path ORAM's security
    /// parameter bounds).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The configured bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: BlockId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Read-only view of the entry for `id`.
    pub fn get(&self, id: BlockId) -> Option<&StashEntry> {
        self.entries.get(&id)
    }

    /// Mutable view of the entry for `id` (payload updates, leaf remaps).
    pub fn get_mut(&mut self, id: BlockId) -> Option<&mut StashEntry> {
        self.entries.get_mut(&id)
    }

    /// Inserts or replaces an entry.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::StashOverflow`] if a *new* entry would exceed
    /// the bound (replacement never grows the stash).
    pub fn insert(&mut self, entry: StashEntry) -> Result<(), OramError> {
        if !self.entries.contains_key(&entry.id) && self.entries.len() >= self.limit {
            return Err(OramError::StashOverflow { limit: self.limit });
        }
        self.entries.insert(entry.id, entry);
        self.peak = self.peak.max(self.entries.len());
        Ok(())
    }

    /// Removes and returns the entry for `id`.
    pub fn remove(&mut self, id: BlockId) -> Option<StashEntry> {
        self.entries.remove(&id)
    }

    /// Removes up to `max` entries satisfying `pred`, returning them.
    ///
    /// This is the write-back selector: Path ORAM calls it per bucket with
    /// a path-compatibility predicate.
    pub fn take_matching(
        &mut self,
        max: usize,
        mut pred: impl FnMut(&StashEntry) -> bool,
    ) -> Vec<StashEntry> {
        let ids: Vec<BlockId> = self
            .entries
            .values()
            .filter(|e| pred(e))
            .take(max)
            .map(|e| e.id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.entries.remove(&id))
            .collect()
    }

    /// Replaces the stash contents and peak watermark (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics if `entries` exceeds the configured bound — a snapshot from
    /// a compatible instance cannot (inserts enforced the bound).
    pub fn restore(&mut self, entries: Vec<StashEntry>, peak: usize) {
        assert!(
            entries.len() <= self.limit,
            "restored stash exceeds its bound"
        );
        self.entries = entries.into_iter().map(|e| (e.id, e)).collect();
        self.peak = peak.max(self.entries.len());
    }

    /// Removes and returns all entries, ordered by block id.
    pub fn drain_all(&mut self) -> Vec<StashEntry> {
        std::mem::take(&mut self.entries).into_values().collect()
    }

    /// Iterates over entries in block-id order (deterministic iteration is
    /// what keeps whole simulation runs replayable).
    pub fn iter(&self) -> impl Iterator<Item = &StashEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, leaf: u64) -> StashEntry {
        StashEntry {
            id: BlockId(id),
            leaf,
            payload: vec![id as u8],
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut stash = Stash::new(10);
        stash.insert(entry(1, 5)).unwrap();
        assert!(stash.contains(BlockId(1)));
        assert_eq!(stash.get(BlockId(1)).unwrap().leaf, 5);
        let removed = stash.remove(BlockId(1)).unwrap();
        assert_eq!(removed.payload, vec![1]);
        assert!(stash.is_empty());
    }

    #[test]
    fn replacement_does_not_grow() {
        let mut stash = Stash::new(1);
        stash.insert(entry(1, 5)).unwrap();
        stash.insert(entry(1, 9)).unwrap(); // replace at capacity: fine
        assert_eq!(stash.len(), 1);
        assert_eq!(stash.get(BlockId(1)).unwrap().leaf, 9);
    }

    #[test]
    fn overflow_is_detected() {
        let mut stash = Stash::new(2);
        stash.insert(entry(1, 0)).unwrap();
        stash.insert(entry(2, 0)).unwrap();
        assert_eq!(
            stash.insert(entry(3, 0)),
            Err(OramError::StashOverflow { limit: 2 })
        );
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut stash = Stash::new(10);
        stash.insert(entry(1, 0)).unwrap();
        stash.insert(entry(2, 0)).unwrap();
        stash.remove(BlockId(1));
        stash.insert(entry(3, 0)).unwrap();
        assert_eq!(stash.len(), 2);
        assert_eq!(stash.peak(), 2);
    }

    #[test]
    fn take_matching_respects_max_and_pred() {
        let mut stash = Stash::new(10);
        for i in 0..6 {
            stash.insert(entry(i, i % 2)).unwrap();
        }
        let taken = stash.take_matching(2, |e| e.leaf == 0);
        assert_eq!(taken.len(), 2);
        assert!(taken.iter().all(|e| e.leaf == 0));
        assert_eq!(stash.len(), 4);
    }

    #[test]
    fn drain_all_empties() {
        let mut stash = Stash::new(10);
        stash.insert(entry(1, 0)).unwrap();
        stash.insert(entry(2, 0)).unwrap();
        let mut drained = stash.drain_all();
        drained.sort_by_key(|e| e.id);
        assert_eq!(drained.len(), 2);
        assert!(stash.is_empty());
        assert_eq!(stash.peak(), 2, "peak survives draining");
    }

    #[test]
    fn update_payload_via_get_mut() {
        let mut stash = Stash::new(4);
        stash.insert(entry(1, 3)).unwrap();
        stash.get_mut(BlockId(1)).unwrap().payload = vec![9, 9];
        assert_eq!(stash.get(BlockId(1)).unwrap().payload, vec![9, 9]);
    }
}

//! Tree-top-cache Path ORAM — the paper's baseline (§3.1, Figure 3-1a).
//!
//! When the ORAM dataset outgrows main memory, the straightforward design
//! (used e.g. by ZeroTrace) keeps the *top* levels of the Path ORAM tree in
//! memory and extends the *bottom* levels onto storage. Every path access
//! then decomposes into several fast memory bucket accesses plus several
//! slow I/O bucket accesses — and because the deep levels hold most of the
//! tree, the I/O portion cannot be avoided or cached. This is precisely the
//! inefficiency H-ORAM attacks.
//!
//! The implementation reuses [`PathOramCore`] over a [`SplitBackend`] whose
//! boundary is the largest whole number of tree levels fitting the memory
//! budget. For the paper's Table 5-1 parameters (1 GB data, 128 MB memory,
//! 1 KB blocks, Z=4) this yields 15 in-memory levels and 4 storage levels:
//! `Z·4 = 16 KB` read + 16 KB written per access on the I/O bus, matching
//! the paper's stated access overhead.

use crate::backend::SplitBackend;
use crate::bucket_tree::TreeGeometry;
use crate::error::OramError;
use crate::path_oram::{PathOramConfig, PathOramCore};
use oram_crypto::keys::SubKeys;
use oram_storage::device::Device;

/// Path ORAM with the tree split across memory and storage.
pub type TreeTopCachePathOram = PathOramCore<SplitBackend>;

/// Sizing computed for a tree-top-cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeTopSplit {
    /// Total tree depth (bucket levels).
    pub depth: u32,
    /// Number of top levels resident in memory.
    pub memory_levels: u32,
    /// Number of bottom levels on storage.
    pub storage_levels: u32,
    /// First slot address on the storage device.
    pub boundary_addr: u64,
    /// Storage-resident buckets touched per access (reads; writes equal).
    pub io_buckets_per_access: u32,
}

impl TreeTopSplit {
    /// Computes the split for `capacity` real blocks with a memory budget
    /// of `memory_slots` block slots.
    ///
    /// # Panics
    ///
    /// Panics if the memory budget cannot hold even the root bucket.
    pub fn compute(capacity: u64, memory_slots: u64, z: u32) -> Self {
        let geometry = TreeGeometry::for_capacity(capacity, z);
        let depth = geometry.depth();
        // Largest k with (2^k − 1)·Z ≤ memory_slots, capped at the depth.
        let mut memory_levels = 0u32;
        while memory_levels < depth
            && ((1u64 << (memory_levels + 1)) - 1) * z as u64 <= memory_slots
        {
            memory_levels += 1;
        }
        assert!(
            memory_levels > 0,
            "memory budget smaller than the root bucket"
        );
        let boundary_buckets = (1u64 << memory_levels) - 1;
        TreeTopSplit {
            depth,
            memory_levels,
            storage_levels: depth - memory_levels,
            boundary_addr: boundary_buckets * z as u64,
            io_buckets_per_access: depth - memory_levels,
        }
    }
}

/// Builds the paper's baseline: a full dataset in a split tree.
///
/// `memory_slots` is the in-memory budget in block slots (e.g. 128 MB of
/// 1 KB blocks → 131 072 slots). The returned ORAM starts zero-initialized;
/// call [`PathOramCore::bulk_load`] to install a dataset.
///
/// # Errors
///
/// Propagates storage errors from writing the initial tree image.
pub fn build_tree_top_cache(
    config: PathOramConfig,
    memory_slots: u64,
    memory_device: Device,
    storage_device: Device,
    keys: &SubKeys,
) -> Result<(TreeTopCachePathOram, TreeTopSplit), OramError> {
    let split = TreeTopSplit::compute(config.capacity, memory_slots, config.z);
    let geometry = TreeGeometry::for_capacity(config.capacity, config.z);
    let backend = SplitBackend::new(memory_device, storage_device, split.boundary_addr);
    let oram = PathOramCore::with_geometry(config, geometry, backend, keys)?;
    Ok((oram, split))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::TreeBackend;
    use crate::oram_trait::Oram;
    use crate::types::BlockId;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::rng::DeterministicRng;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use rand::Rng;

    fn keys() -> SubKeys {
        MasterKey::from_bytes([3u8; 32]).derive("ttc-test", 0)
    }

    fn build(capacity: u64, memory_slots: u64) -> (TreeTopCachePathOram, TreeTopSplit) {
        let config = MachineConfig::dac2019();
        let clock = SimClock::new();
        build_tree_top_cache(
            PathOramConfig::new(capacity, 8),
            memory_slots,
            config.build_memory(clock.clone(), None),
            config.build_storage(clock, None),
            &keys(),
        )
        .unwrap()
    }

    #[test]
    fn paper_table_5_1_split() {
        // 1 GB data = 2^20 blocks of 1 KB; 128 MB memory = 131 072 slots.
        let split = TreeTopSplit::compute(1 << 20, 131_072, 4);
        assert_eq!(split.depth, 19);
        assert_eq!(split.memory_levels, 15);
        assert_eq!(split.storage_levels, 4);
        // 4 buckets × Z=4 blocks × 1 KB = 16 KB per direction (Table 5-1).
        assert_eq!(split.io_buckets_per_access * 4, 16);
    }

    #[test]
    fn small_split_reads_and_writes_correctly() {
        let (mut oram, split) = build(256, 64);
        assert!(
            split.storage_levels > 0,
            "test should exercise both regions"
        );
        for i in 0..32u64 {
            oram.write(BlockId(i), &[i as u8; 8]).unwrap();
        }
        for i in 0..32u64 {
            assert_eq!(oram.read(BlockId(i)).unwrap(), vec![i as u8; 8]);
        }
    }

    #[test]
    fn io_bucket_count_matches_split() {
        let (mut oram, split) = build(256, 64);
        let (_, storage_before) = oram.backend().stats();
        oram.read(BlockId(0)).unwrap();
        let (_, storage_after) = oram.backend().stats();
        let io_reads = storage_after.reads - storage_before.reads;
        let io_writes = storage_after.writes - storage_before.writes;
        assert_eq!(io_reads, (split.io_buckets_per_access * 4) as u64);
        assert_eq!(io_writes, (split.io_buckets_per_access * 4) as u64);
    }

    #[test]
    fn storage_time_dominates_access_receipts() {
        let (mut oram, _) = build(256, 64);
        let (_, receipt) = oram.access_read(BlockId(1)).unwrap();
        assert!(receipt.storage.as_nanos() > 10 * receipt.memory.as_nanos());
    }

    #[test]
    fn stash_bounded_with_split_backend() {
        let (mut oram, _) = build(128, 32);
        let mut rng = DeterministicRng::from_u64_seed(5);
        for _ in 0..800 {
            let id = BlockId(rng.gen_range(0..128));
            if rng.gen_bool(0.3) {
                oram.write(id, &[1; 8]).unwrap();
            } else {
                oram.read(id).unwrap();
            }
        }
        assert!(oram.stash_peak() < 40, "stash peak {}", oram.stash_peak());
    }

    #[test]
    fn bulk_load_spans_both_devices() {
        let (mut oram, _) = build(256, 64);
        oram.bulk_load((0..256u64).map(|i| (BlockId(i), vec![i as u8; 8])))
            .unwrap();
        for i in [0u64, 63, 128, 255] {
            assert_eq!(oram.read(BlockId(i)).unwrap(), vec![i as u8; 8]);
        }
    }

    #[test]
    #[should_panic(expected = "smaller than the root bucket")]
    fn tiny_memory_budget_panics() {
        TreeTopSplit::compute(256, 2, 4);
    }
}

//! Shared protocol types: block identifiers, requests, and the sealed
//! block wire format.

use crate::error::OramError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical block identifier — the address the *application* uses.
///
/// Logical identifiers never appear on any bus: protocols translate them to
/// physical slots through position maps and permutation lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u64> for BlockId {
    fn from(v: u64) -> Self {
        BlockId(v)
    }
}

/// The operation of one ORAM request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOp {
    /// Fetch the block's payload.
    Read,
    /// Replace the block's payload, returning the previous bytes.
    Write(Vec<u8>),
}

impl RequestOp {
    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, RequestOp::Write(_))
    }
}

/// One application request against an ORAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Target logical block.
    pub id: BlockId,
    /// Operation.
    pub op: RequestOp,
}

impl Request {
    /// A read request.
    pub fn read(id: impl Into<BlockId>) -> Self {
        Self {
            id: id.into(),
            op: RequestOp::Read,
        }
    }

    /// A write request.
    pub fn write(id: impl Into<BlockId>, payload: Vec<u8>) -> Self {
        Self {
            id: id.into(),
            op: RequestOp::Write(payload),
        }
    }
}

/// Plaintext content of one tree/storage slot, before sealing.
///
/// Real and dummy contents encode to the **same length**, so their sealed
/// ciphertexts are indistinguishable on the bus — the foundation of every
/// obliviousness argument in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockContent {
    /// A slot holding no data (padding). Carries the payload length so the
    /// encoding pads to the uniform size.
    Dummy,
    /// A slot holding application data.
    Real {
        /// Logical identifier.
        id: BlockId,
        /// Current position-map tag (Path ORAM leaf, or partition index for
        /// flat protocols; unused fields are zero).
        leaf: u64,
        /// Application payload.
        payload: Vec<u8>,
    },
}

/// A borrowed view of one encoded slot — [`BlockContent`] without the
/// payload allocation. The zero-copy I/O pipeline decodes into this view
/// and keeps working on the decrypted wire buffer itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockContentRef<'a> {
    /// A slot holding no data (padding).
    Dummy,
    /// A slot holding application data.
    Real {
        /// Logical identifier.
        id: BlockId,
        /// Current position-map tag (see [`BlockContent::Real`]).
        leaf: u64,
        /// Application payload, borrowed from the wire bytes.
        payload: &'a [u8],
    },
}

impl BlockContentRef<'_> {
    /// Copies the view into an owned [`BlockContent`].
    pub fn to_owned(self) -> BlockContent {
        match self {
            BlockContentRef::Dummy => BlockContent::Dummy,
            BlockContentRef::Real { id, leaf, payload } => BlockContent::Real {
                id,
                leaf,
                payload: payload.to_vec(),
            },
        }
    }

    /// Whether this is a real block.
    pub fn is_real(&self) -> bool {
        matches!(self, BlockContentRef::Real { .. })
    }
}

const TAG_DUMMY: u8 = 0;
const TAG_REAL: u8 = 1;
/// Bytes of header: tag + id + leaf.
const HEADER_LEN: usize = 1 + 8 + 8;

impl BlockContent {
    /// Encoded length for a given payload length.
    pub const fn encoded_len(payload_len: usize) -> usize {
        HEADER_LEN + payload_len
    }

    /// Serializes to the uniform wire size for `payload_len`.
    ///
    /// # Panics
    ///
    /// Panics if a real payload's length differs from `payload_len` — the
    /// caller (protocol code) validates application input first.
    pub fn encode(&self, payload_len: usize) -> Vec<u8> {
        let mut out = vec![0u8; Self::encoded_len(payload_len)];
        self.encode_into(payload_len, &mut out);
        out
    }

    /// Serializes into a caller-provided buffer, which is resized to the
    /// uniform wire size — the allocation-free variant of
    /// [`encode`](Self::encode) for pooled buffers.
    ///
    /// # Panics
    ///
    /// As [`encode`](Self::encode).
    pub fn encode_into(&self, payload_len: usize, out: &mut Vec<u8>) {
        out.clear();
        out.resize(Self::encoded_len(payload_len), 0);
        match self {
            BlockContent::Dummy => {
                out[0] = TAG_DUMMY;
            }
            BlockContent::Real { id, leaf, payload } => {
                assert_eq!(
                    payload.len(),
                    payload_len,
                    "payload length invariant broken"
                );
                out[0] = TAG_REAL;
                out[1..9].copy_from_slice(&id.0.to_le_bytes());
                out[9..17].copy_from_slice(&leaf.to_le_bytes());
                out[HEADER_LEN..].copy_from_slice(payload);
            }
        }
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::MalformedBlock`] (tagged with `slot` for
    /// diagnosis) if the bytes are shorter than a header or carry an
    /// unknown tag.
    pub fn decode(bytes: &[u8], slot: u64) -> Result<Self, OramError> {
        Self::decode_ref(bytes, slot).map(BlockContentRef::to_owned)
    }

    /// Parses wire bytes into a borrowed view — no payload copy. The
    /// owned [`decode`](Self::decode) is a thin wrapper over this.
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode).
    pub fn decode_ref(bytes: &[u8], slot: u64) -> Result<BlockContentRef<'_>, OramError> {
        if bytes.len() < HEADER_LEN {
            return Err(OramError::MalformedBlock { slot });
        }
        match bytes[0] {
            TAG_DUMMY => Ok(BlockContentRef::Dummy),
            TAG_REAL => {
                let id = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
                let leaf = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
                Ok(BlockContentRef::Real {
                    id: BlockId(id),
                    leaf,
                    payload: &bytes[HEADER_LEN..],
                })
            }
            _ => Err(OramError::MalformedBlock { slot }),
        }
    }

    /// Parses an owned wire buffer, reusing it as the payload allocation:
    /// for a real block the header bytes are drained off the front and the
    /// remainder *is* the payload (one `memmove`, zero allocations).
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode).
    pub fn decode_owned(mut bytes: Vec<u8>, slot: u64) -> Result<Self, OramError> {
        match Self::decode_ref(&bytes, slot)? {
            BlockContentRef::Dummy => Ok(BlockContent::Dummy),
            BlockContentRef::Real { id, leaf, .. } => {
                bytes.drain(..HEADER_LEN);
                Ok(BlockContent::Real {
                    id,
                    leaf,
                    payload: bytes,
                })
            }
        }
    }

    /// Rewrites the `leaf` field of an encoded **real** block in place —
    /// the shuffle stream re-homes blocks on their decrypted wire buffers
    /// without re-encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not an encoded real block.
    pub fn patch_wire_leaf(bytes: &mut [u8], leaf: u64) {
        assert!(
            bytes.len() >= HEADER_LEN && bytes[0] == TAG_REAL,
            "not an encoded real block"
        );
        bytes[9..17].copy_from_slice(&leaf.to_le_bytes());
    }

    /// Whether this is a real block.
    pub fn is_real(&self) -> bool {
        matches!(self, BlockContent::Real { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_roundtrip() {
        let content = BlockContent::Real {
            id: BlockId(42),
            leaf: 7,
            payload: vec![1, 2, 3, 4],
        };
        let bytes = content.encode(4);
        assert_eq!(bytes.len(), BlockContent::encoded_len(4));
        assert_eq!(BlockContent::decode(&bytes, 0).unwrap(), content);
    }

    #[test]
    fn dummy_roundtrip_and_uniform_length() {
        let dummy = BlockContent::Dummy.encode(16);
        let real = BlockContent::Real {
            id: BlockId(1),
            leaf: 0,
            payload: vec![9u8; 16],
        }
        .encode(16);
        assert_eq!(
            dummy.len(),
            real.len(),
            "dummy and real must be indistinguishable by size"
        );
        assert_eq!(
            BlockContent::decode(&dummy, 3).unwrap(),
            BlockContent::Dummy
        );
    }

    #[test]
    fn decode_ref_borrows_the_payload() {
        let content = BlockContent::Real {
            id: BlockId(9),
            leaf: 2,
            payload: vec![5, 6, 7],
        };
        let bytes = content.encode(3);
        match BlockContent::decode_ref(&bytes, 0).unwrap() {
            BlockContentRef::Real { id, leaf, payload } => {
                assert_eq!(id, BlockId(9));
                assert_eq!(leaf, 2);
                assert_eq!(payload, &[5, 6, 7]);
                assert_eq!(
                    payload.as_ptr(),
                    bytes[17..].as_ptr(),
                    "payload must borrow"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(BlockContent::decode_ref(&bytes, 0).unwrap().is_real());
        assert_eq!(
            BlockContent::decode_ref(&bytes, 0).unwrap().to_owned(),
            content
        );
    }

    #[test]
    fn decode_owned_reuses_the_buffer() {
        let content = BlockContent::Real {
            id: BlockId(4),
            leaf: 0,
            payload: vec![1; 8],
        };
        let bytes = content.encode(8);
        assert_eq!(BlockContent::decode_owned(bytes, 0).unwrap(), content);
        let dummy = BlockContent::Dummy.encode(8);
        assert_eq!(
            BlockContent::decode_owned(dummy, 0).unwrap(),
            BlockContent::Dummy
        );
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_capacity() {
        let content = BlockContent::Real {
            id: BlockId(1),
            leaf: 3,
            payload: vec![2; 4],
        };
        let mut buffer = Vec::with_capacity(64);
        buffer.extend_from_slice(&[0xFF; 30]); // stale contents must not leak through
        content.encode_into(4, &mut buffer);
        assert_eq!(buffer, content.encode(4));
        let mut dummy_buffer = buffer.clone();
        BlockContent::Dummy.encode_into(4, &mut dummy_buffer);
        assert_eq!(dummy_buffer, BlockContent::Dummy.encode(4));
    }

    #[test]
    fn patch_wire_leaf_rewrites_in_place() {
        let content = BlockContent::Real {
            id: BlockId(7),
            leaf: 11,
            payload: vec![3; 4],
        };
        let mut bytes = content.encode(4);
        BlockContent::patch_wire_leaf(&mut bytes, 0);
        assert_eq!(
            BlockContent::decode(&bytes, 0).unwrap(),
            BlockContent::Real {
                id: BlockId(7),
                leaf: 0,
                payload: vec![3; 4]
            }
        );
    }

    #[test]
    #[should_panic(expected = "not an encoded real block")]
    fn patch_wire_leaf_rejects_dummies() {
        let mut bytes = BlockContent::Dummy.encode(4);
        BlockContent::patch_wire_leaf(&mut bytes, 0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            BlockContent::decode(&[9u8; 32], 5),
            Err(OramError::MalformedBlock { slot: 5 })
        ));
        assert!(matches!(
            BlockContent::decode(&[1u8; 4], 6),
            Err(OramError::MalformedBlock { slot: 6 })
        ));
    }

    #[test]
    #[should_panic(expected = "payload length invariant")]
    fn encode_validates_payload_length() {
        BlockContent::Real {
            id: BlockId(0),
            leaf: 0,
            payload: vec![1],
        }
        .encode(8);
    }

    #[test]
    fn request_constructors() {
        let r = Request::read(3u64);
        assert_eq!(r.id, BlockId(3));
        assert!(!r.op.is_write());
        let w = Request::write(4u64, vec![1]);
        assert!(w.op.is_write());
    }

    #[test]
    fn block_id_display_and_from() {
        assert_eq!(BlockId::from(9u64).to_string(), "b9");
    }

    #[test]
    fn request_serde_roundtrip() {
        let w = Request::write(4u64, vec![1, 2]);
        let json = serde_json::to_string(&w).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}

//! Shared protocol types: block identifiers, requests, and the sealed
//! block wire format.

use crate::error::OramError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical block identifier — the address the *application* uses.
///
/// Logical identifiers never appear on any bus: protocols translate them to
/// physical slots through position maps and permutation lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u64> for BlockId {
    fn from(v: u64) -> Self {
        BlockId(v)
    }
}

/// The operation of one ORAM request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOp {
    /// Fetch the block's payload.
    Read,
    /// Replace the block's payload, returning the previous bytes.
    Write(Vec<u8>),
}

impl RequestOp {
    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, RequestOp::Write(_))
    }
}

/// One application request against an ORAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Target logical block.
    pub id: BlockId,
    /// Operation.
    pub op: RequestOp,
}

impl Request {
    /// A read request.
    pub fn read(id: impl Into<BlockId>) -> Self {
        Self { id: id.into(), op: RequestOp::Read }
    }

    /// A write request.
    pub fn write(id: impl Into<BlockId>, payload: Vec<u8>) -> Self {
        Self { id: id.into(), op: RequestOp::Write(payload) }
    }
}

/// Plaintext content of one tree/storage slot, before sealing.
///
/// Real and dummy contents encode to the **same length**, so their sealed
/// ciphertexts are indistinguishable on the bus — the foundation of every
/// obliviousness argument in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockContent {
    /// A slot holding no data (padding). Carries the payload length so the
    /// encoding pads to the uniform size.
    Dummy,
    /// A slot holding application data.
    Real {
        /// Logical identifier.
        id: BlockId,
        /// Current position-map tag (Path ORAM leaf, or partition index for
        /// flat protocols; unused fields are zero).
        leaf: u64,
        /// Application payload.
        payload: Vec<u8>,
    },
}

const TAG_DUMMY: u8 = 0;
const TAG_REAL: u8 = 1;
/// Bytes of header: tag + id + leaf.
const HEADER_LEN: usize = 1 + 8 + 8;

impl BlockContent {
    /// Encoded length for a given payload length.
    pub const fn encoded_len(payload_len: usize) -> usize {
        HEADER_LEN + payload_len
    }

    /// Serializes to the uniform wire size for `payload_len`.
    ///
    /// # Panics
    ///
    /// Panics if a real payload's length differs from `payload_len` — the
    /// caller (protocol code) validates application input first.
    pub fn encode(&self, payload_len: usize) -> Vec<u8> {
        let mut out = vec![0u8; Self::encoded_len(payload_len)];
        match self {
            BlockContent::Dummy => {
                out[0] = TAG_DUMMY;
            }
            BlockContent::Real { id, leaf, payload } => {
                assert_eq!(payload.len(), payload_len, "payload length invariant broken");
                out[0] = TAG_REAL;
                out[1..9].copy_from_slice(&id.0.to_le_bytes());
                out[9..17].copy_from_slice(&leaf.to_le_bytes());
                out[HEADER_LEN..].copy_from_slice(payload);
            }
        }
        out
    }

    /// Parses from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::MalformedBlock`] (tagged with `slot` for
    /// diagnosis) if the bytes are shorter than a header or carry an
    /// unknown tag.
    pub fn decode(bytes: &[u8], slot: u64) -> Result<Self, OramError> {
        if bytes.len() < HEADER_LEN {
            return Err(OramError::MalformedBlock { slot });
        }
        match bytes[0] {
            TAG_DUMMY => Ok(BlockContent::Dummy),
            TAG_REAL => {
                let id = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
                let leaf = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
                Ok(BlockContent::Real {
                    id: BlockId(id),
                    leaf,
                    payload: bytes[HEADER_LEN..].to_vec(),
                })
            }
            _ => Err(OramError::MalformedBlock { slot }),
        }
    }

    /// Whether this is a real block.
    pub fn is_real(&self) -> bool {
        matches!(self, BlockContent::Real { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_roundtrip() {
        let content =
            BlockContent::Real { id: BlockId(42), leaf: 7, payload: vec![1, 2, 3, 4] };
        let bytes = content.encode(4);
        assert_eq!(bytes.len(), BlockContent::encoded_len(4));
        assert_eq!(BlockContent::decode(&bytes, 0).unwrap(), content);
    }

    #[test]
    fn dummy_roundtrip_and_uniform_length() {
        let dummy = BlockContent::Dummy.encode(16);
        let real = BlockContent::Real { id: BlockId(1), leaf: 0, payload: vec![9u8; 16] }.encode(16);
        assert_eq!(dummy.len(), real.len(), "dummy and real must be indistinguishable by size");
        assert_eq!(BlockContent::decode(&dummy, 3).unwrap(), BlockContent::Dummy);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            BlockContent::decode(&[9u8; 32], 5),
            Err(OramError::MalformedBlock { slot: 5 })
        ));
        assert!(matches!(
            BlockContent::decode(&[1u8; 4], 6),
            Err(OramError::MalformedBlock { slot: 6 })
        ));
    }

    #[test]
    #[should_panic(expected = "payload length invariant")]
    fn encode_validates_payload_length() {
        BlockContent::Real { id: BlockId(0), leaf: 0, payload: vec![1] }.encode(8);
    }

    #[test]
    fn request_constructors() {
        let r = Request::read(3u64);
        assert_eq!(r.id, BlockId(3));
        assert!(!r.op.is_write());
        let w = Request::write(4u64, vec![1]);
        assert!(w.op.is_write());
    }

    #[test]
    fn block_id_display_and_from() {
        assert_eq!(BlockId::from(9u64).to_string(), "b9");
    }

    #[test]
    fn request_serde_roundtrip() {
        let w = Request::write(4u64, vec![1, 2]);
        let json = serde_json::to_string(&w).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}

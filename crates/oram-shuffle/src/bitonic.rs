//! Bitonic-network oblivious shuffle.
//!
//! Sorting each element by a fresh pseudo-random key through a **bitonic
//! sorting network** yields a uniform permutation whose access pattern — the
//! sequence of compare-exchange index pairs — is a fixed function of the
//! input length. This is the textbook oblivious shuffle (a permutation
//! network in the paper's terminology, §3.2) and serves as the conservative
//! baseline against which the cheaper CacheShuffle and partition shuffle
//! are compared.
//!
//! Cost: `O(n log² n)` compare-exchanges on a power-of-two padded array.

use crate::ShuffleStats;
use oram_crypto::prf::Prf;

/// The bitonic-network shuffle (see module docs).
#[derive(Debug, Clone, Default)]
pub struct BitonicShuffle {
    _private: (),
}

impl BitonicShuffle {
    /// Creates the shuffle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shuffles `items` in place, deterministically in `seed`.
    pub fn shuffle<T>(&self, items: &mut Vec<T>, seed: u64) -> ShuffleStats {
        let n = items.len();
        if n < 2 {
            return ShuffleStats {
                touches: 0,
                dummies: 0,
                passes: 1,
            };
        }

        let prf = Prf::new(key_from_seed(seed));
        // Tag with random keys; pad to a power of two with +∞ keys so the
        // dummies sink to the tail and the network shape is canonical.
        let padded = n.next_power_of_two();
        let mut tagged: Vec<(u64, Option<T>)> = items
            .drain(..)
            .enumerate()
            // Shift real keys down so the u64::MAX pad keys strictly dominate.
            .map(|(i, item)| (prf.eval_words("bitonic-key", &[i as u64]) >> 1, Some(item)))
            .collect();
        tagged.extend((0..padded - n).map(|_| (u64::MAX, None)));

        let mut touches = 0u64;
        // Iterative bitonic sort: stage sizes k, sub-stages j.
        let mut k = 2;
        while k <= padded {
            let mut j = k / 2;
            while j > 0 {
                for i in 0..padded {
                    let partner = i ^ j;
                    if partner > i {
                        let ascending = i & k == 0;
                        let (a, b) = (tagged[i].0, tagged[partner].0);
                        if (ascending && a > b) || (!ascending && a < b) {
                            tagged.swap(i, partner);
                        }
                        touches += 2;
                    }
                }
                j /= 2;
            }
            k *= 2;
        }

        // Dummies (None) hold the maximal keys, so the first n slots are the
        // real items in random-key order.
        items.extend(
            tagged
                .into_iter()
                .take(n)
                .map(|(_, item)| item.expect("dummy sorted into the real prefix — network broken")),
        );
        let dummies = (padded - n) as u64;
        ShuffleStats {
            touches,
            dummies,
            passes: 1,
        }
    }
}

/// Domain-separation constant mixed into the seed's upper key half.
const BITONIC_KEY_TWEAK: u64 = 0xb170_41c5;

fn key_from_seed(seed: u64) -> [u8; 16] {
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    key[8..].copy_from_slice(&(seed ^ BITONIC_KEY_TWEAK).to_le_bytes());
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn permutes_without_loss_power_of_two() {
        let mut items: Vec<u32> = (0..1024).collect();
        BitonicShuffle::new().shuffle(&mut items, 5);
        let set: HashSet<u32> = items.iter().copied().collect();
        assert_eq!(set.len(), 1024);
    }

    #[test]
    fn permutes_without_loss_odd_sizes() {
        for n in [3usize, 5, 100, 1000, 1023, 1025] {
            let mut items: Vec<usize> = (0..n).collect();
            BitonicShuffle::new().shuffle(&mut items, 9);
            let set: HashSet<usize> = items.iter().copied().collect();
            assert_eq!(set.len(), n, "size {n} broken");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a: Vec<u32> = (0..200).collect();
        let mut b: Vec<u32> = (0..200).collect();
        BitonicShuffle::new().shuffle(&mut a, 13);
        BitonicShuffle::new().shuffle(&mut b, 13);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_over_small_permutations() {
        let shuffle = BitonicShuffle::new();
        let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
        let trials = 6000;
        for seed in 0..trials {
            let mut items = vec![0u8, 1, 2];
            shuffle.shuffle(&mut items, seed);
            *counts.entry(items).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        for (perm, count) in counts {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.2, "ordering {perm:?} off by {dev:.2}");
        }
    }

    #[test]
    fn network_size_depends_only_on_length() {
        let shuffle = BitonicShuffle::new();
        let mut a: Vec<u64> = vec![0; 300];
        let mut b: Vec<u64> = (0..300).rev().collect();
        let s1 = shuffle.shuffle(&mut a, 1);
        let s2 = shuffle.shuffle(&mut b, 999);
        assert_eq!(
            s1, s2,
            "compare-exchange count must be data- and seed-independent"
        );
    }

    #[test]
    fn touch_count_is_n_log2_n_scale() {
        let mut items: Vec<u32> = (0..256).collect();
        let stats = BitonicShuffle::new().shuffle(&mut items, 0);
        // 256 = 2^8: stages sum 1+2+..+8 = 36 substages × 128 comparisons × 2 touches.
        assert_eq!(stats.touches, 36 * 128 * 2);
    }
}

//! CacheShuffle — the paper's in-memory shuffle (Patel, Persiano & Yeo '17).
//!
//! H-ORAM uses CacheShuffle for the per-partition reshuffle (paper §4.3.2:
//! "we use the cache shuffle here"). The algorithm is a two-pass bucketed
//! random sort engineered for cache locality:
//!
//! 1. **Distribute.** Draw a pseudo-random key for every element; route the
//!    element to bucket `key >> (64 - log₂ B)` of `B ≈ √n` buckets. The
//!    scan is sequential, and the bucket an element lands in is a function
//!    of secret randomness only — never of element values.
//! 2. **Collect.** Visit buckets in order; shuffle each bucket inside
//!    trusted cache (Fisher–Yates); emit sequentially.
//!
//! Routing by the top bits of a uniform key and then uniformly permuting
//! within buckets is distributionally identical to sorting by the full
//! random keys, i.e. a uniform random permutation (keys are 64-bit, so
//! collisions are negligible and broken by within-bucket randomness).
//!
//! Compared to the published algorithm we keep the whole bucket array in
//! one address space rather than spilling — the simulation charges
//! memory-bandwidth cost through the storage layer instead. The observable
//! properties the security analysis relies on are preserved: sequential
//! pass structure and data-independent bucket loads.

use crate::fisher_yates::fisher_yates_shuffle;
use crate::ShuffleStats;
use oram_crypto::prf::Prf;

/// The CacheShuffle algorithm (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CacheShuffle {
    /// Bucket-count override; `None` derives `B = 2^⌈log₂ √n⌉`.
    bucket_count: Option<usize>,
}

impl CacheShuffle {
    /// Creates the shuffle with automatic bucket sizing (`≈ √n`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the number of buckets (rounded up to a power of two).
    /// Intended for benchmarking bucket-size sensitivity.
    pub fn with_bucket_count(count: usize) -> Self {
        assert!(count > 0, "bucket count must be positive");
        Self {
            bucket_count: Some(count.next_power_of_two()),
        }
    }

    fn buckets_for(&self, n: usize) -> usize {
        match self.bucket_count {
            Some(b) => b,
            None => ((n as f64).sqrt().ceil() as usize)
                .next_power_of_two()
                .max(1),
        }
    }

    /// Shuffles `items` in place, deterministically in `seed`.
    pub fn shuffle<T>(&self, items: &mut Vec<T>, seed: u64) -> ShuffleStats {
        let n = items.len();
        if n < 2 {
            return ShuffleStats {
                touches: 0,
                dummies: 0,
                passes: 2,
            };
        }
        let buckets = self.buckets_for(n);
        let bucket_bits = buckets.trailing_zeros();
        let prf = Prf::new(key_from_seed(seed));

        // Pass 1: distribute. Drain preserves order; routing key depends
        // only on (seed, scan position).
        let mut bins: Vec<Vec<T>> = (0..buckets).map(|_| Vec::new()).collect();
        for (i, item) in items.drain(..).enumerate() {
            let key = prf.eval_words("cache-shuffle-route", &[i as u64]);
            // Top `bucket_bits` bits select the bin (0 bits ⇒ single bin).
            let bin = if bucket_bits == 0 {
                0
            } else {
                (key >> (64 - bucket_bits)) as usize
            };
            bins[bin].push(item);
        }

        // Pass 2: collect. Bucket visit order is fixed; intra-bucket order
        // is a fresh uniform shuffle.
        let mut touches = 2 * n as u64; // distribute read+write
        for (b, bin) in bins.iter_mut().enumerate() {
            let sub = fisher_yates_shuffle(bin, seed ^ (b as u64).wrapping_mul(0x9e37_79b9));
            touches += sub.touches;
        }
        for mut bin in bins {
            items.append(&mut bin);
        }
        touches += 2 * n as u64; // collect read+write

        ShuffleStats {
            touches,
            dummies: 0,
            passes: 2,
        }
    }
}

fn key_from_seed(seed: u64) -> [u8; 16] {
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    key[8..].copy_from_slice(&(seed ^ 0x0cac_4e54_u64).to_le_bytes());
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn permutes_without_loss() {
        let mut items: Vec<u32> = (0..10_000).collect();
        CacheShuffle::new().shuffle(&mut items, 3);
        let set: HashSet<u32> = items.iter().copied().collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a: Vec<u32> = (0..500).collect();
        let mut b: Vec<u32> = (0..500).collect();
        CacheShuffle::new().shuffle(&mut a, 21);
        CacheShuffle::new().shuffle(&mut b, 21);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_over_small_permutations() {
        let shuffle = CacheShuffle::new();
        let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
        let trials = 12_000;
        for seed in 0..trials {
            let mut items = vec![0u8, 1, 2, 3];
            shuffle.shuffle(&mut items, seed);
            *counts.entry(items).or_default() += 1;
        }
        assert_eq!(counts.len(), 24, "not all 4! orderings reached");
        let expected = trials as f64 / 24.0;
        for (perm, count) in counts {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.25, "ordering {perm:?} frequency off by {dev:.2}");
        }
    }

    #[test]
    fn bucket_count_override_still_permutes() {
        for buckets in [1usize, 2, 8, 64] {
            let mut items: Vec<u32> = (0..300).collect();
            CacheShuffle::with_bucket_count(buckets).shuffle(&mut items, 5);
            let set: HashSet<u32> = items.iter().copied().collect();
            assert_eq!(set.len(), 300, "{buckets} buckets broke the permutation");
        }
    }

    #[test]
    fn routing_is_value_independent() {
        // Identical stats and — crucially — identical *placement* for equal
        // scan positions regardless of stored values.
        let mut values_a: Vec<u64> = (0..256).collect();
        let mut values_b: Vec<u64> = (0..256).rev().collect();
        let s1 = CacheShuffle::new().shuffle(&mut values_a, 9);
        let s2 = CacheShuffle::new().shuffle(&mut values_b, 9);
        assert_eq!(s1, s2);
        // Same seed ⇒ same permutation applied to both inputs.
        let repositioned: Vec<u64> = values_b.iter().map(|v| 255 - v).collect();
        assert_eq!(values_a, repositioned);
    }

    #[test]
    fn two_passes_reported() {
        let mut items: Vec<u8> = (0..100).collect();
        let stats = CacheShuffle::new().shuffle(&mut items, 0);
        assert_eq!(stats.passes, 2);
        assert!(stats.touches >= 400, "at least read+write per pass");
    }
}

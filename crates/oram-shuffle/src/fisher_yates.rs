//! In-enclave Fisher–Yates shuffle.
//!
//! The baseline uniform shuffle for buffers that live entirely inside
//! trusted memory (the control layer). Its access pattern depends on the
//! random draws, so it must **not** run over untrusted memory — the
//! oblivious algorithms in this crate exist for that case.

use crate::ShuffleStats;
use oram_crypto::rng::DeterministicRng;
use rand::Rng;

/// Uniformly shuffles `items` in place, deterministically in `seed`.
///
/// Returns work accounting (`touches = 2(n-1)` swap element accesses,
/// one pass, no dummies).
///
/// # Example
///
/// ```
/// use oram_shuffle::fisher_yates::fisher_yates_shuffle;
///
/// let mut items: Vec<u32> = (0..8).collect();
/// fisher_yates_shuffle(&mut items, 99);
/// let mut sorted = items.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..8).collect::<Vec<_>>());
/// ```
pub fn fisher_yates_shuffle<T>(items: &mut [T], seed: u64) -> ShuffleStats {
    let n = items.len();
    if n < 2 {
        return ShuffleStats {
            touches: 0,
            dummies: 0,
            passes: 1,
        };
    }
    let mut rng = DeterministicRng::from_u64_seed(seed ^ 0xf15e_75a7_e5e5_0001);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
    ShuffleStats {
        touches: 2 * (n as u64 - 1),
        dummies: 0,
        passes: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn permutes_without_loss() {
        let mut items: Vec<u32> = (0..1000).collect();
        fisher_yates_shuffle(&mut items, 1);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        fisher_yates_shuffle(&mut a, 77);
        fisher_yates_shuffle(&mut b, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_over_small_permutations() {
        // Shuffle [0,1,2] under many seeds; each of the 6 orderings should
        // appear ~1/6 of the time.
        let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
        let trials = 6000;
        for seed in 0..trials {
            let mut items = vec![0u8, 1, 2];
            fisher_yates_shuffle(&mut items, seed);
            *counts.entry(items).or_default() += 1;
        }
        assert_eq!(counts.len(), 6, "not all orderings reached");
        let expected = trials as f64 / 6.0;
        for (perm, count) in counts {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "ordering {perm:?} frequency off by {dev:.2}");
        }
    }

    #[test]
    fn stats_reflect_work() {
        let mut items: Vec<u8> = (0..10).collect();
        let stats = fisher_yates_shuffle(&mut items, 0);
        assert_eq!(stats.touches, 18);
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.dummies, 0);
    }
}

//! Oblivious shuffle algorithms for the H-ORAM reproduction.
//!
//! H-ORAM's shuffle period (paper §4.3) needs two kinds of shuffles:
//!
//! 1. an **oblivious** shuffle for the tree-evict step, where the buffer
//!    being shuffled is observable (it holds real + dummy blocks and the
//!    adversary must not learn which is which), and
//! 2. a fast **in-enclave** shuffle for per-partition reshuffling, where
//!    "the in-memory shuffle algorithm is free to choose because memory is
//!    fast enough" — the paper uses CacheShuffle.
//!
//! This crate implements both categories plus two classical oblivious
//! alternatives for ablation:
//!
//! | Algorithm | Oblivious access pattern | Work | Extra space |
//! |---|---|---|---|
//! | [`fisher_yates`] | no (trusted memory only) | O(n) | O(1) |
//! | [`cache_shuffle::CacheShuffle`] | bucket loads data-independent | O(n) | O(n) |
//! | [`melbourne::MelbourneShuffle`] | fully deterministic script | O(n·p) | O(n·p) |
//! | [`bitonic::BitonicShuffle`] | fixed compare-exchange network | O(n log² n) | O(n) |
//!
//! All shuffles are **deterministic in their seed**: the same `(data, seed)`
//! yields the same permutation, which keeps every experiment replayable.
//! Each returns [`ShuffleStats`] whose fields are *data-independent* — the
//! obliviousness tests assert exactly that.

pub mod bitonic;
pub mod cache_shuffle;
pub mod fisher_yates;
pub mod melbourne;
pub mod permutation;

pub use bitonic::BitonicShuffle;
pub use cache_shuffle::CacheShuffle;
pub use fisher_yates::fisher_yates_shuffle;
pub use melbourne::MelbourneShuffle;
pub use permutation::Permutation;

use std::fmt;

/// Work accounting for one shuffle execution.
///
/// For a given algorithm and input length these counters must not depend on
/// the input *values* or the seed — that data-independence is the
/// observable-cost half of the obliviousness argument, and is asserted by
/// tests in every algorithm module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Total element reads+writes performed on the (untrusted) buffer.
    pub touches: u64,
    /// Dummy elements written to pad batches to fixed size.
    pub dummies: u64,
    /// Sequential passes over the data.
    pub passes: u32,
}

impl ShuffleStats {
    /// Sum of two stats records.
    pub fn merged(&self, other: &ShuffleStats) -> ShuffleStats {
        ShuffleStats {
            touches: self.touches + other.touches,
            dummies: self.dummies + other.dummies,
            passes: self.passes + other.passes,
        }
    }
}

/// The shuffle algorithms available to protocol configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ShuffleAlgorithm {
    /// In-enclave Fisher–Yates (not oblivious; trusted memory only).
    FisherYates,
    /// Two-pass bucketed CacheShuffle (the paper's choice).
    Cache,
    /// Melbourne shuffle (fully deterministic access script).
    Melbourne,
    /// Bitonic-network shuffle (fixed compare-exchange schedule).
    Bitonic,
}

impl ShuffleAlgorithm {
    /// All algorithms, for benches and ablations.
    pub const ALL: [ShuffleAlgorithm; 4] = [
        ShuffleAlgorithm::FisherYates,
        ShuffleAlgorithm::Cache,
        ShuffleAlgorithm::Melbourne,
        ShuffleAlgorithm::Bitonic,
    ];

    /// Shuffles `items` in place under `seed`, dispatching to the selected
    /// algorithm, and returns its work accounting.
    pub fn shuffle<T>(&self, items: &mut Vec<T>, seed: u64) -> ShuffleStats {
        match self {
            ShuffleAlgorithm::FisherYates => fisher_yates::fisher_yates_shuffle(items, seed),
            ShuffleAlgorithm::Cache => CacheShuffle::new().shuffle(items, seed),
            ShuffleAlgorithm::Melbourne => MelbourneShuffle::new().shuffle(items, seed),
            ShuffleAlgorithm::Bitonic => BitonicShuffle::new().shuffle(items, seed),
        }
    }

    /// Whether the algorithm's access pattern is safe on untrusted memory.
    pub fn is_oblivious(&self) -> bool {
        !matches!(self, ShuffleAlgorithm::FisherYates)
    }
}

impl fmt::Display for ShuffleAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ShuffleAlgorithm::FisherYates => "fisher-yates",
            ShuffleAlgorithm::Cache => "cache-shuffle",
            ShuffleAlgorithm::Melbourne => "melbourne",
            ShuffleAlgorithm::Bitonic => "bitonic",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_algorithm_produces_a_permutation() {
        for algo in ShuffleAlgorithm::ALL {
            let mut items: Vec<u32> = (0..257).collect();
            algo.shuffle(&mut items, 42);
            let set: HashSet<u32> = items.iter().copied().collect();
            assert_eq!(set.len(), 257, "{algo} lost or duplicated items");
        }
    }

    #[test]
    fn every_algorithm_is_seed_deterministic() {
        for algo in ShuffleAlgorithm::ALL {
            let mut a: Vec<u32> = (0..100).collect();
            let mut b: Vec<u32> = (0..100).collect();
            algo.shuffle(&mut a, 7);
            algo.shuffle(&mut b, 7);
            assert_eq!(a, b, "{algo} not deterministic");
            let mut c: Vec<u32> = (0..100).collect();
            algo.shuffle(&mut c, 8);
            assert_ne!(a, c, "{algo} ignores seed");
        }
    }

    #[test]
    fn every_algorithm_actually_moves_items() {
        for algo in ShuffleAlgorithm::ALL {
            let mut items: Vec<u32> = (0..1000).collect();
            algo.shuffle(&mut items, 3);
            let fixed = items
                .iter()
                .enumerate()
                .filter(|(i, &v)| *i as u32 == v)
                .count();
            // A uniform permutation of 1000 items has ~1 fixed point.
            assert!(fixed < 50, "{algo} left {fixed} fixed points");
        }
    }

    #[test]
    fn stats_are_data_independent() {
        for algo in ShuffleAlgorithm::ALL {
            let mut ascending: Vec<u64> = (0..512).collect();
            let mut constant: Vec<u64> = vec![9; 512];
            let s1 = algo.shuffle(&mut ascending, 5);
            let s2 = algo.shuffle(&mut constant, 11);
            assert_eq!(s1, s2, "{algo} stats depend on data or seed");
        }
    }

    #[test]
    fn obliviousness_labels() {
        assert!(!ShuffleAlgorithm::FisherYates.is_oblivious());
        assert!(ShuffleAlgorithm::Cache.is_oblivious());
        assert!(ShuffleAlgorithm::Melbourne.is_oblivious());
        assert!(ShuffleAlgorithm::Bitonic.is_oblivious());
    }

    #[test]
    fn empty_and_singleton_inputs_are_noops() {
        for algo in ShuffleAlgorithm::ALL {
            let mut empty: Vec<u8> = Vec::new();
            algo.shuffle(&mut empty, 1);
            assert!(empty.is_empty());
            let mut one = vec![42u8];
            algo.shuffle(&mut one, 1);
            assert_eq!(one, vec![42]);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ShuffleAlgorithm::Cache.to_string(), "cache-shuffle");
        assert_eq!(ShuffleAlgorithm::Melbourne.to_string(), "melbourne");
    }
}

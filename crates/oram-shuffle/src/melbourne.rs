//! Melbourne shuffle (Ohrimenko, Goodrich, Tamassia & Upfal '14).
//!
//! The classical oblivious shuffle for outsourced storage: its sequence of
//! bucket reads and writes, *including batch sizes*, is a fixed function of
//! the input length alone — the adversary learns nothing from watching it.
//! The paper cites it as one of the heavyweight oblivious shuffles whose
//! cost motivates H-ORAM's lighter partition shuffle (§3.2).
//!
//! Implementation (single-pass variant):
//!
//! * split the `n` inputs into `B = ⌈√n⌉` source chunks of `B` elements;
//! * **distribute**: for every source chunk, route each element toward the
//!   target chunk that the secret permutation assigns it to, then write one
//!   fixed-size batch (capacity `p_max`) to *every* target bucket, padding
//!   short batches with dummies — so every (source, target) pair transfers
//!   exactly `p_max` slots no matter where elements actually went;
//! * **clean up**: for every target bucket, read its `B` batches, discard
//!   dummies, order the survivors by their target position, emit.
//!
//! If any (source, target) pair overflows `p_max` (probability ≈ 0 for
//! `p_max = max(8, 4·e·ln n / ln ln n)`; bounded retries re-key the
//! permutation), the attempt is retried with a re-derived seed — matching
//! the published algorithm's failure handling.

use crate::permutation::Permutation;
use crate::ShuffleStats;

/// The Melbourne shuffle (see module docs).
#[derive(Debug, Clone, Default)]
pub struct MelbourneShuffle {
    /// Batch-capacity override for tests; `None` derives from `n`.
    batch_capacity: Option<usize>,
}

impl MelbourneShuffle {
    /// Creates the shuffle with the standard batch capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the per-(source, target) batch capacity. Too-small values
    /// raise the retry rate; intended for overflow-path testing.
    pub fn with_batch_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        Self {
            batch_capacity: Some(capacity),
        }
    }

    /// The fixed batch capacity for input length `n`.
    pub fn batch_capacity_for(&self, n: usize) -> usize {
        if let Some(c) = self.batch_capacity {
            return c;
        }
        if n < 16 {
            return n.max(1);
        }
        let ln = (n as f64).ln();
        let lnln = ln.ln().max(1.0);
        (4.0 * std::f64::consts::E * ln / lnln).ceil() as usize
    }

    /// Shuffles `items` in place, deterministically in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if 64 consecutive attempts overflow the batch capacity, which
    /// only happens with a deliberately tiny
    /// [`with_batch_capacity`](Self::with_batch_capacity) override.
    pub fn shuffle<T>(&self, items: &mut Vec<T>, seed: u64) -> ShuffleStats {
        let n = items.len();
        if n < 2 {
            return ShuffleStats {
                touches: 0,
                dummies: 0,
                passes: 2,
            };
        }

        for attempt in 0..64u64 {
            // Re-key on overflow, exactly like the published retry.
            let attempt_seed = seed.wrapping_add(attempt.wrapping_mul(0x5bd1_e995_9d1b_54a5));
            match self.try_shuffle(items, attempt_seed) {
                Ok(stats) => return stats,
                Err(()) => continue,
            }
        }
        panic!("melbourne shuffle: batch capacity overflowed on 64 attempts (capacity override too small)");
    }

    fn try_shuffle<T>(&self, items: &mut Vec<T>, seed: u64) -> Result<ShuffleStats, ()> {
        let n = items.len();
        let buckets = (n as f64).sqrt().ceil() as usize;
        let p_max = self.batch_capacity_for(n);
        let perm = Permutation::random(n, seed);

        // Tag each element with its secret destination, preserving source order.
        let mut tagged: Vec<(usize, T)> = items
            .drain(..)
            .enumerate()
            .map(|(i, item)| (perm.apply(i), item))
            .collect();

        // Distribution phase. `batches[target]` receives `buckets` batches,
        // each padded to exactly p_max entries (None = dummy).
        let mut batches: Vec<Vec<Option<(usize, T)>>> = (0..buckets).map(|_| Vec::new()).collect();
        let mut dummies = 0u64;
        let mut touches = 0u64;

        // Iterate source chunks in order; `tagged` is consumed front-to-back
        // so the read pattern is one sequential pass.
        let mut source_iter = tagged.drain(..).peekable();
        for _source in 0..buckets {
            // Collect this source chunk (≤ buckets elements).
            let mut chunk: Vec<(usize, T)> = Vec::with_capacity(buckets);
            for _ in 0..buckets {
                match source_iter.next() {
                    Some(e) => chunk.push(e),
                    None => break,
                }
            }
            touches += chunk.len() as u64;

            // Route chunk elements into per-target staging.
            let mut staging: Vec<Vec<(usize, T)>> = (0..buckets).map(|_| Vec::new()).collect();
            for (dest, item) in chunk {
                let target = (dest * buckets / n).min(buckets - 1);
                staging[target].push((dest, item));
            }

            // Overflow check before anything is consumed, so a retry can
            // restore the exact original input order.
            if staging.iter().any(|s| s.len() > p_max) {
                let mut rest: Vec<(usize, T)> = Vec::with_capacity(n);
                for staged in staging {
                    rest.extend(staged);
                }
                rest.extend(source_iter);
                for batch in batches {
                    rest.extend(batch.into_iter().flatten());
                }
                rest.sort_by_key(|(dest, _)| perm.invert(*dest));
                items.extend(rest.into_iter().map(|(_, item)| item));
                return Err(());
            }

            // Write one fixed-size batch per target.
            for (target, staged) in staging.into_iter().enumerate() {
                let pad = p_max - staged.len();
                dummies += pad as u64;
                touches += p_max as u64;
                let mut batch: Vec<Option<(usize, T)>> = staged.into_iter().map(Some).collect();
                batch.extend((0..pad).map(|_| None));
                batches[target].extend(batch);
            }
        }

        // Cleanup phase: visit targets in order, drop dummies, order by
        // destination, emit sequentially.
        let mut output: Vec<(usize, T)> = Vec::with_capacity(n);
        for batch in batches {
            touches += batch.len() as u64;
            let mut real: Vec<(usize, T)> = batch.into_iter().flatten().collect();
            real.sort_by_key(|(dest, _)| *dest);
            output.append(&mut real);
        }
        debug_assert_eq!(output.len(), n);
        items.extend(output.into_iter().map(|(_, item)| item));
        Ok(ShuffleStats {
            touches,
            dummies,
            passes: 2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn permutes_without_loss() {
        let mut items: Vec<u32> = (0..2000).collect();
        MelbourneShuffle::new().shuffle(&mut items, 17);
        let set: HashSet<u32> = items.iter().copied().collect();
        assert_eq!(set.len(), 2000);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a: Vec<u32> = (0..300).collect();
        let mut b: Vec<u32> = (0..300).collect();
        MelbourneShuffle::new().shuffle(&mut a, 4);
        MelbourneShuffle::new().shuffle(&mut b, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_sizes_are_input_independent() {
        // The dummy count (hence every batch size) must depend only on n,
        // never on values: run two different datasets under two different
        // seeds that don't overflow.
        let shuffle = MelbourneShuffle::new();
        let mut zeros: Vec<u64> = vec![0; 400];
        let mut ramp: Vec<u64> = (0..400).collect();
        let s1 = shuffle.shuffle(&mut zeros, 1);
        let s2 = shuffle.shuffle(&mut ramp, 2);
        assert_eq!(s1.touches, s2.touches);
        assert_eq!(s1.dummies, s2.dummies);
    }

    #[test]
    fn uniform_over_small_permutations() {
        let shuffle = MelbourneShuffle::new();
        let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
        let trials = 6000;
        for seed in 0..trials {
            let mut items = vec![0u8, 1, 2];
            shuffle.shuffle(&mut items, seed);
            *counts.entry(items).or_default() += 1;
        }
        assert_eq!(counts.len(), 6);
        let expected = trials as f64 / 6.0;
        for (perm, count) in counts {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.2, "ordering {perm:?} off by {dev:.2}");
        }
    }

    #[test]
    fn tiny_capacity_retries_and_still_permutes() {
        // Capacity 2 with 64 elements forces visible retries; the shuffle
        // must still terminate with a valid permutation (or panic after 64
        // attempts — accept both but prefer success for this size).
        let mut items: Vec<u32> = (0..64).collect();
        MelbourneShuffle::with_batch_capacity(6).shuffle(&mut items, 0);
        let set: HashSet<u32> = items.iter().copied().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn capacity_grows_slowly_with_n() {
        let shuffle = MelbourneShuffle::new();
        let c1k = shuffle.batch_capacity_for(1_000);
        let c1m = shuffle.batch_capacity_for(1_000_000);
        assert!(c1k >= 8);
        assert!(c1m < 4 * c1k, "capacity should grow ~log n");
    }

    #[test]
    fn dummies_are_reported() {
        let mut items: Vec<u32> = (0..100).collect();
        let stats = MelbourneShuffle::new().shuffle(&mut items, 3);
        assert!(stats.dummies > 0, "padding must occur");
        assert_eq!(stats.passes, 2);
    }
}

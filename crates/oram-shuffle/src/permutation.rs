//! Explicit permutations: the data structure behind permutation lists.
//!
//! The storage layer of square-root-family ORAMs maintains a mapping
//! between logical block indices and permuted physical positions. This
//! module provides an explicit, invertible [`Permutation`] with uniform
//! sampling, composition, and validity checking; the PRP in `oram-crypto`
//! provides the implicit (computed) variant for huge domains.

use oram_crypto::rng::DeterministicRng;
use rand::Rng;
use std::fmt;

/// An explicit permutation of `{0, …, n−1}` with O(1) forward and inverse
/// lookups.
///
/// # Example
///
/// ```
/// use oram_shuffle::permutation::Permutation;
///
/// let perm = Permutation::random(10, 42);
/// let y = perm.apply(3);
/// assert_eq!(perm.invert(y), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<u32>,
    inverse: Vec<u32>,
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 16 {
            f.debug_struct("Permutation")
                .field("forward", &self.forward)
                .finish()
        } else {
            f.debug_struct("Permutation")
                .field("len", &self.len())
                .finish()
        }
    }
}

impl Permutation {
    /// The identity permutation on `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n > u32::MAX as usize` (explicit permutations are bounded
    /// to 2³²−1 elements; use the PRP for larger domains).
    pub fn identity(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "explicit permutation too large; use FeistelPrp"
        );
        let forward: Vec<u32> = (0..n as u32).collect();
        Self {
            inverse: forward.clone(),
            forward,
        }
    }

    /// A uniformly random permutation of `n` elements, deterministic in
    /// `seed` (Fisher–Yates over the identity).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut perm = Self::identity(n);
        if n < 2 {
            return perm;
        }
        let mut rng = DeterministicRng::from_u64_seed(seed ^ PERMUTATION_SEED_TWEAK);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.forward.swap(i, j);
        }
        perm.rebuild_inverse();
        perm
    }

    /// Builds a permutation from an explicit image vector.
    ///
    /// # Panics
    ///
    /// Panics if `forward` is not a bijection on `{0, …, n−1}`.
    pub fn from_forward(forward: Vec<u32>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &image in &forward {
            assert!((image as usize) < n, "image {image} out of range for n={n}");
            assert!(!seen[image as usize], "duplicate image {image}");
            seen[image as usize] = true;
        }
        let mut perm = Self {
            forward,
            inverse: vec![0; n],
        };
        perm.rebuild_inverse();
        perm
    }

    fn rebuild_inverse(&mut self) {
        self.inverse = vec![0; self.forward.len()];
        for (i, &image) in self.forward.iter().enumerate() {
            self.inverse[image as usize] = i as u32;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is on the empty set.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Forward image: `π(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn apply(&self, i: usize) -> usize {
        self.forward[i] as usize
    }

    /// Inverse image: `π⁻¹(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn invert(&self, i: usize) -> usize {
        self.inverse[i] as usize
    }

    /// The composition `other ∘ self` (apply `self`, then `other`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "composition requires equal lengths"
        );
        let forward: Vec<u32> = self
            .forward
            .iter()
            .map(|&mid| other.forward[mid as usize])
            .collect();
        let mut perm = Permutation {
            forward,
            inverse: Vec::new(),
        };
        perm.rebuild_inverse();
        perm
    }

    /// Rearranges `items` so `new[π(i)] = old[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != len()`.
    pub fn apply_to_slice<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(items.len(), self.len(), "slice length mismatch");
        let mut out: Vec<Option<T>> = vec![None; items.len()];
        for (i, item) in items.iter().enumerate() {
            out[self.apply(i)] = Some(item.clone());
        }
        out.into_iter()
            .map(|slot| slot.expect("bijection fills every slot"))
            .collect()
    }

    /// Scatters a *prefix* of the domain into a full-length table: slot
    /// `π(i)` receives `items[i]`, every other slot is `None`. This is
    /// the partition-rebuild placement primitive (a pass's live+hot union
    /// is usually shorter than the partition), taking items by value so
    /// large payloads move instead of cloning.
    ///
    /// # Panics
    ///
    /// Panics if `items` is longer than the permutation's domain.
    pub fn scatter<T>(&self, items: impl IntoIterator<Item = T>) -> Vec<Option<T>> {
        let mut out: Vec<Option<T>> = Vec::with_capacity(self.len());
        out.resize_with(self.len(), || None);
        for (dense, item) in items.into_iter().enumerate() {
            assert!(dense < self.len(), "scatter input longer than domain");
            let target = self.apply(dense);
            debug_assert!(out[target].is_none(), "permutation collision");
            out[target] = Some(item);
        }
        out
    }

    /// Number of fixed points (diagnostic for randomness tests).
    pub fn fixed_points(&self) -> usize {
        self.forward
            .iter()
            .enumerate()
            .filter(|(i, &v)| *i as u32 == v)
            .count()
    }
}

/// Seed tweak so permutation sampling never collides with other users of
/// the deterministic RNG stream.
const PERMUTATION_SEED_TWEAK: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_maps_to_self() {
        let id = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(id.apply(i), i);
            assert_eq!(id.invert(i), i);
        }
        assert_eq!(id.fixed_points(), 5);
    }

    #[test]
    fn random_is_bijective_and_invertible() {
        let perm = Permutation::random(1000, 7);
        let mut seen = vec![false; 1000];
        for i in 0..1000 {
            let y = perm.apply(i);
            assert!(!seen[y], "duplicate image");
            seen[y] = true;
            assert_eq!(perm.invert(y), i);
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        assert_eq!(Permutation::random(64, 3), Permutation::random(64, 3));
        assert_ne!(Permutation::random(64, 3), Permutation::random(64, 4));
    }

    #[test]
    fn from_forward_validates() {
        let perm = Permutation::from_forward(vec![2, 0, 1]);
        assert_eq!(perm.apply(0), 2);
        assert_eq!(perm.invert(2), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate image")]
    fn from_forward_rejects_duplicates() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_forward_rejects_out_of_range() {
        Permutation::from_forward(vec![0, 3, 1]);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = Permutation::random(20, 1);
        let b = Permutation::random(20, 2);
        let composed = a.then(&b);
        for i in 0..20 {
            assert_eq!(composed.apply(i), b.apply(a.apply(i)));
        }
    }

    #[test]
    fn apply_to_slice_places_by_image() {
        let perm = Permutation::from_forward(vec![1, 2, 0]);
        let rearranged = perm.apply_to_slice(&['a', 'b', 'c']);
        // new[π(i)] = old[i]: new[1]='a', new[2]='b', new[0]='c'.
        assert_eq!(rearranged, vec!['c', 'a', 'b']);
    }

    #[test]
    fn scatter_places_a_prefix_and_pads_with_none() {
        let perm = Permutation::from_forward(vec![3, 0, 2, 1]);
        let table = perm.scatter(["x".to_string(), "y".to_string()]);
        // table[π(0)=3]="x", table[π(1)=0]="y"; slots 1 and 2 stay empty.
        assert_eq!(
            table,
            vec![Some("y".to_string()), None, None, Some("x".to_string())]
        );
        // A full-length input fills every slot, agreeing with
        // `apply_to_slice`.
        let perm = Permutation::random(16, 7);
        let items: Vec<usize> = (0..16).collect();
        let full: Vec<usize> = perm
            .scatter(items.clone())
            .into_iter()
            .map(|slot| slot.expect("bijection fills every slot"))
            .collect();
        assert_eq!(full, perm.apply_to_slice(&items));
    }

    #[test]
    #[should_panic(expected = "longer than domain")]
    fn scatter_rejects_oversized_input() {
        let perm = Permutation::identity(2);
        let _ = perm.scatter([1, 2, 3]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Permutation::identity(0);
        assert!(empty.is_empty());
        let one = Permutation::random(1, 9);
        assert_eq!(one.apply(0), 0);
    }

    #[test]
    fn random_permutations_have_few_fixed_points() {
        let perm = Permutation::random(10_000, 11);
        // Expected number of fixed points of a uniform permutation is 1.
        assert!(
            perm.fixed_points() < 10,
            "too many fixed points: {}",
            perm.fixed_points()
        );
    }

    proptest! {
        #[test]
        fn roundtrip_forward_inverse(n in 1usize..500, seed in any::<u64>(), idx_seed in any::<usize>()) {
            let perm = Permutation::random(n, seed);
            let i = idx_seed % n;
            prop_assert_eq!(perm.invert(perm.apply(i)), i);
            prop_assert_eq!(perm.apply(perm.invert(i)), i);
        }

        #[test]
        fn apply_to_slice_is_permutation(n in 1usize..200, seed in any::<u64>()) {
            let perm = Permutation::random(n, seed);
            let items: Vec<usize> = (0..n).collect();
            let mut rearranged = perm.apply_to_slice(&items);
            rearranged.sort_unstable();
            prop_assert_eq!(rearranged, items);
        }
    }
}

//! The oblivious block cache and the tiered storage backend.
//!
//! The paper's thesis is a *cacheable* ORAM interface: the permuted flat
//! layout lets a block-device cache sit under the ORAM without touching
//! the security argument. This module supplies that cache as a device
//! tier, plus an optional middle (SSD-class) tier, composing the full
//! RAM cache → SSD → HDD hierarchy:
//!
//! * [`BlockCache`] — a RAM tier of **sealed** blocks in front of a
//!   [`crate::device::Device`]'s backing store: LRU or CLOCK replacement
//!   over a configurable capacity, write-back with dirty tracking.
//! * [`TieredStore`] — the middle tier: a second [`DataStore`] (in-memory
//!   or file-backed) with its own (SSD-class) timing model. Blocks are
//!   *promoted* into it when a cold read misses both upper tiers and
//!   *demoted* into it when the RAM cache evicts a clean copy; the tier
//!   itself demotes least-recently-used copies back to cold when full.
//!
//! **Obliviousness.** The cache changes *when* an access completes, never
//! *what the bus shows*: every device operation records exactly the same
//! trace event — device, direction, slot, byte count, submission order —
//! whether it hit the RAM tier, the middle tier, or cold storage. Hits
//! are timing-padded, not elided: the op is recorded unconditionally and
//! only its charged [`SimDuration`] differs. Which tier serves a slot is
//! a function of the *physical slot access history* alone, which the
//! ORAM layer above already guarantees is independent of the logical
//! request stream — so the timing difference carries no information the
//! adversary did not already have. `docs/ARCHITECTURE.md` §10 states the
//! full argument; `tests/leakage.rs` checks trace equality between
//! hit-heavy and miss-heavy schedules, and `tests/cache.rs` checks
//! response/trace equivalence against the uncached device.
//!
//! **Authority.** The RAM tier is the authority for slots it holds dirty;
//! everywhere else the cold store is authoritative and upper tiers hold
//! clean copies. Streamed shuffle writes (`write_run`) are write-through
//! (cold is updated immediately, the cache keeps a clean copy); random
//! writes (`write_block`/`write_scatter`) are write-back (absorbed dirty,
//! flushed on eviction or [`sync`](crate::device::Device::sync)).

use crate::clock::SimDuration;
use crate::device::TimingModel;
use crate::store::{BlockStore, DataStore};
use crate::StorageError;
use oram_crypto::seal::SealedBlock;
use std::collections::{BTreeMap, HashMap};

/// Replacement policy of the RAM tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CachePolicy {
    /// Exact least-recently-used, via a monotone use tick.
    Lru,
    /// CLOCK (second chance): a ring with reference bits — near-LRU at
    /// O(1) amortized bookkeeping.
    Clock,
}

/// Configuration of the middle (SSD-class) tier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MidTierConfig {
    /// Capacity of the tier in blocks.
    pub capacity_blocks: u64,
    /// Optional backing file for the tier's copies. `None` (the default)
    /// keeps them in memory; a path puts them in a
    /// [`crate::file::FileStore`] of `capacity_blocks` slots ×
    /// `file_slot_bytes` bytes. Either way the tier holds *clean copies
    /// only* — cold storage stays authoritative — so its contents are
    /// reconstructible and never needed for recovery.
    pub file: Option<String>,
    /// Sealed-body bytes per slot of a file-backed tier (ignored for the
    /// in-memory tier).
    pub file_slot_bytes: usize,
}

impl MidTierConfig {
    /// An in-memory middle tier of `capacity_blocks` blocks with
    /// SSD-class timing.
    pub fn in_memory(capacity_blocks: u64) -> Self {
        Self {
            capacity_blocks,
            file: None,
            file_slot_bytes: 0,
        }
    }
}

/// Configuration of the block cache (and, optionally, the tier below it).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// RAM-tier capacity in blocks.
    pub capacity_blocks: u64,
    /// Replacement policy.
    pub policy: CachePolicy,
    /// Cost of serving one cached block (DRAM copy + lookup).
    pub hit_nanos: u64,
    /// Fraction of the cold write cost charged synchronously when a
    /// random write is absorbed write-back (the rest is assumed flushed
    /// in the background). `1.0` = fully synchronous.
    pub writeback_sync_fraction: f64,
    /// Optional middle (SSD-class) tier under the RAM cache.
    pub mid: Option<MidTierConfig>,
    /// **Test fixture — deliberately insecure.** When set, RAM-tier hits
    /// skip the device trace and statistics entirely, so the bus shape
    /// depends on the hit pattern. Exists only so the leakage tests in
    /// `tests/leakage.rs` can prove they *would* catch a cache that
    /// elides hits instead of padding them. Never enable outside tests.
    #[doc(hidden)]
    pub leaky_hits: bool,
}

impl CacheConfig {
    /// An LRU cache of `capacity_blocks` blocks with DRAM-copy hit cost
    /// (1 µs) and mostly asynchronous write-back, no middle tier.
    pub fn lru(capacity_blocks: u64) -> Self {
        Self {
            capacity_blocks,
            policy: CachePolicy::Lru,
            hit_nanos: 1_000,
            writeback_sync_fraction: 0.2,
            mid: None,
            leaky_hits: false,
        }
    }

    /// The same geometry under the CLOCK policy.
    pub fn clock(capacity_blocks: u64) -> Self {
        Self {
            policy: CachePolicy::Clock,
            ..Self::lru(capacity_blocks)
        }
    }

    /// Adds an in-memory SSD-class middle tier of `capacity_blocks`.
    pub fn with_mid_tier(mut self, capacity_blocks: u64) -> Self {
        self.mid = Some(MidTierConfig::in_memory(capacity_blocks));
        self
    }

    /// Checks invariants; called by device installation.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or an out-of-range write-back fraction.
    pub fn validate(&self) {
        assert!(self.capacity_blocks > 0, "cache must hold at least 1 block");
        assert!(
            (0.0..=1.0).contains(&self.writeback_sync_fraction),
            "writeback_sync_fraction must be within [0, 1]"
        );
        if let Some(mid) = &self.mid {
            assert!(mid.capacity_blocks > 0, "mid tier must hold at least 1");
        }
    }
}

/// Counters of the cache and tier, surfaced through
/// [`crate::device::Device::cache_stats`] and the ORAM layers above.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Random reads served by the RAM tier.
    pub hits: u64,
    /// Random reads served by the middle tier.
    pub mid_hits: u64,
    /// Random reads that went to cold storage.
    pub misses: u64,
    /// RAM-tier evictions.
    pub evictions: u64,
    /// Dirty blocks flushed to cold storage (eviction or sync).
    pub writebacks: u64,
    /// Blocks promoted into the middle tier.
    pub promotions: u64,
    /// Blocks demoted out of the middle tier (copy dropped).
    pub demotions: u64,
}

impl CacheStats {
    /// Hit rate of random reads over both cache tiers.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.mid_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.mid_hits) as f64 / total as f64
        }
    }

    /// Merges another instance's counters (sharded aggregation).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.mid_hits += other.mid_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
    }
}

/// One RAM-tier entry.
#[derive(Debug, Clone)]
struct Entry {
    block: SealedBlock,
    dirty: bool,
    /// LRU use tick (unused under CLOCK).
    tick: u64,
    /// CLOCK reference bit (unused under LRU).
    referenced: bool,
}

/// The middle (SSD-class) storage tier. See the [module docs](self).
#[derive(Debug)]
pub struct TieredStore {
    store: Box<dyn DataStore>,
    timing: Box<dyn TimingModel>,
    capacity_blocks: u64,
    /// slot → last-use tick; `BTreeMap` keeps eviction order-independent
    /// of hash state. Ticks are shared with the cache's monotone counter.
    residency: BTreeMap<u64, u64>,
    /// tick → slot reverse index for O(log n) LRU demotion.
    by_tick: BTreeMap<u64, u64>,
}

impl TieredStore {
    /// Builds the tier from its configuration.
    ///
    /// # Errors
    ///
    /// File-backed tiers propagate open/recovery errors.
    pub fn open(config: &MidTierConfig) -> Result<Self, StorageError> {
        let store: Box<dyn DataStore> = match &config.file {
            None => Box::new(BlockStore::new()),
            Some(path) => Box::new(crate::file::FileStore::open(
                path,
                crate::file::FileStoreConfig::new(config.capacity_blocks, config.file_slot_bytes),
            )?),
        };
        Ok(Self {
            store,
            timing: Box::new(crate::ssd::SsdModel::sata_2019()),
            capacity_blocks: config.capacity_blocks,
            residency: BTreeMap::new(),
            by_tick: BTreeMap::new(),
        })
    }

    fn contains(&self, addr: u64) -> bool {
        self.residency.contains_key(&addr)
    }

    fn touch(&mut self, addr: u64, tick: u64) {
        if let Some(old) = self.residency.insert(addr, tick) {
            self.by_tick.remove(&old);
        }
        self.by_tick.insert(tick, addr);
    }

    /// Inserts a clean copy, demoting the LRU resident if full. Returns
    /// whether a demotion happened.
    fn insert(&mut self, addr: u64, block: SealedBlock, tick: u64) -> bool {
        let mut demoted = false;
        if !self.contains(addr) && self.residency.len() as u64 >= self.capacity_blocks {
            if let Some((&victim_tick, &victim)) = self.by_tick.iter().next() {
                self.by_tick.remove(&victim_tick);
                self.residency.remove(&victim);
                self.store
                    .remove(victim)
                    .expect("mid-tier demotion is fail-stop");
                demoted = true;
            }
        }
        self.store
            .put(addr, block)
            .expect("mid-tier put is fail-stop");
        self.touch(addr, tick);
        demoted
    }

    fn get(&mut self, addr: u64) -> Option<SealedBlock> {
        self.store.get(addr).expect("mid-tier get is fail-stop")
    }

    fn invalidate(&mut self, addr: u64) {
        if let Some(tick) = self.residency.remove(&addr) {
            self.by_tick.remove(&tick);
            self.store
                .remove(addr)
                .expect("mid-tier invalidate is fail-stop");
        }
    }

    fn clear(&mut self) {
        self.residency.clear();
        self.by_tick.clear();
        self.store.clear().expect("mid-tier clear is fail-stop");
    }

    /// Residency metadata, sorted by slot (snapshot serialization).
    fn metadata(&self) -> Vec<(u64, u64)> {
        self.residency.iter().map(|(&a, &t)| (a, t)).collect()
    }
}

/// Which tier resolved a random-read lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadTier {
    /// Served by the RAM tier.
    Ram,
    /// Served by the middle tier.
    Mid,
    /// Went to cold storage.
    Cold,
}

/// The RAM cache tier (plus the optional tier below it). Lives inside a
/// [`crate::device::Device`]; all methods are crate-internal — the public
/// surface is the device's, which keeps trace/stat recording and cache
/// consultation in lockstep.
#[derive(Debug)]
pub struct BlockCache {
    config: CacheConfig,
    entries: HashMap<u64, Entry>,
    /// tick → slot reverse index (LRU policy only).
    by_tick: BTreeMap<u64, u64>,
    /// CLOCK ring of resident slots plus the sweep hand (CLOCK policy
    /// only). Slots keep their insertion position until evicted.
    ring: Vec<u64>,
    hand: usize,
    /// Monotone use counter; shared with the middle tier's residency.
    tick: u64,
    stats: CacheStats,
    mid: Option<TieredStore>,
}

impl BlockCache {
    /// Builds the cache (and middle tier, when configured).
    ///
    /// # Errors
    ///
    /// File-backed middle tiers propagate open errors.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Result<Self, StorageError> {
        config.validate();
        let mid = config.mid.as_ref().map(TieredStore::open).transpose()?;
        Ok(Self {
            config,
            entries: HashMap::new(),
            by_tick: BTreeMap::new(),
            ring: Vec::new(),
            hand: 0,
            tick: 0,
            stats: CacheStats::default(),
            mid,
        })
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters only; residency (and therefore timing
    /// behavior) is preserved, mirroring
    /// [`crate::device::Device::reset_accounting`] semantics — benches
    /// reset accounting after warm-up precisely to measure the warm
    /// cache.
    pub(crate) fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    pub(crate) fn hit_cost(&self) -> SimDuration {
        SimDuration::from_nanos(self.config.hit_nanos)
    }

    pub(crate) fn leaky_hits(&self) -> bool {
        self.config.leaky_hits
    }

    pub(crate) fn writeback_sync_fraction(&self) -> f64 {
        self.config.writeback_sync_fraction
    }

    /// Whether `addr` is resident in the RAM tier (no LRU touch).
    #[cfg(test)]
    pub(crate) fn contains(&self, addr: u64) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Which tier a random read of `addr` will be served from (no state
    /// change) — the planning half of a scatter's hit/miss split.
    pub(crate) fn probe(&self, addr: u64) -> ReadTier {
        if self.entries.contains_key(&addr) {
            ReadTier::Ram
        } else if self.mid.as_ref().is_some_and(|m| m.contains(addr)) {
            ReadTier::Mid
        } else {
            ReadTier::Cold
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn touch_entry(&mut self, addr: u64) {
        let tick = self.next_tick();
        if let Some(entry) = self.entries.get_mut(&addr) {
            match self.config.policy {
                CachePolicy::Lru => {
                    self.by_tick.remove(&entry.tick);
                    entry.tick = tick;
                    self.by_tick.insert(tick, addr);
                }
                CachePolicy::Clock => entry.referenced = true,
            }
        }
    }

    /// Picks and removes the replacement victim. Caller guarantees the
    /// cache is non-empty.
    fn evict_victim(&mut self) -> (u64, Entry) {
        let victim = match self.config.policy {
            CachePolicy::Lru => {
                let (&tick, &addr) = self.by_tick.iter().next().expect("cache non-empty");
                self.by_tick.remove(&tick);
                addr
            }
            CachePolicy::Clock => loop {
                let addr = self.ring[self.hand];
                let entry = self.entries.get_mut(&addr).expect("ring tracks entries");
                if entry.referenced {
                    entry.referenced = false;
                    self.hand = (self.hand + 1) % self.ring.len();
                } else {
                    self.ring.remove(self.hand);
                    if self.hand >= self.ring.len() {
                        self.hand = 0;
                    }
                    break addr;
                }
            },
        };
        let entry = self.entries.remove(&victim).expect("victim resident");
        self.stats.evictions += 1;
        (victim, entry)
    }

    /// Inserts (or refreshes) an entry, evicting to capacity. Evicted
    /// dirty blocks are flushed to `cold` (data movement only — the sync
    /// fraction was charged when the write was absorbed); evicted clean
    /// blocks are demoted into the middle tier when one exists.
    pub(crate) fn insert(
        &mut self,
        addr: u64,
        block: SealedBlock,
        dirty: bool,
        cold: &mut dyn DataStore,
    ) -> Result<(), StorageError> {
        if let Some(entry) = self.entries.get_mut(&addr) {
            entry.block = block;
            entry.dirty = entry.dirty || dirty;
            self.touch_entry(addr);
            return Ok(());
        }
        while self.entries.len() as u64 >= self.config.capacity_blocks {
            let (victim, entry) = self.evict_victim();
            if entry.dirty {
                cold.put(victim, entry.block)?;
                self.stats.writebacks += 1;
                if let Some(mid) = &mut self.mid {
                    // The tier's copy (if any) is stale now.
                    mid.invalidate(victim);
                }
            } else if self.mid.is_some() {
                let tick = self.next_tick();
                let mid = self.mid.as_mut().expect("checked above");
                if mid.insert(victim, entry.block, tick) {
                    self.stats.demotions += 1;
                }
                self.stats.promotions += 1;
            }
        }
        let tick = self.next_tick();
        self.entries.insert(
            addr,
            Entry {
                block,
                dirty,
                tick,
                referenced: true,
            },
        );
        match self.config.policy {
            CachePolicy::Lru => {
                self.by_tick.insert(tick, addr);
            }
            CachePolicy::Clock => self.ring.push(addr),
        }
        Ok(())
    }

    /// Serves a RAM-tier hit: clones the block, touches recency, counts
    /// the hit. Caller guarantees residency (a prior
    /// [`probe`](Self::probe) said [`ReadTier::Ram`] and no insertion
    /// happened since).
    pub(crate) fn serve_ram(&mut self, addr: u64) -> SealedBlock {
        let block = self.entries[&addr].block.clone();
        self.touch_entry(addr);
        self.stats.hits += 1;
        block
    }

    /// Serves a middle-tier hit (see [`serve_ram`](Self::serve_ram)).
    pub(crate) fn serve_mid(&mut self, addr: u64) -> SealedBlock {
        let tick = self.next_tick();
        let mid = self.mid.as_mut().expect("mid hit requires a mid tier");
        mid.touch(addr, tick);
        self.stats.mid_hits += 1;
        mid.get(addr).expect("mid residency tracked")
    }

    /// Counts a cold miss (the device serves it from its own store and
    /// then calls [`promote_cold`](Self::promote_cold)).
    pub(crate) fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Serves a random read: probe + dispatch. Cold misses return
    /// `(None, Cold)` — resolution and promotion stay with the caller.
    #[cfg(test)]
    pub(crate) fn read(&mut self, addr: u64) -> (Option<SealedBlock>, ReadTier) {
        match self.probe(addr) {
            ReadTier::Ram => (Some(self.serve_ram(addr)), ReadTier::Ram),
            ReadTier::Mid => (Some(self.serve_mid(addr)), ReadTier::Mid),
            ReadTier::Cold => {
                self.note_miss();
                (None, ReadTier::Cold)
            }
        }
    }

    /// Populates a clean copy after a write-through (`write_run`): the
    /// cold store already holds the new bytes, so any middle-tier copy is
    /// stale and the RAM entry enters clean.
    pub(crate) fn populate(
        &mut self,
        addr: u64,
        block: SealedBlock,
        cold: &mut dyn DataStore,
    ) -> Result<(), StorageError> {
        if let Some(mid) = &mut self.mid {
            mid.invalidate(addr);
        }
        if let Some(entry) = self.entries.get_mut(&addr) {
            // Overwrite in place: the old copy (dirty or not) is obsolete.
            entry.block = block;
            entry.dirty = false;
            self.touch_entry(addr);
            return Ok(());
        }
        self.insert(addr, block, false, cold)
    }

    /// Promotes a block just served by cold storage into the RAM tier.
    pub(crate) fn promote_cold(
        &mut self,
        addr: u64,
        block: &SealedBlock,
        cold: &mut dyn DataStore,
    ) -> Result<(), StorageError> {
        self.insert(addr, block.clone(), false, cold)
    }

    /// Absorbs a random write write-back: the RAM entry becomes the
    /// authority for `addr` until flushed.
    pub(crate) fn absorb_write(
        &mut self,
        addr: u64,
        block: SealedBlock,
        cold: &mut dyn DataStore,
    ) -> Result<(), StorageError> {
        if let Some(mid) = &mut self.mid {
            mid.invalidate(addr);
        }
        self.insert(addr, block, true, cold)
    }

    /// Removes `addr` from every cache tier, returning the RAM copy if it
    /// was the authority (dirty).
    pub(crate) fn invalidate(&mut self, addr: u64) -> Option<SealedBlock> {
        let removed = self.entries.remove(&addr);
        if let Some(entry) = &removed {
            match self.config.policy {
                CachePolicy::Lru => {
                    self.by_tick.remove(&entry.tick);
                }
                CachePolicy::Clock => {
                    if let Some(pos) = self.ring.iter().position(|&a| a == addr) {
                        self.ring.remove(pos);
                        if self.hand > pos || self.hand >= self.ring.len() {
                            self.hand = self.hand.saturating_sub(1);
                        }
                    }
                }
            }
        }
        if let Some(mid) = &mut self.mid {
            mid.invalidate(addr);
        }
        removed.and_then(|e| e.dirty.then_some(e.block))
    }

    /// The RAM copy of `addr` when the cache is the authority for it
    /// (dirty), without touching recency — read-path merging for runs.
    pub(crate) fn dirty_copy(&self, addr: u64) -> Option<&SealedBlock> {
        self.entries
            .get(&addr)
            .and_then(|e| e.dirty.then_some(&e.block))
    }

    /// Any resident RAM copy of `addr`, dirty or clean, without touching
    /// recency (simulator-internal peeks).
    pub(crate) fn peek(&self, addr: u64) -> Option<&SealedBlock> {
        self.entries.get(&addr).map(|e| &e.block)
    }

    /// Flushes every dirty entry to `cold` (data movement only) and
    /// marks them clean. Called by the device's durability barrier
    /// before the backing store syncs.
    pub(crate) fn flush(&mut self, cold: &mut dyn DataStore) -> Result<(), StorageError> {
        let mut dirty: Vec<u64> = self
            .entries
            .iter()
            .filter_map(|(&a, e)| e.dirty.then_some(a))
            .collect();
        dirty.sort_unstable();
        for addr in dirty {
            let entry = self.entries.get_mut(&addr).expect("just listed");
            cold.put(addr, entry.block.clone())?;
            entry.dirty = false;
            self.stats.writebacks += 1;
            if let Some(mid) = &mut self.mid {
                mid.invalidate(addr);
            }
        }
        Ok(())
    }

    /// Drops every tier's contents (device [`clear`]).
    ///
    /// [`clear`]: crate::device::Device::clear
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.by_tick.clear();
        self.ring.clear();
        self.hand = 0;
        if let Some(mid) = &mut self.mid {
            mid.clear();
        }
    }

    /// Middle-tier timing access for the device's cost attribution.
    pub(crate) fn mid_timing(&mut self) -> Option<&mut dyn TimingModel> {
        match &mut self.mid {
            Some(m) => Some(&mut *m.timing),
            None => None,
        }
    }

    /// Serializes residency metadata + counters. Blocks are **not**
    /// embedded: the caller flushes dirty entries first, after which
    /// every cached byte equals the authoritative store's copy and the
    /// restore side repopulates from there — so a snapshot stays the
    /// same size whatever the cache holds.
    ///
    /// # Panics
    ///
    /// Panics if a dirty entry survives the pre-snapshot flush.
    pub(crate) fn save_state(&self, w: &mut oram_crypto::persist::StateWriter) {
        assert!(
            self.entries.values().all(|e| !e.dirty),
            "cache snapshot requires a prior flush"
        );
        w.put_u64(self.tick);
        w.put_u64(self.hand as u64);
        let stats = self.stats;
        for word in [
            stats.hits,
            stats.mid_hits,
            stats.misses,
            stats.evictions,
            stats.writebacks,
            stats.promotions,
            stats.demotions,
        ] {
            w.put_u64(word);
        }
        match self.config.policy {
            CachePolicy::Lru => {
                // tick order doubles as both recency and (unused) ring order.
                w.put_usize(self.by_tick.len());
                for (&tick, &addr) in &self.by_tick {
                    w.put_u64(addr);
                    w.put_u64(tick);
                    w.put_bool(self.entries[&addr].referenced);
                }
            }
            CachePolicy::Clock => {
                w.put_usize(self.ring.len());
                for &addr in &self.ring {
                    let entry = &self.entries[&addr];
                    w.put_u64(addr);
                    w.put_u64(entry.tick);
                    w.put_bool(entry.referenced);
                }
            }
        }
        let mid_meta = self.mid.as_ref().map(|m| m.metadata()).unwrap_or_default();
        w.put_usize(mid_meta.len());
        for (addr, tick) in mid_meta {
            w.put_u64(addr);
            w.put_u64(tick);
        }
    }

    /// Restores metadata written by [`save_state`](Self::save_state),
    /// repopulating block bytes from the authoritative `cold` store.
    ///
    /// # Errors
    ///
    /// [`oram_crypto::persist::PersistError`] when the snapshot references
    /// a slot the store does not hold (snapshot/device mismatch).
    pub(crate) fn load_state(
        &mut self,
        r: &mut oram_crypto::persist::StateReader<'_>,
        cold: &mut dyn DataStore,
    ) -> Result<(), oram_crypto::persist::PersistError> {
        use oram_crypto::persist::PersistError;
        self.clear();
        self.tick = r.get_u64()?;
        self.hand = r.get_u64()? as usize;
        self.stats = CacheStats {
            hits: r.get_u64()?,
            mid_hits: r.get_u64()?,
            misses: r.get_u64()?,
            evictions: r.get_u64()?,
            writebacks: r.get_u64()?,
            promotions: r.get_u64()?,
            demotions: r.get_u64()?,
        };
        let fetch = |addr: u64, cold: &mut dyn DataStore| {
            cold.get(addr)
                .map_err(|e| PersistError::Malformed(format!("repopulating cache: {e}")))?
                .ok_or_else(|| {
                    PersistError::Malformed(format!(
                        "cache snapshot references slot {addr}, absent from the store"
                    ))
                })
        };
        let count = r.get_usize()?;
        for _ in 0..count {
            let addr = r.get_u64()?;
            let tick = r.get_u64()?;
            let referenced = r.get_bool()?;
            let block = fetch(addr, cold)?;
            self.entries.insert(
                addr,
                Entry {
                    block,
                    dirty: false,
                    tick,
                    referenced,
                },
            );
            match self.config.policy {
                CachePolicy::Lru => {
                    self.by_tick.insert(tick, addr);
                }
                CachePolicy::Clock => self.ring.push(addr),
            }
        }
        if self.hand > self.ring.len() {
            return Err(PersistError::Malformed(format!(
                "clock hand {} beyond ring of {}",
                self.hand,
                self.ring.len()
            )));
        }
        let mid_count = r.get_usize()?;
        if mid_count > 0 && self.mid.is_none() {
            return Err(PersistError::Malformed(
                "snapshot has a middle tier, device has none".into(),
            ));
        }
        for _ in 0..mid_count {
            let addr = r.get_u64()?;
            let tick = r.get_u64()?;
            let block = fetch(addr, cold)?;
            let mid = self.mid.as_mut().expect("checked above");
            mid.store
                .put(addr, block)
                .map_err(|e| PersistError::Malformed(format!("repopulating tier: {e}")))?;
            mid.touch(addr, tick);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([3u8; 32]).derive("cache-test", 0))
    }

    fn sealed(id: u64) -> SealedBlock {
        sealer().seal(id, 0, &id.to_le_bytes())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::lru(2)).unwrap();
        cache.insert(1, sealed(1), false, &mut cold).unwrap();
        cache.insert(2, sealed(2), false, &mut cold).unwrap();
        cache.read(1); // 2 is now LRU
        cache.insert(3, sealed(3), false, &mut cold).unwrap();
        assert!(cache.contains(1) && cache.contains(3) && !cache.contains(2));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::clock(2)).unwrap();
        cache.insert(1, sealed(1), false, &mut cold).unwrap();
        cache.insert(2, sealed(2), false, &mut cold).unwrap();
        cache.read(1); // reference 1
        cache.insert(3, sealed(3), false, &mut cold).unwrap();
        // The sweep clears both fresh bits, then evicts in ring order —
        // slot 1 was re-referenced by the read, so it survives the first
        // sweep only if its bit was still set when the hand passed.
        assert_eq!(cache.entries.len(), 2);
        assert!(cache.contains(3));
    }

    #[test]
    fn dirty_eviction_writes_back_to_cold() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::lru(1)).unwrap();
        cache.absorb_write(7, sealed(7), &mut cold).unwrap();
        assert!(
            DataStore::get(&mut cold, 7).unwrap().is_none(),
            "write-back absorbed"
        );
        cache.absorb_write(8, sealed(8), &mut cold).unwrap();
        assert_eq!(
            DataStore::get(&mut cold, 7).unwrap().unwrap().block_id(),
            7,
            "eviction flushed the dirty block"
        );
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn flush_cleans_every_dirty_entry() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::lru(8)).unwrap();
        for a in 0..4u64 {
            cache.absorb_write(a, sealed(a), &mut cold).unwrap();
        }
        cache.flush(&mut cold).unwrap();
        assert_eq!(cold.len(), 4);
        assert_eq!(cache.stats().writebacks, 4);
        // Entries remain resident and clean.
        for a in 0..4u64 {
            assert!(cache.contains(a));
            assert!(cache.dirty_copy(a).is_none());
        }
    }

    #[test]
    fn clean_eviction_demotes_into_mid_tier() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::lru(1).with_mid_tier(2)).unwrap();
        cache.insert(1, sealed(1), false, &mut cold).unwrap();
        cache.insert(2, sealed(2), false, &mut cold).unwrap(); // evicts 1 → mid
        assert_eq!(cache.probe(1), ReadTier::Mid);
        let (block, tier) = cache.read(1);
        assert_eq!(tier, ReadTier::Mid);
        assert_eq!(block.unwrap().block_id(), 1);
        assert_eq!(cache.stats().promotions, 1);
    }

    #[test]
    fn mid_tier_demotes_lru_when_full() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::lru(1).with_mid_tier(2)).unwrap();
        for a in 1..=4u64 {
            cache.insert(a, sealed(a), false, &mut cold).unwrap();
        }
        // RAM holds 4; mid holds the two most recently evicted of 1..3.
        assert_eq!(cache.probe(4), ReadTier::Ram);
        assert_eq!(cache.probe(1), ReadTier::Cold, "demoted out of the tier");
        assert_eq!(cache.probe(2), ReadTier::Mid);
        assert_eq!(cache.probe(3), ReadTier::Mid);
        assert!(cache.stats().demotions >= 1);
    }

    #[test]
    fn invalidate_returns_dirty_authority_only() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::lru(4)).unwrap();
        cache.insert(1, sealed(1), false, &mut cold).unwrap();
        cache.absorb_write(2, sealed(2), &mut cold).unwrap();
        assert!(cache.invalidate(1).is_none(), "clean copy is not authority");
        assert_eq!(cache.invalidate(2).unwrap().block_id(), 2);
        assert!(!cache.contains(1) && !cache.contains(2));
    }

    #[test]
    fn state_roundtrip_preserves_residency_and_stats() {
        for config in [
            CacheConfig::lru(3).with_mid_tier(2),
            CacheConfig::clock(3).with_mid_tier(2),
        ] {
            let mut cold = BlockStore::new();
            let mut cache = BlockCache::new(config.clone()).unwrap();
            for a in 0..6u64 {
                DataStore::put(&mut cold, a, sealed(a)).unwrap();
                cache.insert(a, sealed(a), false, &mut cold).unwrap();
            }
            cache.read(2);
            let mut w = oram_crypto::persist::StateWriter::new();
            cache.save_state(&mut w);
            let bytes = w.into_bytes();

            let mut restored = BlockCache::new(config).unwrap();
            let mut r = oram_crypto::persist::StateReader::new(&bytes);
            restored.load_state(&mut r, &mut cold).unwrap();
            assert_eq!(restored.stats(), cache.stats());
            for a in 0..6u64 {
                assert_eq!(restored.probe(a), cache.probe(a), "slot {a}");
            }
            // Replacement behavior continues identically.
            cache.insert(100, sealed(100), false, &mut cold).unwrap();
            restored.insert(100, sealed(100), false, &mut cold).unwrap();
            for a in 0..6u64 {
                assert_eq!(restored.probe(a), cache.probe(a), "post-insert slot {a}");
            }
        }
    }

    #[test]
    fn load_state_rejects_missing_store_slot() {
        let mut cold = BlockStore::new();
        let mut cache = BlockCache::new(CacheConfig::lru(2)).unwrap();
        cache.insert(9, sealed(9), false, &mut cold).unwrap();
        let mut w = oram_crypto::persist::StateWriter::new();
        cache.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut empty = BlockStore::new();
        let mut restored = BlockCache::new(CacheConfig::lru(2)).unwrap();
        let mut r = oram_crypto::persist::StateReader::new(&bytes);
        assert!(restored.load_state(&mut r, &mut empty).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1 block")]
    fn zero_capacity_rejected() {
        let _ = BlockCache::new(CacheConfig::lru(0));
    }

    #[test]
    fn config_serde_roundtrip() {
        let config = CacheConfig::clock(64).with_mid_tier(256);
        let json = serde_json::to_string(&config).unwrap();
        let back: CacheConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}

//! Calibration presets reproducing the paper's experimental machine.
//!
//! Table 5-2 of the paper:
//!
//! | Component | Paper value | Simulated counterpart |
//! |---|---|---|
//! | Operating system | Ubuntu 16.04 | n/a (deterministic simulator) |
//! | CPU | Intel i7-7700K | n/a (host executes the protocol logic) |
//! | Memory | DDR4 PC4-2133, 16 GB | [`DramModel::ddr4_2133`] |
//! | Disk | HDD 7200 RPM, 500 GB | [`HddModel::paper_calibrated`] |
//! | Read/write throughput | 102.7 MB/s / 55.2 MB/s | same values in [`crate::hdd::HddParams::dac2019`] |
//!
//! The HDD seek constants (55 µs base + 1 ms × √(span fraction)) are fitted
//! to the per-access I/O latencies the paper measures in Tables 5-3/5-4
//! (77 µs and 107 µs for single-block reads over 64 MB and 1 GB spans);
//! EXPERIMENTS.md documents the fit quality for every reproduced number.

use crate::clock::SimClock;
use crate::device::Device;
use crate::dram::DramModel;
use crate::hdd::HddModel;
use crate::ssd::SsdModel;
use crate::trace::AccessTrace;

/// Conventional device ids used by all experiments.
pub mod device_ids {
    use crate::device::DeviceId;

    /// The in-memory (DRAM) device carrying the Path ORAM tree.
    pub const MEMORY: DeviceId = DeviceId(0);
    /// The storage (HDD/SSD) device carrying the flat ORAM region.
    pub const STORAGE: DeviceId = DeviceId(1);
}

/// The paper's HDD (Table 5-2, calibrated; see module docs).
pub fn paper_hdd() -> HddModel {
    HddModel::paper_calibrated()
}

/// The paper's DDR4-2133 memory.
pub fn paper_dram() -> DramModel {
    DramModel::ddr4_2133()
}

/// A 2019-era SATA SSD for beyond-paper ablations.
pub fn ablation_ssd() -> SsdModel {
    SsdModel::sata_2019()
}

/// Which storage technology backs the flat ORAM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StorageKind {
    /// The paper's 7200 RPM HDD.
    PaperHdd,
    /// A 2019-era SATA SSD (ablation).
    Ssd,
}

/// A full machine description for one experiment run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MachineConfig {
    /// Human-readable label used in reports.
    pub label: String,
    /// Storage backend technology.
    pub storage: StorageKind,
    /// Logical ORAM block size in bytes, charged per block access
    /// (the paper uses 1 KB).
    pub block_bytes: u64,
    /// Optional block cache (and middle tier) installed in front of the
    /// storage device; `None` reproduces the paper's uncached setup.
    pub cache: Option<crate::cache::CacheConfig>,
    /// Suggested cycle-pipeline depth for engines built on this machine
    /// (how many scheduling windows they may keep in flight). A *hint*:
    /// engines adopt it only when their own configuration leaves the
    /// depth unset, and results are byte-identical at any depth — the
    /// hint only tunes wall-clock behaviour to the host. `None` (the
    /// default, serialized as `null`) leaves engines sequential.
    pub pipeline_depth: Option<u64>,
}

impl MachineConfig {
    /// The machine of the paper's Table 5-2 with 1 KB blocks.
    pub fn dac2019() -> Self {
        Self {
            label: "DAC'19 testbed (Table 5-2)".into(),
            storage: StorageKind::PaperHdd,
            block_bytes: 1024,
            cache: None,
            pipeline_depth: None,
        }
    }

    /// Same machine with an SSD storage backend (ablation).
    pub fn dac2019_ssd() -> Self {
        Self {
            label: "DAC'19 testbed, SSD ablation".into(),
            storage: StorageKind::Ssd,
            block_bytes: 1024,
            cache: None,
            pipeline_depth: None,
        }
    }

    /// Adds a block cache in front of the storage device.
    pub fn with_cache(mut self, cache: crate::cache::CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Suggests a cycle-pipeline depth to engines built on this machine
    /// (see [`pipeline_depth`](Self::pipeline_depth)).
    pub fn with_pipeline_depth(mut self, depth: u64) -> Self {
        self.pipeline_depth = Some(depth);
        self
    }

    /// Builds the memory device (DRAM).
    pub fn build_memory(&self, clock: SimClock, trace: Option<AccessTrace>) -> Device {
        let mut dev = Device::new(
            device_ids::MEMORY,
            "dram",
            Box::new(paper_dram()),
            clock,
            trace,
        );
        dev.set_charged_block_bytes(self.block_bytes);
        dev
    }

    /// Builds the storage device (HDD or SSD per [`StorageKind`]).
    pub fn build_storage(&self, clock: SimClock, trace: Option<AccessTrace>) -> Device {
        let mut dev = match self.storage {
            StorageKind::PaperHdd => Device::new(
                device_ids::STORAGE,
                "hdd",
                Box::new(paper_hdd()),
                clock,
                trace,
            ),
            StorageKind::Ssd => Device::new(
                device_ids::STORAGE,
                "ssd",
                Box::new(ablation_ssd()),
                clock,
                trace,
            ),
        };
        dev.set_charged_block_bytes(self.block_bytes);
        if let Some(cache) = &self.cache {
            dev.install_cache(cache.clone())
                .expect("machine cache configuration is valid");
        }
        dev
    }

    /// Builds the storage device over an explicit data store (e.g. the
    /// durable [`crate::file::FileStore`]) with this machine's timing
    /// model — timing and trace shape are identical to
    /// [`build_storage`](Self::build_storage); only where the bytes live
    /// changes.
    pub fn build_storage_with_store(
        &self,
        clock: SimClock,
        trace: Option<AccessTrace>,
        store: Box<dyn crate::store::DataStore>,
    ) -> Device {
        let (name, timing): (&str, Box<dyn crate::device::TimingModel>) = match self.storage {
            StorageKind::PaperHdd => ("hdd", Box::new(paper_hdd())),
            StorageKind::Ssd => ("ssd", Box::new(ablation_ssd())),
        };
        let mut dev = Device::with_store(device_ids::STORAGE, name, timing, clock, trace, store);
        dev.set_charged_block_bytes(self.block_bytes);
        if let Some(cache) = &self.cache {
            dev.install_cache(cache.clone())
                .expect("machine cache configuration is valid");
        }
        dev
    }

    /// Rows of the machine-setup table (reproduces Table 5-2 in reports).
    pub fn setup_rows(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            ("Simulation".into(), self.label.clone()),
            (
                "Memory".into(),
                "DDR4 PC4-2133 model (70 ns + 15 GB/s)".into(),
            ),
        ];
        match self.storage {
            StorageKind::PaperHdd => {
                rows.push(("Disk".into(), "HDD 7200RPM 500GB model".into()));
                rows.push((
                    "Read/Write Throughput".into(),
                    "102.7 MB/s, 55.2 MB/s (random); streaming writes coalesce to 102.7 MB/s"
                        .into(),
                ));
                rows.push((
                    "Seek model".into(),
                    "55 us + 1 ms x sqrt(distance/500GB)".into(),
                ));
            }
            StorageKind::Ssd => {
                rows.push(("Disk".into(), "SATA SSD model (80 us, 520/480 MB/s)".into()));
            }
        }
        rows.push(("Block size".into(), format!("{} B", self.block_bytes)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AccessKind;

    #[test]
    fn dac2019_builds_hdd_and_dram() {
        let config = MachineConfig::dac2019();
        let clock = SimClock::new();
        let mem = config.build_memory(clock.clone(), None);
        let storage = config.build_storage(clock, None);
        assert_eq!(mem.id(), device_ids::MEMORY);
        assert_eq!(storage.id(), device_ids::STORAGE);
        assert_eq!(storage.sequential_bandwidth(AccessKind::Read), 102.7e6);
        assert_eq!(mem.charged_block_bytes(), 1024);
    }

    #[test]
    fn ssd_ablation_selects_ssd() {
        let config = MachineConfig::dac2019_ssd();
        let storage = config.build_storage(SimClock::new(), None);
        assert_eq!(storage.name(), "ssd");
    }

    #[test]
    fn setup_rows_mention_the_paper_throughputs() {
        let rows = MachineConfig::dac2019().setup_rows();
        let text: String = rows.iter().map(|(k, v)| format!("{k}: {v}\n")).collect();
        assert!(text.contains("102.7 MB/s"));
        assert!(text.contains("55.2 MB/s"));
        assert!(text.contains("1024 B"));
    }

    #[test]
    fn config_serde_roundtrip() {
        let config = MachineConfig::dac2019();
        let json = serde_json::to_string(&config).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}

//! Simulated time: nanosecond instants, durations, and a shared clock.
//!
//! All timing in the reproduction is integer nanoseconds so that runs are
//! bit-for-bit reproducible across platforms (no floating-point clock
//! drift). Conversions to floating-point seconds exist only at the
//! reporting boundary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates a duration from (possibly fractional) seconds, rounding to
    /// the nearest nanosecond. Intended for configuration parsing only.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "duration must be finite and non-negative"
        );
        Self((secs * 1e9).round() as u64)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as floating point (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as floating point (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as floating point (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulated duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("simulated duration underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("simulated duration overflow"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    /// Human-scaled rendering: picks ns/µs/ms/s to keep 3+ significant digits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2} us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3} s", ns as f64 / 1e9)
        }
    }
}

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Nanoseconds since origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later"),
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.as_nanos())
                .expect("simulated time overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A shared simulated wall clock.
///
/// Cloning yields another handle to the same clock (the state is shared via
/// an atomic), so devices, protocols and trace recorders observe one
/// timeline. Only protocol code advances the clock; devices merely report
/// costs.
///
/// # Example
///
/// ```
/// use oram_storage::clock::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// clock.advance(SimDuration::from_micros(5));
/// assert_eq!(handle.now().as_nanos(), 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the origin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let updated = self.now_nanos.fetch_add(d.as_nanos(), Ordering::Relaxed) + d.as_nanos();
        SimTime(updated)
    }

    /// Resets the clock to the origin (between experiment repetitions).
    pub fn reset(&self) {
        self.now_nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(3), SimDuration::from_nanos(3_000));
        assert_eq!(
            SimDuration::from_millis(2),
            SimDuration::from_nanos(2_000_000)
        );
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_nanos(1_500_000_000)
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(100);
        let b = SimDuration::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12 ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.50 us");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20.00 ms");
        assert_eq!(SimDuration::from_millis(1290).to_string(), "1.290 s");
    }

    #[test]
    fn time_and_duration_compose() {
        let t = SimTime::from_nanos(50);
        let later = t + SimDuration::from_nanos(25);
        assert_eq!(later.as_nanos(), 75);
        assert_eq!(later.duration_since(t).as_nanos(), 25);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_checks_order() {
        SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn clock_is_shared_between_clones() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance(SimDuration::from_nanos(7));
        other.advance(SimDuration::from_nanos(3));
        assert_eq!(clock.now().as_nanos(), 10);
        clock.reset();
        assert_eq!(other.now(), SimTime::ZERO);
    }

    #[test]
    fn float_reporting_conversions() {
        let d = SimDuration::from_micros(1500);
        assert!((d.as_micros_f64() - 1500.0).abs() < 1e-9);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.0015).abs() < 1e-12);
    }
}

//! The simulated block device: data + timing + observability.
//!
//! A [`Device`] couples four concerns that the experiments need to stay in
//! lockstep:
//!
//! 1. **Data** — a sparse [`crate::store::BlockStore`] holding sealed blocks
//!    at physical slot addresses.
//! 2. **Timing** — a [`TimingModel`] charging each access a simulated cost
//!    (seek + transfer for HDDs, latency + bandwidth for DRAM/SSD).
//! 3. **Observability** — every access is appended to the shared
//!    [`crate::trace::AccessTrace`], which is precisely the adversary's view.
//! 4. **Accounting** — per-device [`crate::stats::DeviceStats`].
//!
//! Devices support *payload scaling* (`charged_block_bytes`): experiments
//! can store small payloads (fast to encrypt/copy) while timing is charged
//! for the paper's full logical block size, keeping simulated time faithful
//! at a fraction of the host cost. See DESIGN.md §2.

use crate::clock::{SimClock, SimDuration};
use crate::stats::DeviceStats;
use crate::store::BlockStore;
use crate::trace::{AccessTrace, TraceEvent};
use crate::StorageError;
use oram_crypto::seal::SealedBlock;
use std::fmt;

/// Read or write direction of an access, as visible on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessKind {
    /// Data flows device → controller.
    Read,
    /// Data flows controller → device.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Identifier distinguishing devices within one experiment's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A device timing model: charges simulated time per access.
///
/// Implementations track internal mechanical state (e.g. HDD head position)
/// and must be deterministic: the same access sequence always yields the
/// same costs.
pub trait TimingModel: fmt::Debug + Send {
    /// Cost of one access of `bytes` bytes at byte-offset `offset`.
    ///
    /// `offset` is an absolute device byte address; models use it for
    /// locality effects (seeks). Implementations should update internal
    /// head/locality state.
    fn access_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration;

    /// Cost of a *streaming* access of `bytes` at `offset`: the caller
    /// guarantees the transfer is one sequential run. Defaults to
    /// [`access_cost`](Self::access_cost).
    fn streaming_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration {
        self.access_cost(kind, offset, bytes)
    }

    /// Peak sequential bandwidth in bytes/second, for analytical models.
    fn sequential_bandwidth(&self, kind: AccessKind) -> f64;

    /// Forgets locality state (e.g. parks the head). Used between
    /// experiment phases.
    fn reset(&mut self);
}

/// A simulated block device.
///
/// See the [module docs](self) for the design; see
/// [`crate::hierarchy::MemoryHierarchy`] for the standard two-device
/// (DRAM + HDD) experiment setup.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    name: String,
    timing: Box<dyn TimingModel>,
    store: BlockStore,
    stats: DeviceStats,
    trace: Option<AccessTrace>,
    clock: SimClock,
    /// Slot width in bytes used to map slot addresses to byte offsets and,
    /// when set, the charged size of every block access (payload scaling).
    charged_block_bytes: u64,
    /// Optional capacity bound in slots; `None` = unbounded.
    capacity_slots: Option<u64>,
}

impl Device {
    /// Default charged block size: the paper's 1 KB block.
    pub const DEFAULT_BLOCK_BYTES: u64 = 1024;

    /// Creates a device.
    ///
    /// `trace` may be shared across devices so one recorder observes the
    /// whole bus. The charged block size defaults to 1 KB; override with
    /// [`set_charged_block_bytes`](Self::set_charged_block_bytes).
    pub fn new(
        id: DeviceId,
        name: impl Into<String>,
        timing: Box<dyn TimingModel>,
        clock: SimClock,
        trace: Option<AccessTrace>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            timing,
            store: BlockStore::new(),
            stats: DeviceStats::default(),
            trace,
            clock,
            charged_block_bytes: Self::DEFAULT_BLOCK_BYTES,
            capacity_slots: None,
        }
    }

    /// The device identifier used in traces.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the logical block size charged per access (payload scaling).
    pub fn set_charged_block_bytes(&mut self, bytes: u64) {
        assert!(bytes > 0, "charged block size must be positive");
        self.charged_block_bytes = bytes;
    }

    /// The logical block size charged per access.
    pub fn charged_block_bytes(&self) -> u64 {
        self.charged_block_bytes
    }

    /// Bounds the device to `slots` block slots; accesses beyond return
    /// [`StorageError::OutOfCapacity`].
    pub fn set_capacity_slots(&mut self, slots: u64) {
        self.capacity_slots = Some(slots);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets statistics and timing-model locality state.
    pub fn reset_accounting(&mut self) {
        self.stats = DeviceStats::default();
        self.timing.reset();
    }

    /// Number of blocks currently stored.
    pub fn stored_blocks(&self) -> usize {
        self.store.len()
    }

    /// Peak sequential bandwidth of the underlying model, bytes/second.
    pub fn sequential_bandwidth(&self, kind: AccessKind) -> f64 {
        self.timing.sequential_bandwidth(kind)
    }

    fn check_capacity(&self, addr: u64) -> Result<(), StorageError> {
        if let Some(cap) = self.capacity_slots {
            if addr >= cap {
                return Err(StorageError::OutOfCapacity {
                    device: self.name.clone(),
                    addr,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    fn record(&mut self, kind: AccessKind, addr: u64, bytes: u64, cost: SimDuration) {
        self.stats.record(kind, bytes, cost);
        if let Some(trace) = &self.trace {
            trace.record(TraceEvent {
                at: self.clock.now(),
                device: self.id,
                kind,
                addr,
                bytes,
            });
        }
    }

    /// Reads the sealed block at slot `addr`, charging one random-capable
    /// access.
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingBlock`] if the slot is empty,
    /// [`StorageError::OutOfCapacity`] if beyond a configured capacity.
    pub fn read_block(&mut self, addr: u64) -> Result<SealedBlock, StorageError> {
        self.check_capacity(addr)?;
        let block = self
            .store
            .get(addr)
            .cloned()
            .ok_or_else(|| StorageError::MissingBlock { device: self.name.clone(), addr })?;
        let bytes = self.charged_block_bytes;
        let cost = self.timing.access_cost(AccessKind::Read, addr * bytes, bytes);
        self.record(AccessKind::Read, addr, bytes, cost);
        Ok(block)
    }

    /// Writes `block` to slot `addr`, charging one random-capable access.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfCapacity`] if beyond a configured capacity.
    pub fn write_block(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        self.check_capacity(addr)?;
        self.store.put(addr, block);
        let bytes = self.charged_block_bytes;
        let cost = self.timing.access_cost(AccessKind::Write, addr * bytes, bytes);
        self.record(AccessKind::Write, addr, bytes, cost);
        Ok(())
    }

    /// Removes and returns the block at `addr` without charging time
    /// (used by shuffle logic that has already paid for a streaming read).
    pub fn take_block(&mut self, addr: u64) -> Option<SealedBlock> {
        self.store.remove(addr)
    }

    /// Looks at the block at `addr` without charging time or tracing.
    ///
    /// This is a *simulator-internal* peek (e.g. for assertions); protocol
    /// code must use [`read_block`](Self::read_block).
    pub fn peek_block(&self, addr: u64) -> Option<&SealedBlock> {
        self.store.get(addr)
    }

    /// Reads `count` consecutive slots starting at `start` as one streaming
    /// run: a single seek, then sequential transfer. Empty slots yield
    /// `None` entries (the run still pays full transfer time, exactly like
    /// reading a raw region).
    pub fn read_run(
        &mut self,
        start: u64,
        count: u64,
    ) -> Result<Vec<Option<SealedBlock>>, StorageError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.check_capacity(start + count - 1)?;
        let blocks: Vec<Option<SealedBlock>> =
            (start..start + count).map(|a| self.store.get(a).cloned()).collect();
        let bytes = self.charged_block_bytes * count;
        let cost = self.timing.streaming_cost(AccessKind::Read, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Read, start, bytes, cost);
        Ok(blocks)
    }

    /// Writes `blocks` to consecutive slots starting at `start` as one
    /// streaming run.
    pub fn write_run(&mut self, start: u64, blocks: Vec<SealedBlock>) -> Result<(), StorageError> {
        if blocks.is_empty() {
            return Ok(());
        }
        let count = blocks.len() as u64;
        self.check_capacity(start + count - 1)?;
        for (i, block) in blocks.into_iter().enumerate() {
            self.store.put(start + i as u64, block);
        }
        let bytes = self.charged_block_bytes * count;
        let cost = self.timing.streaming_cost(AccessKind::Write, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Write, start, bytes, cost);
        Ok(())
    }

    /// Charges an access of `bytes` at slot `addr` without touching data.
    ///
    /// Protocols use this for accesses whose data movement is modelled
    /// elsewhere (e.g. dummy reads that discard their result).
    pub fn charge(&mut self, kind: AccessKind, addr: u64, bytes: u64) -> SimDuration {
        let cost = self.timing.access_cost(kind, addr * self.charged_block_bytes, bytes);
        self.record(kind, addr, bytes, cost);
        cost
    }

    /// Drops all stored blocks (data only; stats and timing state remain).
    pub fn clear(&mut self) {
        self.store.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramModel;
    use crate::hdd::HddModel;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([1u8; 32]).derive("dev-test", 0))
    }

    fn dram_device(trace: Option<AccessTrace>) -> Device {
        Device::new(DeviceId(1), "dram", Box::new(DramModel::ddr4_2133()), SimClock::new(), trace)
    }

    #[test]
    fn read_back_what_was_written() {
        let mut dev = dram_device(None);
        let sealed = sealer().seal(7, 0, b"contents");
        dev.write_block(7, sealed.clone()).unwrap();
        assert_eq!(dev.read_block(7).unwrap(), sealed);
        assert_eq!(dev.stored_blocks(), 1);
    }

    #[test]
    fn missing_block_errors() {
        let mut dev = dram_device(None);
        assert!(matches!(dev.read_block(3), Err(StorageError::MissingBlock { addr: 3, .. })));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut dev = dram_device(None);
        dev.set_capacity_slots(4);
        let sealed = sealer().seal(4, 0, b"x");
        assert!(matches!(
            dev.write_block(4, sealed),
            Err(StorageError::OutOfCapacity { addr: 4, capacity: 4, .. })
        ));
    }

    #[test]
    fn stats_accumulate_reads_and_writes() {
        let mut dev = dram_device(None);
        dev.write_block(0, sealer().seal(0, 0, b"a")).unwrap();
        dev.read_block(0).unwrap();
        dev.read_block(0).unwrap();
        let stats = dev.stats();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.bytes_read, 2 * Device::DEFAULT_BLOCK_BYTES);
        assert!(stats.busy > SimDuration::ZERO);
    }

    #[test]
    fn trace_records_bus_view() {
        let trace = AccessTrace::new();
        let mut dev = dram_device(Some(trace.clone()));
        dev.write_block(5, sealer().seal(5, 0, b"abc")).unwrap();
        dev.read_block(5).unwrap();
        let events = trace.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, AccessKind::Write);
        assert_eq!(events[0].addr, 5);
        assert_eq!(events[1].kind, AccessKind::Read);
    }

    #[test]
    fn charged_bytes_scale_timing_not_data() {
        let mut small = dram_device(None);
        let mut big = dram_device(None);
        big.set_charged_block_bytes(64 * 1024);
        let sealed = sealer().seal(0, 0, b"tiny");
        small.write_block(0, sealed.clone()).unwrap();
        big.write_block(0, sealed).unwrap();
        assert!(big.stats().busy > small.stats().busy);
        assert_eq!(big.read_block(0).unwrap().ciphertext(), small.read_block(0).unwrap().ciphertext());
    }

    #[test]
    fn streaming_run_is_cheaper_than_random_on_hdd() {
        let mk_hdd = || {
            Device::new(
                DeviceId(0),
                "hdd",
                Box::new(HddModel::paper_calibrated()),
                SimClock::new(),
                None,
            )
        };
        let mut random = mk_hdd();
        let mut streaming = mk_hdd();
        let s = sealer();
        for addr in 0..64u64 {
            random.write_block(addr * 97 % 64, s.seal(addr, 0, b"d")).unwrap();
        }
        streaming.write_run(0, (0..64).map(|a| s.seal(a, 0, b"d")).collect()).unwrap();
        assert!(
            streaming.stats().busy.as_nanos() * 5 < random.stats().busy.as_nanos(),
            "streaming {} vs random {}",
            streaming.stats().busy,
            random.stats().busy
        );
    }

    #[test]
    fn read_run_returns_gaps_as_none() {
        let mut dev = dram_device(None);
        dev.write_block(2, sealer().seal(2, 0, b"x")).unwrap();
        let run = dev.read_run(0, 4).unwrap();
        assert_eq!(run.len(), 4);
        assert!(run[0].is_none() && run[1].is_none() && run[3].is_none());
        assert!(run[2].is_some());
    }

    #[test]
    fn empty_runs_are_free() {
        let mut dev = dram_device(None);
        assert!(dev.read_run(0, 0).unwrap().is_empty());
        dev.write_run(9, Vec::new()).unwrap();
        assert_eq!(dev.stats().reads + dev.stats().writes, 0);
    }

    #[test]
    fn charge_records_without_data() {
        let mut dev = dram_device(None);
        let cost = dev.charge(AccessKind::Read, 11, 1024);
        assert!(cost > SimDuration::ZERO);
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stored_blocks(), 0);
    }

    #[test]
    fn reset_accounting_clears_stats_but_not_data() {
        let mut dev = dram_device(None);
        dev.write_block(0, sealer().seal(0, 0, b"keep")).unwrap();
        dev.reset_accounting();
        assert_eq!(dev.stats().writes, 0);
        assert_eq!(dev.stored_blocks(), 1);
    }
}

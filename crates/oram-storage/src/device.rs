//! The simulated block device: data + timing + observability.
//!
//! A [`Device`] couples four concerns that the experiments need to stay in
//! lockstep:
//!
//! 1. **Data** — a sparse [`crate::store::BlockStore`] holding sealed blocks
//!    at physical slot addresses.
//! 2. **Timing** — a [`TimingModel`] charging each access a simulated cost
//!    (seek + transfer for HDDs, latency + bandwidth for DRAM/SSD).
//! 3. **Observability** — every access is appended to the shared
//!    [`crate::trace::AccessTrace`], which is precisely the adversary's view.
//! 4. **Accounting** — per-device [`crate::stats::DeviceStats`].
//!
//! Devices support *payload scaling* (`charged_block_bytes`): experiments
//! can store small payloads (fast to encrypt/copy) while timing is charged
//! for the paper's full logical block size, keeping simulated time faithful
//! at a fraction of the host cost. See DESIGN.md §2.

use crate::cache::{BlockCache, CacheConfig, CacheStats, ReadTier};
use crate::clock::{SimClock, SimDuration};
use crate::stats::DeviceStats;
use crate::store::{BlockStore, DataStore};
use crate::trace::{AccessTrace, TraceEvent};
use crate::StorageError;
use oram_crypto::persist::{PersistError, StateReader, StateWriter};
use oram_crypto::seal::SealedBlock;
use std::fmt;

/// Read or write direction of an access, as visible on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessKind {
    /// Data flows device → controller.
    Read,
    /// Data flows controller → device.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Identifier distinguishing devices within one experiment's trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A device timing model: charges simulated time per access.
///
/// Implementations track internal mechanical state (e.g. HDD head position)
/// and must be deterministic: the same access sequence always yields the
/// same costs.
pub trait TimingModel: fmt::Debug + Send {
    /// Cost of one access of `bytes` bytes at byte-offset `offset`.
    ///
    /// `offset` is an absolute device byte address; models use it for
    /// locality effects (seeks). Implementations should update internal
    /// head/locality state.
    fn access_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration;

    /// Cost of a *streaming* access of `bytes` at `offset`: the caller
    /// guarantees the transfer is one sequential run. Defaults to
    /// [`access_cost`](Self::access_cost).
    fn streaming_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration {
        self.access_cost(kind, offset, bytes)
    }

    /// Per-operation costs of a *queued batch* of same-size accesses: the
    /// caller submits all `offsets` at once, so the device may schedule
    /// them internally (elevator sweeps, command-queue overlap) while the
    /// returned costs stay aligned with the submission order. Returns one
    /// cost per offset; implementations must leave internal state exactly
    /// as if the batch completed.
    ///
    /// Defaults to charging each access independently in submission order
    /// (no batching benefit) — models with per-op overhead that command
    /// queuing can coalesce (HDD seeks, SSD/NVMe doorbell latency)
    /// override this.
    fn scatter_costs(
        &mut self,
        kind: AccessKind,
        offsets: &[u64],
        bytes_per_op: u64,
    ) -> Vec<SimDuration> {
        offsets
            .iter()
            .map(|&offset| self.access_cost(kind, offset, bytes_per_op))
            .collect()
    }

    /// Peak sequential bandwidth in bytes/second, for analytical models.
    fn sequential_bandwidth(&self, kind: AccessKind) -> f64;

    /// Forgets locality state (e.g. parks the head). Used between
    /// experiment phases.
    fn reset(&mut self);

    /// The model's internal locality state as plain words, for snapshots.
    /// Stateless models return an empty vector (the default); stateful
    /// models (HDD head position, page caches) must round-trip through
    /// [`restore_state_words`](Self::restore_state_words) so that a
    /// restored run charges byte-identical costs.
    fn state_words(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state previously captured by
    /// [`state_words`](Self::state_words). The default ignores the words
    /// (stateless models).
    fn restore_state_words(&mut self, _words: &[u64]) {}
}

/// Retry policy for transient store faults: capped exponential backoff,
/// charged in **simulated** time. Attempt `k` (0-based) that fails
/// transiently adds `min(base · 2^k, cap)` nanoseconds of backoff to the
/// access's cost; the trace still records exactly one event per logical
/// access, so retries are timing-only and leak nothing beyond what the
/// access itself already reveals (the same argument as timing-padded
/// cache hits — see the leakage battery's retry probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per store operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, simulated nanoseconds.
    pub base_nanos: u64,
    /// Backoff ceiling per retry, simulated nanoseconds.
    pub cap_nanos: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_nanos: 100_000,  // 100 µs
            cap_nanos: 5_000_000, // 5 ms
        }
    }
}

impl RetryPolicy {
    /// Backoff charged after failed attempt `attempt` (0-based).
    fn backoff_step(&self, attempt: u32) -> SimDuration {
        let scaled = self.base_nanos.saturating_mul(1u64 << attempt.min(20));
        SimDuration::from_nanos(scaled.min(self.cap_nanos))
    }
}

/// Counters of retry activity. Deliberately **not** part of
/// [`DeviceStats`] (and not persisted in snapshots — the format is
/// frozen); a restored device starts these at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Individual retries performed (attempts beyond the first).
    pub retries: u64,
    /// Total simulated backoff charged, nanoseconds.
    pub backoff_nanos: u64,
    /// Operations that exhausted every attempt and surfaced their error.
    pub exhausted: u64,
}

/// One element of a [`Device::read_scatter`] result: the block found at
/// the requested slot (if any) and the simulated cost attributed to that
/// command within the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterItem {
    /// The stored block, or `None` for an empty slot.
    pub block: Option<SealedBlock>,
    /// Simulated cost of this command (batch scheduling already applied).
    pub cost: SimDuration,
}

/// A simulated block device.
///
/// See the [module docs](self) for the design; see
/// [`crate::hierarchy::MemoryHierarchy`] for the standard two-device
/// (DRAM + HDD) experiment setup.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    name: String,
    timing: Box<dyn TimingModel>,
    store: Box<dyn DataStore>,
    stats: DeviceStats,
    trace: Option<AccessTrace>,
    clock: SimClock,
    /// Slot width in bytes used to map slot addresses to byte offsets and,
    /// when set, the charged size of every block access (payload scaling).
    charged_block_bytes: u64,
    /// Optional capacity bound in slots; `None` = unbounded.
    capacity_slots: Option<u64>,
    /// Optional block-cache tier(s) in front of the store. See
    /// [`crate::cache`]: hits are timing-padded (the trace event is
    /// recorded unconditionally with the same shape), never elided.
    cache: Option<BlockCache>,
    /// Transient-fault retry policy (see [`RetryPolicy`]).
    retry: RetryPolicy,
    /// Retry counters; volatile (never snapshotted).
    retry_stats: RetryStats,
    /// Test-battery fixture: when set, every retry records its own trace
    /// event, deliberately leaking the retry count into the trace shape.
    /// Exists so the leakage tests can prove they would catch a retry
    /// implementation that isn't timing-only. Never set in production
    /// paths.
    leaky_retry: bool,
}

impl Device {
    /// Default charged block size: the paper's 1 KB block.
    pub const DEFAULT_BLOCK_BYTES: u64 = 1024;

    /// Creates a device.
    ///
    /// `trace` may be shared across devices so one recorder observes the
    /// whole bus. The charged block size defaults to 1 KB; override with
    /// [`set_charged_block_bytes`](Self::set_charged_block_bytes).
    pub fn new(
        id: DeviceId,
        name: impl Into<String>,
        timing: Box<dyn TimingModel>,
        clock: SimClock,
        trace: Option<AccessTrace>,
    ) -> Self {
        Self::with_store(id, name, timing, clock, trace, Box::new(BlockStore::new()))
    }

    /// Creates a device over an explicit data store — the file-backed
    /// durable store, or any other [`DataStore`]. Timing, tracing, and
    /// accounting are identical regardless of where the bytes live; the
    /// store changes only durability (and host cost).
    pub fn with_store(
        id: DeviceId,
        name: impl Into<String>,
        timing: Box<dyn TimingModel>,
        clock: SimClock,
        trace: Option<AccessTrace>,
        store: Box<dyn DataStore>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            timing,
            store,
            stats: DeviceStats::default(),
            trace,
            clock,
            charged_block_bytes: Self::DEFAULT_BLOCK_BYTES,
            capacity_slots: None,
            cache: None,
            retry: RetryPolicy::default(),
            retry_stats: RetryStats::default(),
            leaky_retry: false,
        }
    }

    /// Installs a block cache (and optional middle tier) in front of the
    /// store, replacing any existing one. Residency starts empty; the
    /// cache warms from subsequent traffic ([`write_run`](Self::write_run)
    /// populates it write-through, random reads promote on miss).
    ///
    /// # Errors
    ///
    /// File-backed middle tiers propagate open errors.
    pub fn install_cache(&mut self, config: CacheConfig) -> Result<(), StorageError> {
        self.cache = Some(BlockCache::new(config)?);
        Ok(())
    }

    /// The installed cache's configuration, if any.
    pub fn cache_config(&self) -> Option<&CacheConfig> {
        self.cache.as_ref().map(|c| c.config())
    }

    /// The installed cache's counters, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The device identifier used in traces.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the logical block size charged per access (payload scaling).
    pub fn set_charged_block_bytes(&mut self, bytes: u64) {
        assert!(bytes > 0, "charged block size must be positive");
        self.charged_block_bytes = bytes;
    }

    /// The logical block size charged per access.
    pub fn charged_block_bytes(&self) -> u64 {
        self.charged_block_bytes
    }

    /// Bounds the device to `slots` block slots; accesses beyond return
    /// [`StorageError::OutOfCapacity`].
    pub fn set_capacity_slots(&mut self, slots: u64) {
        self.capacity_slots = Some(slots);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Sets the transient-fault retry policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts > 0, "at least one attempt is required");
        self.retry = policy;
    }

    /// The transient-fault retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Retry counters (volatile; not part of snapshots).
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Test fixture: leak each retry as its own trace event. See the
    /// field docs — this exists to prove the leakage battery catches a
    /// non-timing-only retry implementation.
    #[doc(hidden)]
    pub fn set_leaky_retry(&mut self, leaky: bool) {
        self.leaky_retry = leaky;
    }

    /// Replaces the backing store with `wrap(store)` — the seam for
    /// interposing an adapter (e.g. [`crate::fault::FaultyStore`])
    /// between a built device and its data.
    pub fn wrap_store(&mut self, wrap: impl FnOnce(Box<dyn DataStore>) -> Box<dyn DataStore>) {
        let inner = std::mem::replace(&mut self.store, Box::new(BlockStore::new()));
        self.store = wrap(inner);
    }

    /// Counters of injected faults, when the backing store is a
    /// [`crate::fault::FaultyStore`].
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.store.fault_stats()
    }

    /// Resets statistics and timing-model locality state. Cache
    /// *counters* reset too; cache *residency* is deliberately kept —
    /// benches reset accounting after warm-up precisely to measure the
    /// warm cache.
    pub fn reset_accounting(&mut self) {
        self.stats = DeviceStats::default();
        self.retry_stats = RetryStats::default();
        self.timing.reset();
        if let Some(cache) = &mut self.cache {
            cache.reset_stats();
            if let Some(mid_timing) = cache.mid_timing() {
                mid_timing.reset();
            }
        }
    }

    /// Number of blocks currently stored.
    pub fn stored_blocks(&self) -> usize {
        self.store.len()
    }

    /// Peak sequential bandwidth of the underlying model, bytes/second.
    pub fn sequential_bandwidth(&self, kind: AccessKind) -> f64 {
        self.timing.sequential_bandwidth(kind)
    }

    fn check_capacity(&self, addr: u64) -> Result<(), StorageError> {
        if let Some(cap) = self.capacity_slots {
            if addr >= cap {
                return Err(StorageError::OutOfCapacity {
                    device: self.name.clone(),
                    addr,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    fn record(&mut self, kind: AccessKind, addr: u64, bytes: u64, cost: SimDuration) {
        // Fold in latency the store injected since the last access (fault
        // simulation): spikes stretch the access's cost, never its shape.
        let injected = self.store.take_injected_latency_nanos();
        let cost = cost + SimDuration::from_nanos(injected);
        self.stats.record(kind, bytes, cost);
        if let Some(trace) = &self.trace {
            trace.record(TraceEvent {
                at: self.clock.now(),
                device: self.id,
                kind,
                addr,
                bytes,
            });
        }
    }

    /// Runs `op` against the store, retrying transient faults under the
    /// device's [`RetryPolicy`]. Returns the result plus the simulated
    /// backoff accrued, which the caller folds into the access's recorded
    /// cost — retries never add trace events (unless the `leaky_retry`
    /// fixture is armed), so the adversary-visible shape is that of a
    /// single access that took longer.
    fn with_store_retry<T>(
        &mut self,
        kind: AccessKind,
        addr: u64,
        bytes: u64,
        mut op: impl FnMut(&mut dyn DataStore) -> Result<T, StorageError>,
    ) -> Result<(T, SimDuration), StorageError> {
        let policy = self.retry;
        let mut backoff = SimDuration::ZERO;
        let mut attempt: u32 = 0;
        loop {
            match op(&mut *self.store) {
                Ok(value) => {
                    self.note_retries(kind, addr, bytes, attempt, backoff, false);
                    return Ok((value, backoff));
                }
                Err(e) if e.is_transient() && attempt + 1 < policy.max_attempts => {
                    backoff += policy.backoff_step(attempt);
                    attempt += 1;
                }
                Err(e) => {
                    self.note_retries(kind, addr, bytes, attempt, backoff, e.is_transient());
                    return Err(e);
                }
            }
        }
    }

    /// Writes `block` to the store with transient-fault retries, returning
    /// the accrued backoff. Stores that declare fault potential
    /// ([`DataStore::can_fault`]) cost one clone per attempt so the
    /// payload survives a consumed-but-failed `put`; honest stores keep
    /// the zero-copy path.
    fn put_with_retry(
        &mut self,
        addr: u64,
        block: SealedBlock,
    ) -> Result<SimDuration, StorageError> {
        if !self.store.can_fault() {
            self.store.put(addr, block)?;
            return Ok(SimDuration::ZERO);
        }
        let bytes = self.charged_block_bytes;
        let ((), backoff) = self.with_store_retry(AccessKind::Write, addr, bytes, |s| {
            s.put(addr, block.clone())
        })?;
        Ok(backoff)
    }

    /// Books retry activity into the volatile counters; under the
    /// `leaky_retry` fixture, also emits one trace event per retry —
    /// exactly the shape change an unsafe implementation would exhibit.
    fn note_retries(
        &mut self,
        kind: AccessKind,
        addr: u64,
        bytes: u64,
        retries: u32,
        backoff: SimDuration,
        exhausted: bool,
    ) {
        if retries == 0 && !exhausted {
            return;
        }
        self.retry_stats.retries += u64::from(retries);
        self.retry_stats.backoff_nanos += backoff.as_nanos();
        if exhausted {
            self.retry_stats.exhausted += 1;
        }
        if self.leaky_retry {
            if let Some(trace) = &self.trace {
                for _ in 0..retries {
                    trace.record(TraceEvent {
                        at: self.clock.now(),
                        device: self.id,
                        kind,
                        addr,
                        bytes,
                    });
                }
            }
        }
    }

    /// Reads the sealed block at slot `addr`, charging one random-capable
    /// access.
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingBlock`] if the slot is empty,
    /// [`StorageError::OutOfCapacity`] if beyond a configured capacity.
    pub fn read_block(&mut self, addr: u64) -> Result<SealedBlock, StorageError> {
        self.check_capacity(addr)?;
        let bytes = self.charged_block_bytes;
        match self.cache.as_ref().map(|c| c.probe(addr)) {
            Some(ReadTier::Ram) => {
                let cache = self.cache.as_mut().expect("probed");
                let block = cache.serve_ram(addr);
                let cost = cache.hit_cost();
                let leaky = cache.leaky_hits();
                if !leaky {
                    self.record(AccessKind::Read, addr, bytes, cost);
                }
                return Ok(block);
            }
            Some(ReadTier::Mid) => {
                let cache = self.cache.as_mut().expect("probed");
                let block = cache.serve_mid(addr);
                let cost = cache
                    .mid_timing()
                    .expect("mid hit requires a mid tier")
                    .access_cost(AccessKind::Read, addr * bytes, bytes);
                self.record(AccessKind::Read, addr, bytes, cost);
                return Ok(block);
            }
            Some(ReadTier::Cold) => self.cache.as_mut().expect("probed").note_miss(),
            None => {}
        }
        let (fetched, backoff) =
            self.with_store_retry(AccessKind::Read, addr, bytes, |s| s.get(addr))?;
        let block = fetched.ok_or_else(|| StorageError::MissingBlock {
            device: self.name.clone(),
            addr,
        })?;
        if let Some(cache) = &mut self.cache {
            cache.promote_cold(addr, &block, &mut *self.store)?;
        }
        let cost = self
            .timing
            .access_cost(AccessKind::Read, addr * bytes, bytes);
        self.record(AccessKind::Read, addr, bytes, cost + backoff);
        Ok(block)
    }

    /// Writes `block` to slot `addr`, charging one random-capable access.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfCapacity`] if beyond a configured capacity.
    pub fn write_block(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        self.check_capacity(addr)?;
        let bytes = self.charged_block_bytes;
        // The cold cost is computed in both paths: the write eventually
        // lands on the device, so its timing model must see the command
        // (head/locality state advances identically).
        let cold_cost = self
            .timing
            .access_cost(AccessKind::Write, addr * bytes, bytes);
        let cost = if let Some(cache) = &mut self.cache {
            // Write-back absorb: the cache becomes the authority; the
            // caller pays the DRAM copy plus the synchronous fraction of
            // the cold write, the rest being flushed in the background
            // (eviction/sync move the data without further charge).
            cache.absorb_write(addr, block, &mut *self.store)?;
            let sync_nanos =
                (cold_cost.as_nanos() as f64 * cache.writeback_sync_fraction()).round() as u64;
            cache.hit_cost() + SimDuration::from_nanos(sync_nanos)
        } else {
            cold_cost + self.put_with_retry(addr, block)?
        };
        self.record(AccessKind::Write, addr, bytes, cost);
        Ok(())
    }

    /// Reads the sealed blocks at the given slots as **one queued batch**:
    /// the device sees all commands at once and schedules them internally
    /// (see [`TimingModel::scatter_costs`]), so the per-op overhead
    /// coalesces. Observably identical to issuing
    /// [`read_block`](Self::read_block) per slot in the same order — the
    /// trace records one event per slot, in submission order, with the
    /// same addresses and byte counts — only the simulated costs shrink.
    /// Empty slots yield `None` (they still pay and trace their access).
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfCapacity`] if any slot is beyond a configured
    /// capacity (checked before any access is charged).
    pub fn read_scatter(&mut self, addrs: &[u64]) -> Result<Vec<ScatterItem>, StorageError> {
        if addrs.is_empty() {
            return Ok(Vec::new());
        }
        for &addr in addrs {
            self.check_capacity(addr)?;
        }
        let bytes = self.charged_block_bytes;
        if self.cache.is_some() {
            return self.read_scatter_cached(addrs, bytes);
        }
        let offsets: Vec<u64> = addrs.iter().map(|&addr| addr * bytes).collect();
        let costs = self.timing.scatter_costs(AccessKind::Read, &offsets, bytes);
        let mut out = Vec::with_capacity(addrs.len());
        for (&addr, base_cost) in addrs.iter().zip(costs) {
            let (block, backoff) =
                self.with_store_retry(AccessKind::Read, addr, bytes, |s| s.get(addr))?;
            let cost = base_cost + backoff;
            self.record(AccessKind::Read, addr, bytes, cost);
            out.push(ScatterItem { block, cost });
        }
        Ok(out)
    }

    /// The cached half of [`read_scatter`](Self::read_scatter): the batch
    /// splits into per-tier sub-batches — RAM hits at the flat hit cost,
    /// middle-tier hits through the tier's own queued-batch timing, cold
    /// misses through the device's — while the *recorded* op sequence
    /// stays exactly the uncached one: one event per slot, in submission
    /// order, same addresses and byte counts. Only the attributed costs
    /// change; see [`crate::cache`] for the obliviousness argument.
    fn read_scatter_cached(
        &mut self,
        addrs: &[u64],
        bytes: u64,
    ) -> Result<Vec<ScatterItem>, StorageError> {
        let cache = self.cache.as_mut().expect("caller checked");
        let tiers: Vec<ReadTier> = addrs.iter().map(|&a| cache.probe(a)).collect();
        let leaky = cache.leaky_hits();
        let hit_cost = cache.hit_cost();

        // Each tier prices its own sub-batch as the command sequence that
        // tier actually receives, in submission order.
        let mid_offsets: Vec<u64> = addrs
            .iter()
            .zip(&tiers)
            .filter(|(_, t)| **t == ReadTier::Mid)
            .map(|(&a, _)| a * bytes)
            .collect();
        let mut mid_costs = if mid_offsets.is_empty() {
            Vec::new()
        } else {
            cache
                .mid_timing()
                .expect("mid hits require a mid tier")
                .scatter_costs(AccessKind::Read, &mid_offsets, bytes)
        }
        .into_iter();
        // Serve upper-tier hits *before* any cold promotion can evict a
        // planned hit out from under the batch.
        let mut blocks: Vec<Option<SealedBlock>> = addrs
            .iter()
            .zip(&tiers)
            .map(|(&addr, tier)| match tier {
                ReadTier::Ram => Some(cache.serve_ram(addr)),
                ReadTier::Mid => Some(cache.serve_mid(addr)),
                ReadTier::Cold => None,
            })
            .collect();
        let cold_offsets: Vec<u64> = addrs
            .iter()
            .zip(&tiers)
            .filter(|(_, t)| **t == ReadTier::Cold)
            .map(|(&a, _)| a * bytes)
            .collect();
        let mut cold_costs = self
            .timing
            .scatter_costs(AccessKind::Read, &cold_offsets, bytes)
            .into_iter();
        let mut backoffs = vec![SimDuration::ZERO; addrs.len()];
        for (i, (&addr, tier)) in addrs.iter().zip(&tiers).enumerate() {
            if *tier == ReadTier::Cold {
                self.cache.as_mut().expect("caller checked").note_miss();
                let (got, backoff) =
                    self.with_store_retry(AccessKind::Read, addr, bytes, |s| s.get(addr))?;
                backoffs[i] = backoff;
                if let Some(block) = got {
                    let cache = self.cache.as_mut().expect("caller checked");
                    cache.promote_cold(addr, &block, &mut *self.store)?;
                    blocks[i] = Some(block);
                }
            }
        }
        let mut out = Vec::with_capacity(addrs.len());
        for (i, ((&addr, tier), block)) in addrs.iter().zip(&tiers).zip(blocks).enumerate() {
            let cost = match tier {
                ReadTier::Ram => hit_cost,
                ReadTier::Mid => mid_costs.next().expect("one cost per mid op"),
                ReadTier::Cold => cold_costs.next().expect("one cost per cold op") + backoffs[i],
            };
            if !(leaky && *tier == ReadTier::Ram) {
                self.record(AccessKind::Read, addr, bytes, cost);
            }
            out.push(ScatterItem { block, cost });
        }
        Ok(out)
    }

    /// Writes `(slot, block)` pairs as one queued batch — the vectored
    /// counterpart of [`read_scatter`](Self::read_scatter), for writers
    /// whose targets are discontiguous (in-place update protocols,
    /// write-back caches). H-ORAM's own shuffle writes whole partitions
    /// and uses the cheaper streaming [`write_run`](Self::write_run)
    /// instead.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfCapacity`] if any slot is beyond a configured
    /// capacity (checked before any write lands).
    pub fn write_scatter(&mut self, writes: Vec<(u64, SealedBlock)>) -> Result<(), StorageError> {
        if writes.is_empty() {
            return Ok(());
        }
        for (addr, _) in &writes {
            self.check_capacity(*addr)?;
        }
        let bytes = self.charged_block_bytes;
        let offsets: Vec<u64> = writes.iter().map(|(addr, _)| addr * bytes).collect();
        // The cold timing model sees the full command batch in both
        // paths — every write eventually lands on the device.
        let costs = self
            .timing
            .scatter_costs(AccessKind::Write, &offsets, bytes);
        let absorb = self
            .cache
            .as_ref()
            .map(|c| (c.hit_cost(), c.writeback_sync_fraction()));
        for ((addr, block), cold_cost) in writes.into_iter().zip(costs) {
            let cost = if let Some((hit_cost, fraction)) = absorb {
                let cache = self.cache.as_mut().expect("probed");
                cache.absorb_write(addr, block, &mut *self.store)?;
                let sync_nanos = (cold_cost.as_nanos() as f64 * fraction).round() as u64;
                hit_cost + SimDuration::from_nanos(sync_nanos)
            } else {
                cold_cost + self.put_with_retry(addr, block)?
            };
            self.record(AccessKind::Write, addr, bytes, cost);
        }
        Ok(())
    }

    /// Removes and returns the block at `addr` without charging time
    /// (used by shuffle logic that has already paid for a streaming read).
    ///
    /// # Errors
    ///
    /// Backend errors propagate (transient faults are retried first).
    pub fn take_block(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        // The cache is the authority for slots it holds dirty; either way
        // every tier's copy must go.
        let dirty = self.cache.as_mut().and_then(|c| c.invalidate(addr));
        let bytes = self.charged_block_bytes;
        let (stored, _) =
            self.with_store_retry(AccessKind::Read, addr, bytes, |s| s.remove(addr))?;
        Ok(dirty.or(stored))
    }

    /// Looks at the block at `addr` without charging time or tracing.
    ///
    /// This is a *simulator-internal* peek (e.g. for assertions); protocol
    /// code must use [`read_block`](Self::read_block). Returns an owned
    /// clone (file-backed stores cannot hand out references).
    ///
    /// # Errors
    ///
    /// Backend errors propagate (transient faults are retried first).
    pub fn peek_block(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        if let Some(block) = self.cache.as_ref().and_then(|c| c.peek(addr)) {
            return Ok(Some(block.clone()));
        }
        let bytes = self.charged_block_bytes;
        let (block, _) = self.with_store_retry(AccessKind::Read, addr, bytes, |s| s.get(addr))?;
        Ok(block)
    }

    /// Reads `count` consecutive slots starting at `start` as one streaming
    /// run: a single seek, then sequential transfer. Empty slots yield
    /// `None` entries (the run still pays full transfer time, exactly like
    /// reading a raw region).
    pub fn read_run(
        &mut self,
        start: u64,
        count: u64,
    ) -> Result<Vec<Option<SealedBlock>>, StorageError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.check_capacity(start + count - 1)?;
        // Merge the cache's dirty copies over the stored run: the cache is
        // the authority for slots it absorbed write-back.
        let slot_bytes = self.charged_block_bytes;
        let mut backoff_total = SimDuration::ZERO;
        let mut blocks: Vec<Option<SealedBlock>> = Vec::with_capacity(count as usize);
        for a in start..start + count {
            if let Some(dirty) = self.cache.as_ref().and_then(|c| c.dirty_copy(a)) {
                blocks.push(Some(dirty.clone()));
                continue;
            }
            let (got, backoff) =
                self.with_store_retry(AccessKind::Read, a, slot_bytes, |s| s.get(a))?;
            backoff_total += backoff;
            blocks.push(got);
        }
        let bytes = self.charged_block_bytes * count;
        let cost =
            self.timing
                .streaming_cost(AccessKind::Read, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Read, start, bytes, cost + backoff_total);
        Ok(blocks)
    }

    /// Reads `count` consecutive slots starting at `start` as one
    /// streaming run, **removing** the blocks from the store — identical
    /// charge and trace to [`read_run`](Self::read_run), but the caller
    /// takes ownership of the stored blocks without a clone. The shuffle
    /// uses this: every taken slot is rewritten before the pass ends.
    ///
    /// # Errors
    ///
    /// As [`read_run`](Self::read_run).
    pub fn take_run(
        &mut self,
        start: u64,
        count: u64,
    ) -> Result<Vec<Option<SealedBlock>>, StorageError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.check_capacity(start + count - 1)?;
        // Taking a slot removes every tier's copy; the cache's dirty copy
        // (when it holds one) is the authoritative value handed back.
        let slot_bytes = self.charged_block_bytes;
        let mut backoff_total = SimDuration::ZERO;
        let mut blocks: Vec<Option<SealedBlock>> = Vec::with_capacity(count as usize);
        for a in start..start + count {
            let dirty = self.cache.as_mut().and_then(|c| c.invalidate(a));
            let (stored, backoff) =
                self.with_store_retry(AccessKind::Read, a, slot_bytes, |s| s.remove(a))?;
            backoff_total += backoff;
            blocks.push(dirty.or(stored));
        }
        let bytes = self.charged_block_bytes * count;
        let cost =
            self.timing
                .streaming_cost(AccessKind::Read, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Read, start, bytes, cost + backoff_total);
        Ok(blocks)
    }

    /// Writes `blocks` to consecutive slots starting at `start` as one
    /// streaming run. Accepts any exact-size iterator, so sealing
    /// pipelines can stream blocks in without materializing an extra
    /// vector.
    pub fn write_run<I>(&mut self, start: u64, blocks: I) -> Result<(), StorageError>
    where
        I: IntoIterator<Item = SealedBlock>,
        I::IntoIter: ExactSizeIterator,
    {
        let blocks = blocks.into_iter();
        let count = blocks.len() as u64;
        if count == 0 {
            return Ok(());
        }
        self.check_capacity(start + count - 1)?;
        // Streaming runs are write-*through*: the store is updated
        // immediately (shuffle rebuilds make cold storage authoritative),
        // and the cache keeps clean copies of the run — this population
        // is exactly where next period's hits come from, since the
        // once-per-period invariant means a promoted random read is never
        // re-read before the next shuffle rewrites it.
        let mut backoff_total = SimDuration::ZERO;
        for (i, block) in blocks.enumerate() {
            let addr = start + i as u64;
            if let Some(cache) = &mut self.cache {
                cache.populate(addr, block.clone(), &mut *self.store)?;
            }
            backoff_total += self.put_with_retry(addr, block)?;
        }
        let bytes = self.charged_block_bytes * count;
        let cost =
            self.timing
                .streaming_cost(AccessKind::Write, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Write, start, bytes, cost + backoff_total);
        Ok(())
    }

    /// Charges an access of `bytes` at slot `addr` without touching data.
    ///
    /// Protocols use this for accesses whose data movement is modelled
    /// elsewhere (e.g. dummy reads that discard their result).
    pub fn charge(&mut self, kind: AccessKind, addr: u64, bytes: u64) -> SimDuration {
        let cost = self
            .timing
            .access_cost(kind, addr * self.charged_block_bytes, bytes);
        self.record(kind, addr, bytes, cost);
        cost
    }

    /// Drops all stored blocks, in every cache tier and the store (data
    /// only; stats and timing state remain).
    ///
    /// # Errors
    ///
    /// Backend I/O errors propagate.
    pub fn clear(&mut self) -> Result<(), StorageError> {
        if let Some(cache) = &mut self.cache {
            cache.clear();
        }
        self.store.clear()
    }

    /// Whether the underlying store survives process exit (file-backed).
    pub fn is_durable(&self) -> bool {
        self.store.durable()
    }

    /// Durability barrier: flushes and commits the underlying store
    /// (no-op for volatile stores). Checkpoints call this before sealing
    /// the trusted-state snapshot, so the on-disk image a recovery adopts
    /// is exactly the one the snapshot describes.
    ///
    /// # Errors
    ///
    /// Backend I/O errors propagate.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if let Some(cache) = &mut self.cache {
            cache.flush(&mut *self.store)?;
        }
        // Sync is not a traced access; the backoff is dropped (checkpoint
        // time is not part of the serving-time model).
        let ((), _backoff) = self.with_store_retry(AccessKind::Write, 0, 0, |s| s.sync())?;
        Ok(())
    }

    /// Keyed fingerprint over the store's full logical contents (slot
    /// order), used to pin a snapshot to the exact device image it was
    /// taken against. The key is fixed and non-secret — this is an
    /// integrity cross-check between two locally produced artifacts, not
    /// an authenticator (the blocks are already sealed).
    fn store_fingerprint(&mut self) -> Result<u64, StorageError> {
        let mut blocks = self.store.snapshot_blocks()?;
        blocks.sort_unstable_by_key(|(addr, _)| *addr);
        let mut mac = oram_crypto::siphash::SipHash24::new(b"horam-dev-fngrpt");
        mac.write_u64(blocks.len() as u64);
        for (addr, block) in blocks {
            mac.write_u64(addr);
            mac.write_u64(block.block_id());
            mac.write_u64(block.epoch());
            mac.write_u64(block.tag());
            mac.write_u64(block.ciphertext().len() as u64);
            mac.write(block.ciphertext());
        }
        Ok(mac.finish())
    }

    /// Serializes the device's mutable state: statistics, timing-model
    /// locality state, and — for volatile stores only — the stored
    /// blocks. Durable stores persist their own data; the snapshot
    /// records their occupancy count and a content fingerprint, so a
    /// restore against a device file from a *different* checkpoint fails
    /// closed instead of adopting mismatched state.
    ///
    /// # Errors
    ///
    /// Backend I/O errors propagate.
    pub fn save_state(&mut self, w: &mut StateWriter) -> Result<(), StorageError> {
        // Flush the cache's dirty blocks first, so the store contents the
        // snapshot embeds (or fingerprints) already include every
        // absorbed write — the cache section then only needs residency
        // metadata, never block bytes.
        if let Some(cache) = &mut self.cache {
            cache.flush(&mut *self.store)?;
        }
        let stats = self.stats;
        w.put_u64(stats.reads);
        w.put_u64(stats.writes);
        w.put_u64(stats.bytes_read);
        w.put_u64(stats.bytes_written);
        w.put_u64(stats.busy.as_nanos());
        w.put_u64(stats.busy_read.as_nanos());
        w.put_u64(stats.busy_write.as_nanos());
        let words = self.timing.state_words();
        w.put_usize(words.len());
        for word in words {
            w.put_u64(word);
        }
        w.put_u64(self.charged_block_bytes);
        w.put_bool(self.store.durable());
        if self.store.durable() {
            w.put_usize(self.store.len());
            w.put_u64(self.store_fingerprint()?);
        } else {
            let blocks = self.store.snapshot_blocks()?;
            w.put_usize(blocks.len());
            for (addr, block) in blocks {
                w.put_u64(addr);
                w.put_u64(block.block_id());
                w.put_u64(block.epoch());
                w.put_u64(block.tag());
                w.put_bytes(block.ciphertext());
            }
        }
        w.put_bool(self.cache.is_some());
        if let Some(cache) = &self.cache {
            cache.save_state(w);
        }
        Ok(())
    }

    /// Restores state captured by [`save_state`](Self::save_state) onto a
    /// freshly built device of the same shape. For durable stores the
    /// on-disk contents are adopted as-is, after the occupancy count
    /// *and* content fingerprint are verified against the snapshot — a
    /// device file committed at a different checkpoint than the snapshot
    /// (e.g. restoring an old snapshot over a file whose journal rolled
    /// back to a newer sync) is rejected here; for volatile stores the
    /// snapshot's blocks replace the store contents.
    ///
    /// # Errors
    ///
    /// [`PersistError`] for malformed snapshots or a durability/occupancy
    /// mismatch between snapshot and device.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), PersistError> {
        let stats = DeviceStats {
            reads: r.get_u64()?,
            writes: r.get_u64()?,
            bytes_read: r.get_u64()?,
            bytes_written: r.get_u64()?,
            busy: SimDuration::from_nanos(r.get_u64()?),
            busy_read: SimDuration::from_nanos(r.get_u64()?),
            busy_write: SimDuration::from_nanos(r.get_u64()?),
        };
        let word_count = r.get_usize()?;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(r.get_u64()?);
        }
        let charged = r.get_u64()?;
        let durable = r.get_bool()?;
        if durable != self.store.durable() {
            return Err(PersistError::Malformed(format!(
                "snapshot taken on a {} store, restoring onto a {} one",
                if durable { "durable" } else { "volatile" },
                if self.store.durable() {
                    "durable"
                } else {
                    "volatile"
                },
            )));
        }
        if durable {
            let expected = r.get_usize()?;
            let expected_fingerprint = r.get_u64()?;
            if self.store.len() != expected {
                return Err(PersistError::Malformed(format!(
                    "durable store holds {} blocks, snapshot expects {expected} \
                     (device file does not match the snapshot's checkpoint)",
                    self.store.len()
                )));
            }
            let fingerprint = self
                .store_fingerprint()
                .map_err(|e| PersistError::Malformed(format!("fingerprinting store: {e}")))?;
            if fingerprint != expected_fingerprint {
                return Err(PersistError::Malformed(
                    "durable store contents do not match the snapshot's checkpoint \
                     (the device file was committed at a different sync point)"
                        .to_string(),
                ));
            }
        } else {
            let count = r.get_usize()?;
            let mut blocks = Vec::with_capacity(count);
            for _ in 0..count {
                let addr = r.get_u64()?;
                let block_id = r.get_u64()?;
                let epoch = r.get_u64()?;
                let tag = r.get_u64()?;
                let body = r.get_bytes()?.to_vec();
                blocks.push((addr, SealedBlock::from_parts(block_id, epoch, body, tag)));
            }
            self.store
                .install_blocks(blocks)
                .map_err(|e| PersistError::Malformed(format!("installing blocks: {e}")))?;
        }
        let has_cache = r.get_bool()?;
        if has_cache != self.cache.is_some() {
            return Err(PersistError::Malformed(format!(
                "snapshot taken with a cache {}, restoring onto a device {} one",
                if has_cache { "installed" } else { "absent" },
                if self.cache.is_some() {
                    "with"
                } else {
                    "without"
                },
            )));
        }
        // Temporarily take the cache so it can repopulate from the store
        // without aliasing `self`.
        if let Some(mut cache) = self.cache.take() {
            let result = cache.load_state(r, &mut *self.store);
            self.cache = Some(cache);
            result?;
        }
        self.stats = stats;
        self.timing.restore_state_words(&words);
        self.charged_block_bytes = charged;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramModel;
    use crate::hdd::HddModel;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([1u8; 32]).derive("dev-test", 0))
    }

    fn dram_device(trace: Option<AccessTrace>) -> Device {
        Device::new(
            DeviceId(1),
            "dram",
            Box::new(DramModel::ddr4_2133()),
            SimClock::new(),
            trace,
        )
    }

    #[test]
    fn read_back_what_was_written() {
        let mut dev = dram_device(None);
        let sealed = sealer().seal(7, 0, b"contents");
        dev.write_block(7, sealed.clone()).unwrap();
        assert_eq!(dev.read_block(7).unwrap(), sealed);
        assert_eq!(dev.stored_blocks(), 1);
    }

    #[test]
    fn missing_block_errors() {
        let mut dev = dram_device(None);
        assert!(matches!(
            dev.read_block(3),
            Err(StorageError::MissingBlock { addr: 3, .. })
        ));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut dev = dram_device(None);
        dev.set_capacity_slots(4);
        let sealed = sealer().seal(4, 0, b"x");
        assert!(matches!(
            dev.write_block(4, sealed),
            Err(StorageError::OutOfCapacity {
                addr: 4,
                capacity: 4,
                ..
            })
        ));
    }

    #[test]
    fn stats_accumulate_reads_and_writes() {
        let mut dev = dram_device(None);
        dev.write_block(0, sealer().seal(0, 0, b"a")).unwrap();
        dev.read_block(0).unwrap();
        dev.read_block(0).unwrap();
        let stats = dev.stats();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.bytes_read, 2 * Device::DEFAULT_BLOCK_BYTES);
        assert!(stats.busy > SimDuration::ZERO);
    }

    #[test]
    fn trace_records_bus_view() {
        let trace = AccessTrace::new();
        let mut dev = dram_device(Some(trace.clone()));
        dev.write_block(5, sealer().seal(5, 0, b"abc")).unwrap();
        dev.read_block(5).unwrap();
        let events = trace.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, AccessKind::Write);
        assert_eq!(events[0].addr, 5);
        assert_eq!(events[1].kind, AccessKind::Read);
    }

    #[test]
    fn charged_bytes_scale_timing_not_data() {
        let mut small = dram_device(None);
        let mut big = dram_device(None);
        big.set_charged_block_bytes(64 * 1024);
        let sealed = sealer().seal(0, 0, b"tiny");
        small.write_block(0, sealed.clone()).unwrap();
        big.write_block(0, sealed).unwrap();
        assert!(big.stats().busy > small.stats().busy);
        assert_eq!(
            big.read_block(0).unwrap().ciphertext(),
            small.read_block(0).unwrap().ciphertext()
        );
    }

    #[test]
    fn streaming_run_is_cheaper_than_random_on_hdd() {
        let mk_hdd = || {
            Device::new(
                DeviceId(0),
                "hdd",
                Box::new(HddModel::paper_calibrated()),
                SimClock::new(),
                None,
            )
        };
        let mut random = mk_hdd();
        let mut streaming = mk_hdd();
        let s = sealer();
        for addr in 0..64u64 {
            random
                .write_block(addr * 97 % 64, s.seal(addr, 0, b"d"))
                .unwrap();
        }
        streaming
            .write_run(0, (0..64).map(|a| s.seal(a, 0, b"d")).collect::<Vec<_>>())
            .unwrap();
        assert!(
            streaming.stats().busy.as_nanos() * 5 < random.stats().busy.as_nanos(),
            "streaming {} vs random {}",
            streaming.stats().busy,
            random.stats().busy
        );
    }

    #[test]
    fn read_run_returns_gaps_as_none() {
        let mut dev = dram_device(None);
        dev.write_block(2, sealer().seal(2, 0, b"x")).unwrap();
        let run = dev.read_run(0, 4).unwrap();
        assert_eq!(run.len(), 4);
        assert!(run[0].is_none() && run[1].is_none() && run[3].is_none());
        assert!(run[2].is_some());
    }

    #[test]
    fn empty_runs_are_free() {
        let mut dev = dram_device(None);
        assert!(dev.read_run(0, 0).unwrap().is_empty());
        dev.write_run(9, Vec::new()).unwrap();
        assert_eq!(dev.stats().reads + dev.stats().writes, 0);
    }

    fn hdd_device() -> Device {
        Device::new(
            DeviceId(0),
            "hdd",
            Box::new(HddModel::paper_calibrated()),
            SimClock::new(),
            None,
        )
    }

    #[test]
    fn read_scatter_trace_and_counts_match_sequential_reads() {
        let s = sealer();
        let addrs: Vec<u64> = vec![9, 3, 27, 14];
        let build = |trace: AccessTrace| {
            let mut dev = Device::new(
                DeviceId(0),
                "hdd",
                Box::new(HddModel::paper_calibrated()),
                SimClock::new(),
                Some(trace),
            );
            for &a in &addrs {
                dev.write_block(a, s.seal(a, 0, b"x")).unwrap();
            }
            dev.reset_accounting();
            dev
        };
        let seq_trace = AccessTrace::new();
        let mut sequential = build(seq_trace.clone());
        seq_trace.clear();
        let seq_blocks: Vec<SealedBlock> = addrs
            .iter()
            .map(|&a| sequential.read_block(a).unwrap())
            .collect();

        let bat_trace = AccessTrace::new();
        let mut batched = build(bat_trace.clone());
        bat_trace.clear();
        let bat_items = batched.read_scatter(&addrs).unwrap();

        // Identical adversary view: same events, same order (timestamps
        // aside — the shared clock is advanced by the caller).
        let strip = |t: &AccessTrace| {
            t.snapshot()
                .into_iter()
                .map(|e| (e.device, e.kind, e.addr, e.bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&seq_trace), strip(&bat_trace));
        // Identical data and op/byte accounting.
        let bat_blocks: Vec<SealedBlock> =
            bat_items.into_iter().map(|i| i.block.unwrap()).collect();
        assert_eq!(seq_blocks, bat_blocks);
        assert_eq!(sequential.stats().reads, batched.stats().reads);
        assert_eq!(sequential.stats().bytes_read, batched.stats().bytes_read);
        // Strictly cheaper in simulated time (queued scheduling).
        assert!(batched.stats().busy < sequential.stats().busy);
    }

    #[test]
    fn write_scatter_stores_and_is_cheaper_than_sequential_on_hdd() {
        let s = sealer();
        let writes: Vec<(u64, SealedBlock)> = (0..32u64)
            .map(|i| (i * 97 % 64, s.seal(i, 0, b"w")))
            .collect();
        let mut sequential = hdd_device();
        for (a, b) in writes.clone() {
            sequential.write_block(a, b).unwrap();
        }
        let mut batched = hdd_device();
        batched.write_scatter(writes.clone()).unwrap();
        for (a, b) in &writes {
            assert_eq!(batched.peek_block(*a).unwrap().as_ref(), Some(b));
        }
        assert_eq!(batched.stats().writes, sequential.stats().writes);
        assert!(batched.stats().busy < sequential.stats().busy);
    }

    #[test]
    fn scatter_on_empty_input_is_free() {
        let mut dev = dram_device(None);
        assert!(dev.read_scatter(&[]).unwrap().is_empty());
        dev.write_scatter(Vec::new()).unwrap();
        assert_eq!(dev.stats().ops(), 0);
    }

    #[test]
    fn scatter_capacity_checked_before_any_charge() {
        let mut dev = dram_device(None);
        dev.set_capacity_slots(4);
        assert!(matches!(
            dev.read_scatter(&[1, 9]),
            Err(StorageError::OutOfCapacity { addr: 9, .. })
        ));
        assert_eq!(dev.stats().ops(), 0);
    }

    #[test]
    fn take_run_charges_like_read_run_and_removes() {
        let s = sealer();
        let mut reader = dram_device(None);
        let mut taker = dram_device(None);
        for dev in [&mut reader, &mut taker] {
            for a in 0..4u64 {
                dev.write_block(a, s.seal(a, 0, b"r")).unwrap();
            }
            dev.reset_accounting();
        }
        let read = reader.read_run(0, 4).unwrap();
        let taken = taker.take_run(0, 4).unwrap();
        assert_eq!(read, taken);
        assert_eq!(reader.stats(), taker.stats());
        assert_eq!(reader.stored_blocks(), 4, "read_run clones");
        assert_eq!(taker.stored_blocks(), 0, "take_run removes");
        assert!(taker.take_run(0, 0).unwrap().is_empty());
    }

    #[test]
    fn charge_records_without_data() {
        let mut dev = dram_device(None);
        let cost = dev.charge(AccessKind::Read, 11, 1024);
        assert!(cost > SimDuration::ZERO);
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stored_blocks(), 0);
    }

    #[test]
    fn reset_accounting_clears_stats_but_not_data() {
        let mut dev = dram_device(None);
        dev.write_block(0, sealer().seal(0, 0, b"keep")).unwrap();
        dev.reset_accounting();
        assert_eq!(dev.stats().writes, 0);
        assert_eq!(dev.stored_blocks(), 1);
    }

    use crate::fault::{FaultConfig, FaultyStore};

    /// Builds a traced HDD device pre-loaded with `blocks` addresses, then
    /// interposes the given fault schedule and clears all accounting so
    /// only the faulted phase is observed.
    fn faulted_device(trace: AccessTrace, config: FaultConfig, blocks: u64) -> Device {
        let s = sealer();
        let mut dev = Device::new(
            DeviceId(0),
            "hdd",
            Box::new(HddModel::paper_calibrated()),
            SimClock::new(),
            Some(trace.clone()),
        );
        for a in 0..blocks {
            dev.write_block(a, s.seal(a, 0, b"r")).unwrap();
        }
        dev.wrap_store(|inner| Box::new(FaultyStore::new(inner, config)));
        dev.reset_accounting();
        trace.clear();
        dev
    }

    fn strip(trace: &AccessTrace) -> Vec<(DeviceId, AccessKind, u64, u64)> {
        trace
            .snapshot()
            .into_iter()
            .map(|e| (e.device, e.kind, e.addr, e.bytes))
            .collect()
    }

    #[test]
    fn transient_faults_are_retried_and_charged_as_backoff() {
        let trace = AccessTrace::new();
        // 20% fault rate, 8 attempts: the chance of any of 64 reads
        // exhausting is negligible, and the run is seeded/deterministic.
        let mut dev = faulted_device(trace, FaultConfig::transient(11, 200), 64);
        dev.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        });
        for a in 0..64u64 {
            dev.read_block(a).unwrap();
        }
        let rs = dev.retry_stats();
        assert!(rs.retries > 0, "seed 11 at 20% must fault at least once");
        assert!(rs.backoff_nanos > 0);
        assert_eq!(rs.exhausted, 0);
        // Backoff is charged into device busy time.
        let clean = faulted_device(AccessTrace::new(), FaultConfig::default(), 64);
        let mut clean = clean;
        for a in 0..64u64 {
            clean.read_block(a).unwrap();
        }
        assert_eq!(
            dev.stats().busy.as_nanos(),
            clean.stats().busy.as_nanos() + rs.backoff_nanos
        );
    }

    #[test]
    fn retry_trace_shape_matches_fault_free_run() {
        let clean_trace = AccessTrace::new();
        let mut clean = faulted_device(clean_trace.clone(), FaultConfig::default(), 32);
        let faulty_trace = AccessTrace::new();
        let mut faulty = faulted_device(faulty_trace.clone(), FaultConfig::transient(7, 200), 32);
        faulty.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        });
        let s = sealer();
        for dev in [&mut clean, &mut faulty] {
            for a in 0..32u64 {
                dev.read_block(a).unwrap();
                dev.write_block(a, s.seal(a, 1, b"w")).unwrap();
            }
            dev.read_scatter(&[3, 17, 9]).unwrap();
            dev.take_block(5).unwrap();
        }
        assert!(
            faulty.retry_stats().retries > 0,
            "fixture must exercise retries"
        );
        // Same events, same order, same sizes: retries are timing-only.
        assert_eq!(strip(&clean_trace), strip(&faulty_trace));
    }

    #[test]
    fn leaky_retry_fixture_changes_the_trace_shape() {
        let trace = AccessTrace::new();
        let mut dev = faulted_device(trace.clone(), FaultConfig::transient(7, 200), 32);
        dev.set_retry_policy(RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::default()
        });
        dev.set_leaky_retry(true);
        for a in 0..32u64 {
            dev.read_block(a).unwrap();
        }
        let events = trace.snapshot().len() as u64;
        assert_eq!(
            events,
            32 + dev.retry_stats().retries,
            "leaky fixture records one extra event per retry"
        );
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        // 100% fault rate: every attempt fails, the policy runs dry.
        let mut dev = faulted_device(AccessTrace::new(), FaultConfig::transient(3, 1000), 4);
        let max = dev.retry_policy().max_attempts;
        let err = dev.read_block(2).unwrap_err();
        assert!(
            err.is_transient(),
            "exhaustion surfaces the last error: {err}"
        );
        let rs = dev.retry_stats();
        assert_eq!(rs.exhausted, 1);
        assert_eq!(rs.retries, u64::from(max) - 1);
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        let config = FaultConfig {
            permanent_slots: vec![2],
            ..FaultConfig::default()
        };
        let mut dev = faulted_device(AccessTrace::new(), config, 4);
        assert!(matches!(
            dev.read_block(2),
            Err(StorageError::PermanentFault { addr: 2, .. })
        ));
        assert_eq!(dev.retry_stats().retries, 0, "dead slots retry nothing");
        // Other slots keep serving.
        dev.read_block(1).unwrap();
    }

    #[test]
    fn latency_spikes_charge_time_without_trace_changes() {
        let config = FaultConfig {
            seed: 5,
            latency_spike_permille: 1000,
            latency_spike_nanos: 1_000_000,
            ..FaultConfig::default()
        };
        let trace = AccessTrace::new();
        let mut dev = faulted_device(trace.clone(), config, 8);
        for a in 0..8u64 {
            dev.read_block(a).unwrap();
        }
        assert_eq!(trace.snapshot().len(), 8);
        let clean = {
            let mut d = faulted_device(AccessTrace::new(), FaultConfig::default(), 8);
            for a in 0..8u64 {
                d.read_block(a).unwrap();
            }
            d.stats().busy
        };
        assert_eq!(
            dev.stats().busy.as_nanos(),
            clean.as_nanos() + 8 * 1_000_000,
            "every read pays its spike in simulated time"
        );
    }

    #[test]
    fn retry_stats_survive_wrapping_but_not_restore() {
        let mut dev = faulted_device(AccessTrace::new(), FaultConfig::transient(3, 1000), 2);
        let _ = dev.read_block(0);
        assert!(dev.retry_stats().exhausted > 0);
        let mut w = StateWriter::new();
        dev.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut fresh = faulted_device(AccessTrace::new(), FaultConfig::default(), 0);
        let mut r = StateReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert_eq!(
            fresh.retry_stats(),
            RetryStats::default(),
            "retry counters are volatile, never snapshotted"
        );
    }
}

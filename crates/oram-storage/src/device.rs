//! The simulated block device: data + timing + observability.
//!
//! A [`Device`] couples four concerns that the experiments need to stay in
//! lockstep:
//!
//! 1. **Data** — a sparse [`crate::store::BlockStore`] holding sealed blocks
//!    at physical slot addresses.
//! 2. **Timing** — a [`TimingModel`] charging each access a simulated cost
//!    (seek + transfer for HDDs, latency + bandwidth for DRAM/SSD).
//! 3. **Observability** — every access is appended to the shared
//!    [`crate::trace::AccessTrace`], which is precisely the adversary's view.
//! 4. **Accounting** — per-device [`crate::stats::DeviceStats`].
//!
//! Devices support *payload scaling* (`charged_block_bytes`): experiments
//! can store small payloads (fast to encrypt/copy) while timing is charged
//! for the paper's full logical block size, keeping simulated time faithful
//! at a fraction of the host cost. See DESIGN.md §2.

use crate::cache::{BlockCache, CacheConfig, CacheStats, ReadTier};
use crate::clock::{SimClock, SimDuration};
use crate::stats::DeviceStats;
use crate::store::{BlockStore, DataStore};
use crate::trace::{AccessTrace, TraceEvent};
use crate::StorageError;
use oram_crypto::persist::{PersistError, StateReader, StateWriter};
use oram_crypto::seal::SealedBlock;
use std::fmt;

/// Read or write direction of an access, as visible on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AccessKind {
    /// Data flows device → controller.
    Read,
    /// Data flows controller → device.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Identifier distinguishing devices within one experiment's trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct DeviceId(pub u16);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A device timing model: charges simulated time per access.
///
/// Implementations track internal mechanical state (e.g. HDD head position)
/// and must be deterministic: the same access sequence always yields the
/// same costs.
pub trait TimingModel: fmt::Debug + Send {
    /// Cost of one access of `bytes` bytes at byte-offset `offset`.
    ///
    /// `offset` is an absolute device byte address; models use it for
    /// locality effects (seeks). Implementations should update internal
    /// head/locality state.
    fn access_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration;

    /// Cost of a *streaming* access of `bytes` at `offset`: the caller
    /// guarantees the transfer is one sequential run. Defaults to
    /// [`access_cost`](Self::access_cost).
    fn streaming_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration {
        self.access_cost(kind, offset, bytes)
    }

    /// Per-operation costs of a *queued batch* of same-size accesses: the
    /// caller submits all `offsets` at once, so the device may schedule
    /// them internally (elevator sweeps, command-queue overlap) while the
    /// returned costs stay aligned with the submission order. Returns one
    /// cost per offset; implementations must leave internal state exactly
    /// as if the batch completed.
    ///
    /// Defaults to charging each access independently in submission order
    /// (no batching benefit) — models with per-op overhead that command
    /// queuing can coalesce (HDD seeks, SSD/NVMe doorbell latency)
    /// override this.
    fn scatter_costs(
        &mut self,
        kind: AccessKind,
        offsets: &[u64],
        bytes_per_op: u64,
    ) -> Vec<SimDuration> {
        offsets
            .iter()
            .map(|&offset| self.access_cost(kind, offset, bytes_per_op))
            .collect()
    }

    /// Peak sequential bandwidth in bytes/second, for analytical models.
    fn sequential_bandwidth(&self, kind: AccessKind) -> f64;

    /// Forgets locality state (e.g. parks the head). Used between
    /// experiment phases.
    fn reset(&mut self);

    /// The model's internal locality state as plain words, for snapshots.
    /// Stateless models return an empty vector (the default); stateful
    /// models (HDD head position, page caches) must round-trip through
    /// [`restore_state_words`](Self::restore_state_words) so that a
    /// restored run charges byte-identical costs.
    fn state_words(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restores state previously captured by
    /// [`state_words`](Self::state_words). The default ignores the words
    /// (stateless models).
    fn restore_state_words(&mut self, _words: &[u64]) {}
}

/// One element of a [`Device::read_scatter`] result: the block found at
/// the requested slot (if any) and the simulated cost attributed to that
/// command within the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterItem {
    /// The stored block, or `None` for an empty slot.
    pub block: Option<SealedBlock>,
    /// Simulated cost of this command (batch scheduling already applied).
    pub cost: SimDuration,
}

/// A simulated block device.
///
/// See the [module docs](self) for the design; see
/// [`crate::hierarchy::MemoryHierarchy`] for the standard two-device
/// (DRAM + HDD) experiment setup.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    name: String,
    timing: Box<dyn TimingModel>,
    store: Box<dyn DataStore>,
    stats: DeviceStats,
    trace: Option<AccessTrace>,
    clock: SimClock,
    /// Slot width in bytes used to map slot addresses to byte offsets and,
    /// when set, the charged size of every block access (payload scaling).
    charged_block_bytes: u64,
    /// Optional capacity bound in slots; `None` = unbounded.
    capacity_slots: Option<u64>,
    /// Optional block-cache tier(s) in front of the store. See
    /// [`crate::cache`]: hits are timing-padded (the trace event is
    /// recorded unconditionally with the same shape), never elided.
    cache: Option<BlockCache>,
}

impl Device {
    /// Default charged block size: the paper's 1 KB block.
    pub const DEFAULT_BLOCK_BYTES: u64 = 1024;

    /// Creates a device.
    ///
    /// `trace` may be shared across devices so one recorder observes the
    /// whole bus. The charged block size defaults to 1 KB; override with
    /// [`set_charged_block_bytes`](Self::set_charged_block_bytes).
    pub fn new(
        id: DeviceId,
        name: impl Into<String>,
        timing: Box<dyn TimingModel>,
        clock: SimClock,
        trace: Option<AccessTrace>,
    ) -> Self {
        Self::with_store(id, name, timing, clock, trace, Box::new(BlockStore::new()))
    }

    /// Creates a device over an explicit data store — the file-backed
    /// durable store, or any other [`DataStore`]. Timing, tracing, and
    /// accounting are identical regardless of where the bytes live; the
    /// store changes only durability (and host cost).
    pub fn with_store(
        id: DeviceId,
        name: impl Into<String>,
        timing: Box<dyn TimingModel>,
        clock: SimClock,
        trace: Option<AccessTrace>,
        store: Box<dyn DataStore>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            timing,
            store,
            stats: DeviceStats::default(),
            trace,
            clock,
            charged_block_bytes: Self::DEFAULT_BLOCK_BYTES,
            capacity_slots: None,
            cache: None,
        }
    }

    /// Installs a block cache (and optional middle tier) in front of the
    /// store, replacing any existing one. Residency starts empty; the
    /// cache warms from subsequent traffic ([`write_run`](Self::write_run)
    /// populates it write-through, random reads promote on miss).
    ///
    /// # Errors
    ///
    /// File-backed middle tiers propagate open errors.
    pub fn install_cache(&mut self, config: CacheConfig) -> Result<(), StorageError> {
        self.cache = Some(BlockCache::new(config)?);
        Ok(())
    }

    /// The installed cache's configuration, if any.
    pub fn cache_config(&self) -> Option<&CacheConfig> {
        self.cache.as_ref().map(|c| c.config())
    }

    /// The installed cache's counters, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The device identifier used in traces.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the logical block size charged per access (payload scaling).
    pub fn set_charged_block_bytes(&mut self, bytes: u64) {
        assert!(bytes > 0, "charged block size must be positive");
        self.charged_block_bytes = bytes;
    }

    /// The logical block size charged per access.
    pub fn charged_block_bytes(&self) -> u64 {
        self.charged_block_bytes
    }

    /// Bounds the device to `slots` block slots; accesses beyond return
    /// [`StorageError::OutOfCapacity`].
    pub fn set_capacity_slots(&mut self, slots: u64) {
        self.capacity_slots = Some(slots);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets statistics and timing-model locality state. Cache
    /// *counters* reset too; cache *residency* is deliberately kept —
    /// benches reset accounting after warm-up precisely to measure the
    /// warm cache.
    pub fn reset_accounting(&mut self) {
        self.stats = DeviceStats::default();
        self.timing.reset();
        if let Some(cache) = &mut self.cache {
            cache.reset_stats();
            if let Some(mid_timing) = cache.mid_timing() {
                mid_timing.reset();
            }
        }
    }

    /// Number of blocks currently stored.
    pub fn stored_blocks(&self) -> usize {
        self.store.len()
    }

    /// Peak sequential bandwidth of the underlying model, bytes/second.
    pub fn sequential_bandwidth(&self, kind: AccessKind) -> f64 {
        self.timing.sequential_bandwidth(kind)
    }

    fn check_capacity(&self, addr: u64) -> Result<(), StorageError> {
        if let Some(cap) = self.capacity_slots {
            if addr >= cap {
                return Err(StorageError::OutOfCapacity {
                    device: self.name.clone(),
                    addr,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    fn record(&mut self, kind: AccessKind, addr: u64, bytes: u64, cost: SimDuration) {
        self.stats.record(kind, bytes, cost);
        if let Some(trace) = &self.trace {
            trace.record(TraceEvent {
                at: self.clock.now(),
                device: self.id,
                kind,
                addr,
                bytes,
            });
        }
    }

    /// Reads the sealed block at slot `addr`, charging one random-capable
    /// access.
    ///
    /// # Errors
    ///
    /// [`StorageError::MissingBlock`] if the slot is empty,
    /// [`StorageError::OutOfCapacity`] if beyond a configured capacity.
    pub fn read_block(&mut self, addr: u64) -> Result<SealedBlock, StorageError> {
        self.check_capacity(addr)?;
        let bytes = self.charged_block_bytes;
        match self.cache.as_ref().map(|c| c.probe(addr)) {
            Some(ReadTier::Ram) => {
                let cache = self.cache.as_mut().expect("probed");
                let block = cache.serve_ram(addr);
                let cost = cache.hit_cost();
                let leaky = cache.leaky_hits();
                if !leaky {
                    self.record(AccessKind::Read, addr, bytes, cost);
                }
                return Ok(block);
            }
            Some(ReadTier::Mid) => {
                let cache = self.cache.as_mut().expect("probed");
                let block = cache.serve_mid(addr);
                let cost = cache
                    .mid_timing()
                    .expect("mid hit requires a mid tier")
                    .access_cost(AccessKind::Read, addr * bytes, bytes);
                self.record(AccessKind::Read, addr, bytes, cost);
                return Ok(block);
            }
            Some(ReadTier::Cold) => self.cache.as_mut().expect("probed").note_miss(),
            None => {}
        }
        let block = self
            .store
            .get(addr)?
            .ok_or_else(|| StorageError::MissingBlock {
                device: self.name.clone(),
                addr,
            })?;
        if let Some(cache) = &mut self.cache {
            cache.promote_cold(addr, &block, &mut *self.store)?;
        }
        let cost = self
            .timing
            .access_cost(AccessKind::Read, addr * bytes, bytes);
        self.record(AccessKind::Read, addr, bytes, cost);
        Ok(block)
    }

    /// Writes `block` to slot `addr`, charging one random-capable access.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfCapacity`] if beyond a configured capacity.
    pub fn write_block(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        self.check_capacity(addr)?;
        let bytes = self.charged_block_bytes;
        // The cold cost is computed in both paths: the write eventually
        // lands on the device, so its timing model must see the command
        // (head/locality state advances identically).
        let cold_cost = self
            .timing
            .access_cost(AccessKind::Write, addr * bytes, bytes);
        let cost = if let Some(cache) = &mut self.cache {
            // Write-back absorb: the cache becomes the authority; the
            // caller pays the DRAM copy plus the synchronous fraction of
            // the cold write, the rest being flushed in the background
            // (eviction/sync move the data without further charge).
            cache.absorb_write(addr, block, &mut *self.store)?;
            let sync_nanos =
                (cold_cost.as_nanos() as f64 * cache.writeback_sync_fraction()).round() as u64;
            cache.hit_cost() + SimDuration::from_nanos(sync_nanos)
        } else {
            self.store.put(addr, block)?;
            cold_cost
        };
        self.record(AccessKind::Write, addr, bytes, cost);
        Ok(())
    }

    /// Reads the sealed blocks at the given slots as **one queued batch**:
    /// the device sees all commands at once and schedules them internally
    /// (see [`TimingModel::scatter_costs`]), so the per-op overhead
    /// coalesces. Observably identical to issuing
    /// [`read_block`](Self::read_block) per slot in the same order — the
    /// trace records one event per slot, in submission order, with the
    /// same addresses and byte counts — only the simulated costs shrink.
    /// Empty slots yield `None` (they still pay and trace their access).
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfCapacity`] if any slot is beyond a configured
    /// capacity (checked before any access is charged).
    pub fn read_scatter(&mut self, addrs: &[u64]) -> Result<Vec<ScatterItem>, StorageError> {
        if addrs.is_empty() {
            return Ok(Vec::new());
        }
        for &addr in addrs {
            self.check_capacity(addr)?;
        }
        let bytes = self.charged_block_bytes;
        if self.cache.is_some() {
            return self.read_scatter_cached(addrs, bytes);
        }
        let offsets: Vec<u64> = addrs.iter().map(|&addr| addr * bytes).collect();
        let costs = self.timing.scatter_costs(AccessKind::Read, &offsets, bytes);
        let mut out = Vec::with_capacity(addrs.len());
        for (&addr, cost) in addrs.iter().zip(costs) {
            self.record(AccessKind::Read, addr, bytes, cost);
            out.push(ScatterItem {
                block: self.store.get(addr)?,
                cost,
            });
        }
        Ok(out)
    }

    /// The cached half of [`read_scatter`](Self::read_scatter): the batch
    /// splits into per-tier sub-batches — RAM hits at the flat hit cost,
    /// middle-tier hits through the tier's own queued-batch timing, cold
    /// misses through the device's — while the *recorded* op sequence
    /// stays exactly the uncached one: one event per slot, in submission
    /// order, same addresses and byte counts. Only the attributed costs
    /// change; see [`crate::cache`] for the obliviousness argument.
    fn read_scatter_cached(
        &mut self,
        addrs: &[u64],
        bytes: u64,
    ) -> Result<Vec<ScatterItem>, StorageError> {
        let cache = self.cache.as_mut().expect("caller checked");
        let tiers: Vec<ReadTier> = addrs.iter().map(|&a| cache.probe(a)).collect();
        let leaky = cache.leaky_hits();
        let hit_cost = cache.hit_cost();

        // Each tier prices its own sub-batch as the command sequence that
        // tier actually receives, in submission order.
        let mid_offsets: Vec<u64> = addrs
            .iter()
            .zip(&tiers)
            .filter(|(_, t)| **t == ReadTier::Mid)
            .map(|(&a, _)| a * bytes)
            .collect();
        let mut mid_costs = if mid_offsets.is_empty() {
            Vec::new()
        } else {
            cache
                .mid_timing()
                .expect("mid hits require a mid tier")
                .scatter_costs(AccessKind::Read, &mid_offsets, bytes)
        }
        .into_iter();
        // Serve upper-tier hits *before* any cold promotion can evict a
        // planned hit out from under the batch.
        let mut blocks: Vec<Option<SealedBlock>> = addrs
            .iter()
            .zip(&tiers)
            .map(|(&addr, tier)| match tier {
                ReadTier::Ram => Some(cache.serve_ram(addr)),
                ReadTier::Mid => Some(cache.serve_mid(addr)),
                ReadTier::Cold => None,
            })
            .collect();
        let cold_offsets: Vec<u64> = addrs
            .iter()
            .zip(&tiers)
            .filter(|(_, t)| **t == ReadTier::Cold)
            .map(|(&a, _)| a * bytes)
            .collect();
        let mut cold_costs = self
            .timing
            .scatter_costs(AccessKind::Read, &cold_offsets, bytes)
            .into_iter();
        for ((&addr, tier), slot) in addrs.iter().zip(&tiers).zip(blocks.iter_mut()) {
            if *tier == ReadTier::Cold {
                let cache = self.cache.as_mut().expect("caller checked");
                cache.note_miss();
                if let Some(block) = self.store.get(addr)? {
                    cache.promote_cold(addr, &block, &mut *self.store)?;
                    *slot = Some(block);
                }
            }
        }
        let mut out = Vec::with_capacity(addrs.len());
        for ((&addr, tier), block) in addrs.iter().zip(&tiers).zip(blocks) {
            let cost = match tier {
                ReadTier::Ram => hit_cost,
                ReadTier::Mid => mid_costs.next().expect("one cost per mid op"),
                ReadTier::Cold => cold_costs.next().expect("one cost per cold op"),
            };
            if !(leaky && *tier == ReadTier::Ram) {
                self.record(AccessKind::Read, addr, bytes, cost);
            }
            out.push(ScatterItem { block, cost });
        }
        Ok(out)
    }

    /// Writes `(slot, block)` pairs as one queued batch — the vectored
    /// counterpart of [`read_scatter`](Self::read_scatter), for writers
    /// whose targets are discontiguous (in-place update protocols,
    /// write-back caches). H-ORAM's own shuffle writes whole partitions
    /// and uses the cheaper streaming [`write_run`](Self::write_run)
    /// instead.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfCapacity`] if any slot is beyond a configured
    /// capacity (checked before any write lands).
    pub fn write_scatter(&mut self, writes: Vec<(u64, SealedBlock)>) -> Result<(), StorageError> {
        if writes.is_empty() {
            return Ok(());
        }
        for (addr, _) in &writes {
            self.check_capacity(*addr)?;
        }
        let bytes = self.charged_block_bytes;
        let offsets: Vec<u64> = writes.iter().map(|(addr, _)| addr * bytes).collect();
        // The cold timing model sees the full command batch in both
        // paths — every write eventually lands on the device.
        let costs = self
            .timing
            .scatter_costs(AccessKind::Write, &offsets, bytes);
        let absorb = self
            .cache
            .as_ref()
            .map(|c| (c.hit_cost(), c.writeback_sync_fraction()));
        for ((addr, block), cold_cost) in writes.into_iter().zip(costs) {
            let cost = if let Some((hit_cost, fraction)) = absorb {
                let cache = self.cache.as_mut().expect("probed");
                cache.absorb_write(addr, block, &mut *self.store)?;
                let sync_nanos = (cold_cost.as_nanos() as f64 * fraction).round() as u64;
                hit_cost + SimDuration::from_nanos(sync_nanos)
            } else {
                self.store.put(addr, block)?;
                cold_cost
            };
            self.record(AccessKind::Write, addr, bytes, cost);
        }
        Ok(())
    }

    /// Removes and returns the block at `addr` without charging time
    /// (used by shuffle logic that has already paid for a streaming read).
    pub fn take_block(&mut self, addr: u64) -> Option<SealedBlock> {
        // The cache is the authority for slots it holds dirty; either way
        // every tier's copy must go.
        let dirty = self.cache.as_mut().and_then(|c| c.invalidate(addr));
        let stored = self
            .store
            .remove(addr)
            .expect("take_block is simulator-internal; backend I/O failure is fail-stop");
        dirty.or(stored)
    }

    /// Looks at the block at `addr` without charging time or tracing.
    ///
    /// This is a *simulator-internal* peek (e.g. for assertions); protocol
    /// code must use [`read_block`](Self::read_block). Returns an owned
    /// clone (file-backed stores cannot hand out references).
    pub fn peek_block(&mut self, addr: u64) -> Option<SealedBlock> {
        if let Some(block) = self.cache.as_ref().and_then(|c| c.peek(addr)) {
            return Some(block.clone());
        }
        self.store
            .get(addr)
            .expect("peek_block is simulator-internal; backend I/O failure is fail-stop")
    }

    /// Reads `count` consecutive slots starting at `start` as one streaming
    /// run: a single seek, then sequential transfer. Empty slots yield
    /// `None` entries (the run still pays full transfer time, exactly like
    /// reading a raw region).
    pub fn read_run(
        &mut self,
        start: u64,
        count: u64,
    ) -> Result<Vec<Option<SealedBlock>>, StorageError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.check_capacity(start + count - 1)?;
        // Merge the cache's dirty copies over the stored run: the cache is
        // the authority for slots it absorbed write-back.
        let blocks: Vec<Option<SealedBlock>> = (start..start + count)
            .map(
                |a| match self.cache.as_ref().and_then(|c| c.dirty_copy(a)) {
                    Some(dirty) => Ok(Some(dirty.clone())),
                    None => self.store.get(a),
                },
            )
            .collect::<Result<_, _>>()?;
        let bytes = self.charged_block_bytes * count;
        let cost =
            self.timing
                .streaming_cost(AccessKind::Read, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Read, start, bytes, cost);
        Ok(blocks)
    }

    /// Reads `count` consecutive slots starting at `start` as one
    /// streaming run, **removing** the blocks from the store — identical
    /// charge and trace to [`read_run`](Self::read_run), but the caller
    /// takes ownership of the stored blocks without a clone. The shuffle
    /// uses this: every taken slot is rewritten before the pass ends.
    ///
    /// # Errors
    ///
    /// As [`read_run`](Self::read_run).
    pub fn take_run(
        &mut self,
        start: u64,
        count: u64,
    ) -> Result<Vec<Option<SealedBlock>>, StorageError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.check_capacity(start + count - 1)?;
        // Taking a slot removes every tier's copy; the cache's dirty copy
        // (when it holds one) is the authoritative value handed back.
        let blocks: Vec<Option<SealedBlock>> = (start..start + count)
            .map(|a| {
                let dirty = self.cache.as_mut().and_then(|c| c.invalidate(a));
                let stored = self.store.remove(a)?;
                Ok(dirty.or(stored))
            })
            .collect::<Result<_, StorageError>>()?;
        let bytes = self.charged_block_bytes * count;
        let cost =
            self.timing
                .streaming_cost(AccessKind::Read, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Read, start, bytes, cost);
        Ok(blocks)
    }

    /// Writes `blocks` to consecutive slots starting at `start` as one
    /// streaming run. Accepts any exact-size iterator, so sealing
    /// pipelines can stream blocks in without materializing an extra
    /// vector.
    pub fn write_run<I>(&mut self, start: u64, blocks: I) -> Result<(), StorageError>
    where
        I: IntoIterator<Item = SealedBlock>,
        I::IntoIter: ExactSizeIterator,
    {
        let blocks = blocks.into_iter();
        let count = blocks.len() as u64;
        if count == 0 {
            return Ok(());
        }
        self.check_capacity(start + count - 1)?;
        // Streaming runs are write-*through*: the store is updated
        // immediately (shuffle rebuilds make cold storage authoritative),
        // and the cache keeps clean copies of the run — this population
        // is exactly where next period's hits come from, since the
        // once-per-period invariant means a promoted random read is never
        // re-read before the next shuffle rewrites it.
        for (i, block) in blocks.enumerate() {
            let addr = start + i as u64;
            if let Some(cache) = &mut self.cache {
                cache.populate(addr, block.clone(), &mut *self.store)?;
            }
            self.store.put(addr, block)?;
        }
        let bytes = self.charged_block_bytes * count;
        let cost =
            self.timing
                .streaming_cost(AccessKind::Write, start * self.charged_block_bytes, bytes);
        self.record(AccessKind::Write, start, bytes, cost);
        Ok(())
    }

    /// Charges an access of `bytes` at slot `addr` without touching data.
    ///
    /// Protocols use this for accesses whose data movement is modelled
    /// elsewhere (e.g. dummy reads that discard their result).
    pub fn charge(&mut self, kind: AccessKind, addr: u64, bytes: u64) -> SimDuration {
        let cost = self
            .timing
            .access_cost(kind, addr * self.charged_block_bytes, bytes);
        self.record(kind, addr, bytes, cost);
        cost
    }

    /// Drops all stored blocks, in every cache tier and the store (data
    /// only; stats and timing state remain).
    pub fn clear(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.clear();
        }
        self.store
            .clear()
            .expect("clear is simulator-internal; backend I/O failure is fail-stop");
    }

    /// Whether the underlying store survives process exit (file-backed).
    pub fn is_durable(&self) -> bool {
        self.store.durable()
    }

    /// Durability barrier: flushes and commits the underlying store
    /// (no-op for volatile stores). Checkpoints call this before sealing
    /// the trusted-state snapshot, so the on-disk image a recovery adopts
    /// is exactly the one the snapshot describes.
    ///
    /// # Errors
    ///
    /// Backend I/O errors propagate.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if let Some(cache) = &mut self.cache {
            cache.flush(&mut *self.store)?;
        }
        self.store.sync()
    }

    /// Keyed fingerprint over the store's full logical contents (slot
    /// order), used to pin a snapshot to the exact device image it was
    /// taken against. The key is fixed and non-secret — this is an
    /// integrity cross-check between two locally produced artifacts, not
    /// an authenticator (the blocks are already sealed).
    fn store_fingerprint(&mut self) -> Result<u64, StorageError> {
        let mut blocks = self.store.snapshot_blocks()?;
        blocks.sort_unstable_by_key(|(addr, _)| *addr);
        let mut mac = oram_crypto::siphash::SipHash24::new(b"horam-dev-fngrpt");
        mac.write_u64(blocks.len() as u64);
        for (addr, block) in blocks {
            mac.write_u64(addr);
            mac.write_u64(block.block_id());
            mac.write_u64(block.epoch());
            mac.write_u64(block.tag());
            mac.write_u64(block.ciphertext().len() as u64);
            mac.write(block.ciphertext());
        }
        Ok(mac.finish())
    }

    /// Serializes the device's mutable state: statistics, timing-model
    /// locality state, and — for volatile stores only — the stored
    /// blocks. Durable stores persist their own data; the snapshot
    /// records their occupancy count and a content fingerprint, so a
    /// restore against a device file from a *different* checkpoint fails
    /// closed instead of adopting mismatched state.
    ///
    /// # Errors
    ///
    /// Backend I/O errors propagate.
    pub fn save_state(&mut self, w: &mut StateWriter) -> Result<(), StorageError> {
        // Flush the cache's dirty blocks first, so the store contents the
        // snapshot embeds (or fingerprints) already include every
        // absorbed write — the cache section then only needs residency
        // metadata, never block bytes.
        if let Some(cache) = &mut self.cache {
            cache.flush(&mut *self.store)?;
        }
        let stats = self.stats;
        w.put_u64(stats.reads);
        w.put_u64(stats.writes);
        w.put_u64(stats.bytes_read);
        w.put_u64(stats.bytes_written);
        w.put_u64(stats.busy.as_nanos());
        w.put_u64(stats.busy_read.as_nanos());
        w.put_u64(stats.busy_write.as_nanos());
        let words = self.timing.state_words();
        w.put_usize(words.len());
        for word in words {
            w.put_u64(word);
        }
        w.put_u64(self.charged_block_bytes);
        w.put_bool(self.store.durable());
        if self.store.durable() {
            w.put_usize(self.store.len());
            w.put_u64(self.store_fingerprint()?);
        } else {
            let blocks = self.store.snapshot_blocks()?;
            w.put_usize(blocks.len());
            for (addr, block) in blocks {
                w.put_u64(addr);
                w.put_u64(block.block_id());
                w.put_u64(block.epoch());
                w.put_u64(block.tag());
                w.put_bytes(block.ciphertext());
            }
        }
        w.put_bool(self.cache.is_some());
        if let Some(cache) = &self.cache {
            cache.save_state(w);
        }
        Ok(())
    }

    /// Restores state captured by [`save_state`](Self::save_state) onto a
    /// freshly built device of the same shape. For durable stores the
    /// on-disk contents are adopted as-is, after the occupancy count
    /// *and* content fingerprint are verified against the snapshot — a
    /// device file committed at a different checkpoint than the snapshot
    /// (e.g. restoring an old snapshot over a file whose journal rolled
    /// back to a newer sync) is rejected here; for volatile stores the
    /// snapshot's blocks replace the store contents.
    ///
    /// # Errors
    ///
    /// [`PersistError`] for malformed snapshots or a durability/occupancy
    /// mismatch between snapshot and device.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), PersistError> {
        let stats = DeviceStats {
            reads: r.get_u64()?,
            writes: r.get_u64()?,
            bytes_read: r.get_u64()?,
            bytes_written: r.get_u64()?,
            busy: SimDuration::from_nanos(r.get_u64()?),
            busy_read: SimDuration::from_nanos(r.get_u64()?),
            busy_write: SimDuration::from_nanos(r.get_u64()?),
        };
        let word_count = r.get_usize()?;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(r.get_u64()?);
        }
        let charged = r.get_u64()?;
        let durable = r.get_bool()?;
        if durable != self.store.durable() {
            return Err(PersistError::Malformed(format!(
                "snapshot taken on a {} store, restoring onto a {} one",
                if durable { "durable" } else { "volatile" },
                if self.store.durable() {
                    "durable"
                } else {
                    "volatile"
                },
            )));
        }
        if durable {
            let expected = r.get_usize()?;
            let expected_fingerprint = r.get_u64()?;
            if self.store.len() != expected {
                return Err(PersistError::Malformed(format!(
                    "durable store holds {} blocks, snapshot expects {expected} \
                     (device file does not match the snapshot's checkpoint)",
                    self.store.len()
                )));
            }
            let fingerprint = self
                .store_fingerprint()
                .map_err(|e| PersistError::Malformed(format!("fingerprinting store: {e}")))?;
            if fingerprint != expected_fingerprint {
                return Err(PersistError::Malformed(
                    "durable store contents do not match the snapshot's checkpoint \
                     (the device file was committed at a different sync point)"
                        .to_string(),
                ));
            }
        } else {
            let count = r.get_usize()?;
            let mut blocks = Vec::with_capacity(count);
            for _ in 0..count {
                let addr = r.get_u64()?;
                let block_id = r.get_u64()?;
                let epoch = r.get_u64()?;
                let tag = r.get_u64()?;
                let body = r.get_bytes()?.to_vec();
                blocks.push((addr, SealedBlock::from_parts(block_id, epoch, body, tag)));
            }
            self.store
                .install_blocks(blocks)
                .map_err(|e| PersistError::Malformed(format!("installing blocks: {e}")))?;
        }
        let has_cache = r.get_bool()?;
        if has_cache != self.cache.is_some() {
            return Err(PersistError::Malformed(format!(
                "snapshot taken with a cache {}, restoring onto a device {} one",
                if has_cache { "installed" } else { "absent" },
                if self.cache.is_some() {
                    "with"
                } else {
                    "without"
                },
            )));
        }
        // Temporarily take the cache so it can repopulate from the store
        // without aliasing `self`.
        if let Some(mut cache) = self.cache.take() {
            let result = cache.load_state(r, &mut *self.store);
            self.cache = Some(cache);
            result?;
        }
        self.stats = stats;
        self.timing.restore_state_words(&words);
        self.charged_block_bytes = charged;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramModel;
    use crate::hdd::HddModel;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([1u8; 32]).derive("dev-test", 0))
    }

    fn dram_device(trace: Option<AccessTrace>) -> Device {
        Device::new(
            DeviceId(1),
            "dram",
            Box::new(DramModel::ddr4_2133()),
            SimClock::new(),
            trace,
        )
    }

    #[test]
    fn read_back_what_was_written() {
        let mut dev = dram_device(None);
        let sealed = sealer().seal(7, 0, b"contents");
        dev.write_block(7, sealed.clone()).unwrap();
        assert_eq!(dev.read_block(7).unwrap(), sealed);
        assert_eq!(dev.stored_blocks(), 1);
    }

    #[test]
    fn missing_block_errors() {
        let mut dev = dram_device(None);
        assert!(matches!(
            dev.read_block(3),
            Err(StorageError::MissingBlock { addr: 3, .. })
        ));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut dev = dram_device(None);
        dev.set_capacity_slots(4);
        let sealed = sealer().seal(4, 0, b"x");
        assert!(matches!(
            dev.write_block(4, sealed),
            Err(StorageError::OutOfCapacity {
                addr: 4,
                capacity: 4,
                ..
            })
        ));
    }

    #[test]
    fn stats_accumulate_reads_and_writes() {
        let mut dev = dram_device(None);
        dev.write_block(0, sealer().seal(0, 0, b"a")).unwrap();
        dev.read_block(0).unwrap();
        dev.read_block(0).unwrap();
        let stats = dev.stats();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.bytes_read, 2 * Device::DEFAULT_BLOCK_BYTES);
        assert!(stats.busy > SimDuration::ZERO);
    }

    #[test]
    fn trace_records_bus_view() {
        let trace = AccessTrace::new();
        let mut dev = dram_device(Some(trace.clone()));
        dev.write_block(5, sealer().seal(5, 0, b"abc")).unwrap();
        dev.read_block(5).unwrap();
        let events = trace.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, AccessKind::Write);
        assert_eq!(events[0].addr, 5);
        assert_eq!(events[1].kind, AccessKind::Read);
    }

    #[test]
    fn charged_bytes_scale_timing_not_data() {
        let mut small = dram_device(None);
        let mut big = dram_device(None);
        big.set_charged_block_bytes(64 * 1024);
        let sealed = sealer().seal(0, 0, b"tiny");
        small.write_block(0, sealed.clone()).unwrap();
        big.write_block(0, sealed).unwrap();
        assert!(big.stats().busy > small.stats().busy);
        assert_eq!(
            big.read_block(0).unwrap().ciphertext(),
            small.read_block(0).unwrap().ciphertext()
        );
    }

    #[test]
    fn streaming_run_is_cheaper_than_random_on_hdd() {
        let mk_hdd = || {
            Device::new(
                DeviceId(0),
                "hdd",
                Box::new(HddModel::paper_calibrated()),
                SimClock::new(),
                None,
            )
        };
        let mut random = mk_hdd();
        let mut streaming = mk_hdd();
        let s = sealer();
        for addr in 0..64u64 {
            random
                .write_block(addr * 97 % 64, s.seal(addr, 0, b"d"))
                .unwrap();
        }
        streaming
            .write_run(0, (0..64).map(|a| s.seal(a, 0, b"d")).collect::<Vec<_>>())
            .unwrap();
        assert!(
            streaming.stats().busy.as_nanos() * 5 < random.stats().busy.as_nanos(),
            "streaming {} vs random {}",
            streaming.stats().busy,
            random.stats().busy
        );
    }

    #[test]
    fn read_run_returns_gaps_as_none() {
        let mut dev = dram_device(None);
        dev.write_block(2, sealer().seal(2, 0, b"x")).unwrap();
        let run = dev.read_run(0, 4).unwrap();
        assert_eq!(run.len(), 4);
        assert!(run[0].is_none() && run[1].is_none() && run[3].is_none());
        assert!(run[2].is_some());
    }

    #[test]
    fn empty_runs_are_free() {
        let mut dev = dram_device(None);
        assert!(dev.read_run(0, 0).unwrap().is_empty());
        dev.write_run(9, Vec::new()).unwrap();
        assert_eq!(dev.stats().reads + dev.stats().writes, 0);
    }

    fn hdd_device() -> Device {
        Device::new(
            DeviceId(0),
            "hdd",
            Box::new(HddModel::paper_calibrated()),
            SimClock::new(),
            None,
        )
    }

    #[test]
    fn read_scatter_trace_and_counts_match_sequential_reads() {
        let s = sealer();
        let addrs: Vec<u64> = vec![9, 3, 27, 14];
        let build = |trace: AccessTrace| {
            let mut dev = Device::new(
                DeviceId(0),
                "hdd",
                Box::new(HddModel::paper_calibrated()),
                SimClock::new(),
                Some(trace),
            );
            for &a in &addrs {
                dev.write_block(a, s.seal(a, 0, b"x")).unwrap();
            }
            dev.reset_accounting();
            dev
        };
        let seq_trace = AccessTrace::new();
        let mut sequential = build(seq_trace.clone());
        seq_trace.clear();
        let seq_blocks: Vec<SealedBlock> = addrs
            .iter()
            .map(|&a| sequential.read_block(a).unwrap())
            .collect();

        let bat_trace = AccessTrace::new();
        let mut batched = build(bat_trace.clone());
        bat_trace.clear();
        let bat_items = batched.read_scatter(&addrs).unwrap();

        // Identical adversary view: same events, same order (timestamps
        // aside — the shared clock is advanced by the caller).
        let strip = |t: &AccessTrace| {
            t.snapshot()
                .into_iter()
                .map(|e| (e.device, e.kind, e.addr, e.bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&seq_trace), strip(&bat_trace));
        // Identical data and op/byte accounting.
        let bat_blocks: Vec<SealedBlock> =
            bat_items.into_iter().map(|i| i.block.unwrap()).collect();
        assert_eq!(seq_blocks, bat_blocks);
        assert_eq!(sequential.stats().reads, batched.stats().reads);
        assert_eq!(sequential.stats().bytes_read, batched.stats().bytes_read);
        // Strictly cheaper in simulated time (queued scheduling).
        assert!(batched.stats().busy < sequential.stats().busy);
    }

    #[test]
    fn write_scatter_stores_and_is_cheaper_than_sequential_on_hdd() {
        let s = sealer();
        let writes: Vec<(u64, SealedBlock)> = (0..32u64)
            .map(|i| (i * 97 % 64, s.seal(i, 0, b"w")))
            .collect();
        let mut sequential = hdd_device();
        for (a, b) in writes.clone() {
            sequential.write_block(a, b).unwrap();
        }
        let mut batched = hdd_device();
        batched.write_scatter(writes.clone()).unwrap();
        for (a, b) in &writes {
            assert_eq!(batched.peek_block(*a).as_ref(), Some(b));
        }
        assert_eq!(batched.stats().writes, sequential.stats().writes);
        assert!(batched.stats().busy < sequential.stats().busy);
    }

    #[test]
    fn scatter_on_empty_input_is_free() {
        let mut dev = dram_device(None);
        assert!(dev.read_scatter(&[]).unwrap().is_empty());
        dev.write_scatter(Vec::new()).unwrap();
        assert_eq!(dev.stats().ops(), 0);
    }

    #[test]
    fn scatter_capacity_checked_before_any_charge() {
        let mut dev = dram_device(None);
        dev.set_capacity_slots(4);
        assert!(matches!(
            dev.read_scatter(&[1, 9]),
            Err(StorageError::OutOfCapacity { addr: 9, .. })
        ));
        assert_eq!(dev.stats().ops(), 0);
    }

    #[test]
    fn take_run_charges_like_read_run_and_removes() {
        let s = sealer();
        let mut reader = dram_device(None);
        let mut taker = dram_device(None);
        for dev in [&mut reader, &mut taker] {
            for a in 0..4u64 {
                dev.write_block(a, s.seal(a, 0, b"r")).unwrap();
            }
            dev.reset_accounting();
        }
        let read = reader.read_run(0, 4).unwrap();
        let taken = taker.take_run(0, 4).unwrap();
        assert_eq!(read, taken);
        assert_eq!(reader.stats(), taker.stats());
        assert_eq!(reader.stored_blocks(), 4, "read_run clones");
        assert_eq!(taker.stored_blocks(), 0, "take_run removes");
        assert!(taker.take_run(0, 0).unwrap().is_empty());
    }

    #[test]
    fn charge_records_without_data() {
        let mut dev = dram_device(None);
        let cost = dev.charge(AccessKind::Read, 11, 1024);
        assert!(cost > SimDuration::ZERO);
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stored_blocks(), 0);
    }

    #[test]
    fn reset_accounting_clears_stats_but_not_data() {
        let mut dev = dram_device(None);
        dev.write_block(0, sealer().seal(0, 0, b"keep")).unwrap();
        dev.reset_accounting();
        assert_eq!(dev.stats().writes, 0);
        assert_eq!(dev.stored_blocks(), 1);
    }
}

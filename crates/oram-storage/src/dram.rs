//! Main-memory timing model.
//!
//! The paper's memory layer is 16 GB of DDR4-2133 (Table 5-2). For ORAM
//! purposes the relevant behaviour is: accesses cost a fixed device latency
//! plus a bandwidth-proportional transfer term, with no locality penalty
//! worth modelling at block (KB) granularity. DDR4-2133 peaks at
//! 17 GB/s/channel; sustained copy bandwidth on the paper's desktop is
//! ≈15 GB/s, which is what we charge.

use crate::clock::SimDuration;
use crate::device::{AccessKind, TimingModel};

/// Timing parameters for a DRAM device.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DramParams {
    /// Per-access latency in nanoseconds (row activation + controller).
    pub latency_nanos: u64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl DramParams {
    /// DDR4-2133 as in the paper's Table 5-2.
    pub fn ddr4_2133() -> Self {
        Self {
            latency_nanos: 70,
            bandwidth: 15.0e9,
        }
    }
}

/// A flat latency+bandwidth DRAM model.
#[derive(Debug, Clone)]
pub struct DramModel {
    params: DramParams,
}

impl DramModel {
    /// Creates a model from explicit parameters.
    pub fn new(params: DramParams) -> Self {
        assert!(params.bandwidth > 0.0, "bandwidth must be positive");
        Self { params }
    }

    /// The paper's DDR4-2133 memory.
    pub fn ddr4_2133() -> Self {
        Self::new(DramParams::ddr4_2133())
    }

    /// The model's parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }
}

impl TimingModel for DramModel {
    fn access_cost(&mut self, _kind: AccessKind, _offset: u64, bytes: u64) -> SimDuration {
        let transfer = bytes as f64 / self.params.bandwidth * 1e9;
        SimDuration::from_nanos(self.params.latency_nanos + transfer.round() as u64)
    }

    fn sequential_bandwidth(&self, _kind: AccessKind) -> f64 {
        self.params.bandwidth
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_latency_plus_transfer() {
        let mut m = DramModel::ddr4_2133();
        let cost = m.access_cost(AccessKind::Read, 0, 1024);
        // 70 ns + 1024/15e9 s ≈ 70 + 68 ns.
        assert_eq!(cost.as_nanos(), 70 + 68);
    }

    #[test]
    fn reads_and_writes_cost_the_same() {
        let mut m = DramModel::ddr4_2133();
        assert_eq!(
            m.access_cost(AccessKind::Read, 0, 4096),
            m.access_cost(AccessKind::Write, 0, 4096)
        );
    }

    #[test]
    fn no_locality_effects() {
        let mut m = DramModel::ddr4_2133();
        let near = m.access_cost(AccessKind::Read, 0, 1024);
        let far = m.access_cost(AccessKind::Read, 1 << 33, 1024);
        assert_eq!(near, far);
    }

    #[test]
    fn dram_is_orders_faster_than_hdd() {
        use crate::hdd::HddModel;
        let mut dram = DramModel::ddr4_2133();
        let mut hdd = HddModel::paper_calibrated();
        let d = dram.access_cost(AccessKind::Read, 1 << 20, 1024);
        hdd.access_cost(AccessKind::Read, 0, 1024);
        let h = hdd.access_cost(AccessKind::Read, 1 << 20, 1024);
        assert!(h.as_nanos() > 100 * d.as_nanos());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        DramModel::new(DramParams {
            latency_nanos: 1,
            bandwidth: 0.0,
        });
    }
}

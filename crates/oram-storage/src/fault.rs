//! Deterministic fault injection between a device and its backing store.
//!
//! A [`FaultyStore`] wraps any [`DataStore`] and injects failures according
//! to a seeded [`FaultPlan`]: transient read/write errors (retryable),
//! permanent slot failures (dead sectors), bit-flip corruption of the
//! sealed bytes a read returns, fsync failures, and latency spikes. Every
//! decision is a pure function of `(seed, operation counter, op kind,
//! address)` via SipHash-2-4, so a chaos run is exactly replayable from its
//! seed — and a retry of the same logical access naturally re-rolls,
//! because each store call advances the counter.
//!
//! Faults are injected only on the *access* paths (`get`/`put`/`remove`/
//! `sync`). The snapshot plumbing (`snapshot_blocks`, `install_blocks`,
//! `clear`) delegates fault-free: those are simulator-internal transfers
//! (fingerprinting, restore) that model trusted-host memory traffic, not
//! device I/O.
//!
//! Corruption is modeled as a *read glitch*: the store's copy stays
//! intact, but the bytes handed back have one deterministic bit flipped.
//! The sealed-block authenticator catches this downstream
//! (`BlockSealer::open` fails with a tag mismatch), which is exactly the
//! detection path the quarantine-and-restore machinery exercises.

use crate::store::DataStore;
use crate::StorageError;
use oram_crypto::seal::SealedBlock;
use oram_crypto::siphash::SipHash24;

/// Seeded fault schedule parameters. All rates are per-mille (0–1000);
/// zero disables that fault class. The default injects nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Per-mille probability that a `get`/`remove` fails transiently.
    pub transient_read_permille: u32,
    /// Per-mille probability that a `put` fails transiently.
    pub transient_write_permille: u32,
    /// Slots that fail permanently: every access errors, always.
    pub permanent_slots: Vec<u64>,
    /// Per-mille probability that a successful `get` returns bytes with
    /// one bit flipped (the store's own copy stays intact).
    pub corrupt_permille: u32,
    /// Per-mille probability that a `sync` fails (transient — a retry
    /// re-rolls).
    pub fsync_fail_permille: u32,
    /// Per-mille probability that an access accrues a latency spike.
    pub latency_spike_permille: u32,
    /// Simulated nanoseconds one latency spike adds.
    pub latency_spike_nanos: u64,
}

impl FaultConfig {
    /// A schedule of transient faults only: reads and writes both fail
    /// with probability `permille`/1000.
    pub fn transient(seed: u64, permille: u32) -> Self {
        Self {
            seed,
            transient_read_permille: permille,
            transient_write_permille: permille,
            ..Self::default()
        }
    }

    /// Whether this schedule can inject anything at all.
    pub fn is_inert(&self) -> bool {
        self.transient_read_permille == 0
            && self.transient_write_permille == 0
            && self.permanent_slots.is_empty()
            && self.corrupt_permille == 0
            && self.fsync_fail_permille == 0
            && (self.latency_spike_permille == 0 || self.latency_spike_nanos == 0)
    }
}

/// The deterministic decision stream of one [`FaultConfig`].
///
/// Each query hashes `(op counter, op tag, address)` under a key derived
/// from the seed and advances the counter, so the fault sequence is a
/// replayable function of the seed and the exact sequence of store calls.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    key: [u8; 16],
    counter: u64,
}

impl FaultPlan {
    /// Builds the decision stream for `config`.
    pub fn new(config: FaultConfig) -> Self {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&config.seed.to_le_bytes());
        key[8..].copy_from_slice(&(config.seed ^ 0x666c_6970_2d62_6974).to_le_bytes());
        Self {
            config,
            key,
            counter: 0,
        }
    }

    /// The schedule parameters.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Store calls observed so far (each advances the stream).
    pub fn ops_observed(&self) -> u64 {
        self.counter
    }

    /// One raw 64-bit roll for `(op, addr)` at the current counter.
    fn roll(&mut self, op: &'static str, addr: u64) -> u64 {
        let mut mac = SipHash24::new(&self.key);
        mac.write_u64(self.counter);
        mac.write(op.as_bytes());
        mac.write_u64(addr);
        self.counter = self.counter.wrapping_add(1);
        mac.finish()
    }

    /// Whether an event with probability `permille`/1000 fires for this
    /// `(op, addr)` roll.
    fn fires(&mut self, op: &'static str, addr: u64, permille: u32) -> bool {
        if permille == 0 {
            return false;
        }
        (self.roll(op, addr) % 1000) < u64::from(permille)
    }
}

/// Counters of injected faults, for test assertions and chaos reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient `get`/`remove` failures injected.
    pub transient_reads: u64,
    /// Transient `put` failures injected.
    pub transient_writes: u64,
    /// Accesses refused because the slot is permanently failed.
    pub permanent_hits: u64,
    /// Reads whose returned bytes were bit-flipped.
    pub corruptions: u64,
    /// `sync` calls that failed.
    pub fsync_failures: u64,
    /// Latency spikes accrued.
    pub latency_spikes: u64,
}

impl FaultStats {
    /// Total injected faults of every class (spikes excluded — they only
    /// slow the simulation down).
    pub fn total_errors(&self) -> u64 {
        self.transient_reads
            + self.transient_writes
            + self.permanent_hits
            + self.corruptions
            + self.fsync_failures
    }
}

/// A [`DataStore`] adapter that injects the faults of a [`FaultPlan`]
/// between a device and its inner store. See the [module docs](self).
#[derive(Debug)]
pub struct FaultyStore {
    inner: Box<dyn DataStore>,
    plan: FaultPlan,
    pending_latency_nanos: u64,
    stats: FaultStats,
}

impl FaultyStore {
    /// Wraps `inner` with the fault schedule of `config`.
    pub fn new(inner: Box<dyn DataStore>, config: FaultConfig) -> Self {
        Self {
            inner,
            plan: FaultPlan::new(config),
            pending_latency_nanos: 0,
            stats: FaultStats::default(),
        }
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The decision stream (for replay assertions).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Unwraps the adapter, returning the inner store.
    pub fn into_inner(self) -> Box<dyn DataStore> {
        self.inner
    }

    fn check_permanent(&mut self, addr: u64) -> Result<(), StorageError> {
        if self.plan.config.permanent_slots.contains(&addr) {
            self.stats.permanent_hits += 1;
            return Err(StorageError::PermanentFault {
                device: "fault-injector".into(),
                addr,
            });
        }
        Ok(())
    }

    fn maybe_spike(&mut self, op: &'static str, addr: u64) {
        let permille = self.plan.config.latency_spike_permille;
        if self.plan.fires(op, addr, permille) {
            self.pending_latency_nanos += self.plan.config.latency_spike_nanos;
            self.stats.latency_spikes += 1;
        }
    }

    /// The shared read-side schedule of `get` and `remove`.
    fn read_faults(&mut self, op: &'static str, addr: u64) -> Result<(), StorageError> {
        self.check_permanent(addr)?;
        self.maybe_spike("spike", addr);
        let permille = self.plan.config.transient_read_permille;
        if self.plan.fires(op, addr, permille) {
            self.stats.transient_reads += 1;
            return Err(StorageError::TransientFault {
                device: "fault-injector".into(),
                addr,
                op,
            });
        }
        Ok(())
    }
}

impl DataStore for FaultyStore {
    fn get(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        self.read_faults("get", addr)?;
        let mut block = self.inner.get(addr)?;
        if let Some(block) = &mut block {
            let permille = self.plan.config.corrupt_permille;
            if permille > 0 {
                let roll = self.plan.roll("corrupt", addr);
                if roll % 1000 < u64::from(permille) {
                    // Flip a roll-selected bit of the returned copy; the
                    // store keeps the good bytes (a read glitch, not rot).
                    block.corrupt_bit((roll >> 10) as usize);
                    self.stats.corruptions += 1;
                }
            }
        }
        Ok(block)
    }

    fn put(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        self.check_permanent(addr)?;
        self.maybe_spike("spike", addr);
        let permille = self.plan.config.transient_write_permille;
        if self.plan.fires("put", addr, permille) {
            self.stats.transient_writes += 1;
            return Err(StorageError::TransientFault {
                device: "fault-injector".into(),
                addr,
                op: "put",
            });
        }
        self.inner.put(addr, block)
    }

    fn remove(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        self.read_faults("remove", addr)?;
        self.inner.remove(addr)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn clear(&mut self) -> Result<(), StorageError> {
        self.inner.clear()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        let permille = self.plan.config.fsync_fail_permille;
        if self.plan.fires("sync", 0, permille) {
            self.stats.fsync_failures += 1;
            return Err(StorageError::TransientFault {
                device: "fault-injector".into(),
                addr: 0,
                op: "sync",
            });
        }
        self.inner.sync()
    }

    fn durable(&self) -> bool {
        self.inner.durable()
    }

    fn snapshot_blocks(&mut self) -> Result<Vec<(u64, SealedBlock)>, StorageError> {
        self.inner.snapshot_blocks()
    }

    fn install_blocks(&mut self, blocks: Vec<(u64, SealedBlock)>) -> Result<(), StorageError> {
        self.inner.install_blocks(blocks)
    }

    fn take_injected_latency_nanos(&mut self) -> u64 {
        std::mem::take(&mut self.pending_latency_nanos)
    }

    fn can_fault(&self) -> bool {
        true
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        Some(self.stats)
    }
}

// --------------------------------------------------------------- transport
//
// The PR-7 chaos methodology — seeded, replayable fault schedules between
// two honest layers — extended to the wire. A [`FaultyConn`] sits between
// an RPC endpoint and its byte stream exactly as a [`FaultyStore`] sits
// between a device and its blocks: every decision is a pure function of
// `(seed, frame counter, fault class)`, so a network chaos run replays
// from its seed.
//
// Decisions advance on *writes only* (the RPC layers send exactly one
// frame per `write` call, so the counter counts frames). Reads never roll
// the stream: a polling reader calls `read` a timing-dependent number of
// times, and letting those calls advance the schedule would make the
// fault sequence — and therefore the run — nondeterministic. Reads fail
// only as a *consequence* of an injected disconnect/truncation, which
// breaks the connection for both directions.

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// Seeded transport-fault schedule parameters. Rates are per-mille
/// (0–1000) per frame written; zero disables the class. The default
/// injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnFaultConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Per-mille probability a written frame is silently dropped: the
    /// write reports success but no bytes reach the peer (the receiver
    /// times out and must retry).
    pub drop_permille: u32,
    /// Per-mille probability a written frame is truncated: half its
    /// bytes reach the peer, then the connection breaks (the receiver
    /// sees a half-written frame followed by EOF).
    pub truncate_permille: u32,
    /// Per-mille probability the connection breaks before the frame is
    /// written (both directions die; the writer sees `ConnectionReset`).
    pub disconnect_permille: u32,
    /// Per-mille probability the frame is delayed by
    /// [`delay_micros`](Self::delay_micros) of real time before writing.
    pub delay_permille: u32,
    /// Host microseconds one injected delay sleeps.
    pub delay_micros: u64,
}

impl ConnFaultConfig {
    /// Whether this schedule can inject anything at all.
    pub fn is_inert(&self) -> bool {
        self.drop_permille == 0
            && self.truncate_permille == 0
            && self.disconnect_permille == 0
            && (self.delay_permille == 0 || self.delay_micros == 0)
    }
}

/// Counters of injected transport faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnFaultStats {
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames truncated mid-write (connection broken after).
    pub truncated: u64,
    /// Connections broken before a frame.
    pub disconnects: u64,
    /// Frames delayed.
    pub delays: u64,
    /// Frames that went through unharmed.
    pub delivered: u64,
}

/// The deterministic decision stream of one [`ConnFaultConfig`],
/// **shared across reconnects**: a client that redials after an injected
/// disconnect wraps its fresh stream around the same plan, so one seed
/// describes one uninterrupted fault schedule for the whole chaos run —
/// the property the run-twice determinism battery keys on.
#[derive(Debug)]
pub struct ConnFaultPlan {
    config: ConnFaultConfig,
    key: [u8; 16],
    counter: u64,
    stats: ConnFaultStats,
}

impl ConnFaultPlan {
    /// Builds the decision stream for `config`.
    pub fn new(config: ConnFaultConfig) -> Self {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&config.seed.to_le_bytes());
        key[8..].copy_from_slice(&(config.seed ^ 0x6672_616d_652d_6e66).to_le_bytes());
        Self {
            config,
            key,
            counter: 0,
            stats: ConnFaultStats::default(),
        }
    }

    /// A plan behind the shared handle [`FaultyConn`] expects, so redials
    /// continue the schedule where the broken connection left it.
    pub fn shared(config: ConnFaultConfig) -> Arc<Mutex<ConnFaultPlan>> {
        Arc::new(Mutex::new(Self::new(config)))
    }

    /// The schedule parameters.
    pub fn config(&self) -> &ConnFaultConfig {
        &self.config
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> ConnFaultStats {
        self.stats
    }

    /// Frames observed so far (each `write` call advances the stream).
    pub fn frames_observed(&self) -> u64 {
        self.counter
    }

    fn fires(&mut self, class: &'static str, permille: u32) -> bool {
        if permille == 0 {
            return false;
        }
        let mut mac = SipHash24::new(&self.key);
        mac.write_u64(self.counter);
        mac.write(class.as_bytes());
        (mac.finish() % 1000) < u64::from(permille)
    }

    /// Rolls the whole per-frame schedule: exactly one counter advance
    /// per frame regardless of which classes fire, so the schedule is a
    /// pure function of the frame index.
    fn roll_frame(&mut self) -> FrameFate {
        let fate = if self.fires("disconnect", self.config.disconnect_permille) {
            self.stats.disconnects += 1;
            FrameFate::Disconnect
        } else if self.fires("truncate", self.config.truncate_permille) {
            self.stats.truncated += 1;
            FrameFate::Truncate
        } else if self.fires("drop", self.config.drop_permille) {
            self.stats.dropped += 1;
            FrameFate::Drop
        } else if self.fires("delay", self.config.delay_permille) {
            self.stats.delays += 1;
            FrameFate::Delay(self.config.delay_micros)
        } else {
            self.stats.delivered += 1;
            FrameFate::Deliver
        };
        self.counter += 1;
        fate
    }
}

/// What the schedule decided for one written frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameFate {
    Deliver,
    Drop,
    Truncate,
    Disconnect,
    Delay(u64),
}

/// A byte stream with the faults of a [`ConnFaultPlan`] injected on its
/// write path. Wraps anything `Read + Write` (a `TcpStream`, a
/// `UnixStream`, a test loopback); see the module-level transport notes
/// for why only writes roll the schedule.
#[derive(Debug)]
pub struct FaultyConn<S> {
    inner: S,
    plan: Arc<Mutex<ConnFaultPlan>>,
    broken: bool,
}

impl<S> FaultyConn<S> {
    /// Wraps `inner` with the shared fault schedule `plan`.
    pub fn new(inner: S, plan: Arc<Mutex<ConnFaultPlan>>) -> Self {
        Self {
            inner,
            plan,
            broken: false,
        }
    }

    /// Whether an injected fault has severed this connection (subsequent
    /// reads and writes fail until the caller redials).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// A reference to the inner stream (e.g. to set socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    fn severed() -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            "fault-injector: connection severed",
        )
    }
}

impl<S: Read + Write> Read for FaultyConn<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.broken {
            return Err(Self::severed());
        }
        self.inner.read(buf)
    }
}

impl<S: Read + Write> Write for FaultyConn<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Err(Self::severed());
        }
        let fate = {
            let mut plan = self.plan.lock().unwrap_or_else(|e| e.into_inner());
            plan.roll_frame()
        };
        match fate {
            // Deliver the whole frame under one schedule roll: a partial
            // inner write would make `write_all` callers re-enter and
            // re-roll, tying the schedule to TCP buffer timing.
            FrameFate::Deliver => self.inner.write_all(buf).map(|()| buf.len()),
            FrameFate::Delay(micros) => {
                std::thread::sleep(std::time::Duration::from_micros(micros));
                self.inner.write_all(buf).map(|()| buf.len())
            }
            FrameFate::Drop => Ok(buf.len()),
            FrameFate::Truncate => {
                let half = buf.len() / 2;
                self.inner.write_all(&buf[..half])?;
                let _ = self.inner.flush();
                self.broken = true;
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault-injector: frame truncated mid-write",
                ))
            }
            FrameFate::Disconnect => {
                self.broken = true;
                Err(Self::severed())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(Self::severed());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::BlockStore;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([7u8; 32]).derive("fault-test", 0))
    }

    fn stocked(n: u64) -> Box<dyn DataStore> {
        let mut store = BlockStore::new();
        let sealer = sealer();
        for addr in 0..n {
            store.put(addr, sealer.seal(addr, 0, &addr.to_le_bytes()));
        }
        Box::new(store)
    }

    fn drive(config: FaultConfig) -> (Vec<Result<bool, StorageError>>, FaultStats) {
        let mut store = FaultyStore::new(stocked(64), config);
        let results = (0..64)
            .map(|addr| store.get(addr).map(|b| b.is_some()))
            .collect();
        (results, store.stats())
    }

    #[test]
    fn inert_schedule_injects_nothing() {
        let (results, stats) = drive(FaultConfig::default());
        assert!(results.iter().all(|r| matches!(r, Ok(true))));
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn same_seed_replays_identically() {
        let config = FaultConfig {
            corrupt_permille: 100,
            latency_spike_permille: 100,
            latency_spike_nanos: 1_000,
            ..FaultConfig::transient(42, 200)
        };
        let (a, stats_a) = drive(config.clone());
        let (b, stats_b) = drive(config);
        assert_eq!(a, b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.transient_reads > 0, "200 permille over 64 reads");
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = drive(FaultConfig::transient(1, 300));
        let (b, _) = drive(FaultConfig::transient(2, 300));
        assert_ne!(a, b);
    }

    #[test]
    fn retry_rerolls_the_stream() {
        let mut store = FaultyStore::new(stocked(8), FaultConfig::transient(9, 500));
        // Hammer one address: the per-call counter means outcomes vary,
        // so a retry loop eventually succeeds.
        let mut saw_err = false;
        let mut saw_ok = false;
        for _ in 0..64 {
            match store.get(3) {
                Ok(_) => saw_ok = true,
                Err(e) => {
                    assert!(e.is_transient());
                    saw_err = true;
                }
            }
        }
        assert!(saw_ok && saw_err, "50% faults must mix over 64 attempts");
    }

    #[test]
    fn permanent_slot_always_fails_and_others_serve() {
        let config = FaultConfig {
            permanent_slots: vec![5],
            ..FaultConfig::default()
        };
        let mut store = FaultyStore::new(stocked(8), config);
        for _ in 0..4 {
            let err = store.get(5).unwrap_err();
            assert!(matches!(err, StorageError::PermanentFault { addr: 5, .. }));
            assert!(!err.is_transient());
        }
        assert!(store.get(4).unwrap().is_some());
        assert!(store.put(5, sealer().seal(5, 0, &[0u8; 8])).is_err());
        assert_eq!(store.stats().permanent_hits, 5);
    }

    #[test]
    fn corruption_glitches_the_read_not_the_store() {
        let config = FaultConfig {
            seed: 11,
            corrupt_permille: 1000,
            ..FaultConfig::default()
        };
        let mut store = FaultyStore::new(stocked(4), config);
        let glitched = store.get(2).unwrap().expect("slot stocked");
        assert!(sealer().open(&glitched).is_err(), "tag must catch the flip");
        assert_eq!(store.stats().corruptions, 1);
        // The store's own copy is intact: disable corruption and re-read.
        let mut honest = FaultyStore::new(store.into_inner(), FaultConfig::default());
        let clean = honest.get(2).unwrap().expect("slot still stocked");
        assert_eq!(sealer().open(&clean).unwrap(), 2u64.to_le_bytes());
    }

    #[test]
    fn fsync_failure_is_transient_and_counted() {
        let config = FaultConfig {
            seed: 3,
            fsync_fail_permille: 1000,
            ..FaultConfig::default()
        };
        let mut store = FaultyStore::new(stocked(1), config);
        let err = store.sync().unwrap_err();
        assert!(err.is_transient());
        assert_eq!(store.stats().fsync_failures, 1);
    }

    #[test]
    fn latency_spikes_accrue_and_drain() {
        let config = FaultConfig {
            seed: 4,
            latency_spike_permille: 1000,
            latency_spike_nanos: 2_500,
            ..FaultConfig::default()
        };
        let mut store = FaultyStore::new(stocked(4), config);
        store.get(0).unwrap();
        store.get(1).unwrap();
        assert_eq!(store.take_injected_latency_nanos(), 5_000);
        assert_eq!(store.take_injected_latency_nanos(), 0);
        assert_eq!(store.stats().latency_spikes, 2);
    }

    #[test]
    fn snapshot_paths_are_fault_free() {
        let mut store = FaultyStore::new(stocked(16), FaultConfig::transient(5, 1000));
        // Every access faults, but the snapshot plumbing must not.
        assert!(store.get(0).is_err());
        let blocks = store.snapshot_blocks().unwrap();
        assert_eq!(blocks.len(), 16);
        store.install_blocks(blocks).unwrap();
        assert_eq!(store.len(), 16);
    }

    // ----------------------------------------------------- transport

    /// A loopback stream: writes append to an owned buffer, reads drain
    /// it — enough surface for the write-path fault semantics.
    #[derive(Debug, Default)]
    struct Loopback {
        buf: std::collections::VecDeque<u8>,
    }

    impl Read for Loopback {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = out.len().min(self.buf.len());
            for slot in out.iter_mut().take(n) {
                *slot = self.buf.pop_front().expect("counted");
            }
            Ok(n)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.buf.extend(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Drives `frames` fixed-size writes through a fresh conn on a shared
    /// plan, reporting each frame's observable outcome.
    fn drive_conn(config: ConnFaultConfig, frames: usize) -> (Vec<String>, ConnFaultStats) {
        let plan = ConnFaultPlan::shared(config);
        let mut outcomes = Vec::new();
        let mut conn = FaultyConn::new(Loopback::default(), Arc::clone(&plan));
        for i in 0..frames {
            let frame = [i as u8; 16];
            let outcome = match conn.write(&frame) {
                Ok(n) => format!("ok{n}"),
                Err(e) => format!("err:{:?}", e.kind()),
            };
            outcomes.push(outcome);
            if conn.is_broken() {
                // Redial: fresh stream, same plan — the schedule
                // continues where the broken connection left it.
                conn = FaultyConn::new(Loopback::default(), Arc::clone(&plan));
            }
        }
        let stats = plan.lock().unwrap().stats();
        (outcomes, stats)
    }

    #[test]
    fn inert_conn_schedule_delivers_everything() {
        let (outcomes, stats) = drive_conn(ConnFaultConfig::default(), 32);
        assert!(outcomes.iter().all(|o| o == "ok16"));
        assert_eq!(stats.delivered, 32);
        assert_eq!(stats.disconnects + stats.dropped + stats.truncated, 0);
    }

    #[test]
    fn conn_same_seed_replays_identically() {
        let config = ConnFaultConfig {
            seed: 77,
            drop_permille: 200,
            truncate_permille: 100,
            disconnect_permille: 100,
            ..ConnFaultConfig::default()
        };
        let (a, stats_a) = drive_conn(config.clone(), 128);
        let (b, stats_b) = drive_conn(config, 128);
        assert_eq!(a, b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.dropped > 0 && stats_a.disconnects > 0);
    }

    #[test]
    fn conn_different_seeds_differ() {
        let mix = |seed| ConnFaultConfig {
            seed,
            drop_permille: 300,
            disconnect_permille: 300,
            ..ConnFaultConfig::default()
        };
        let (a, _) = drive_conn(mix(1), 64);
        let (b, _) = drive_conn(mix(2), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn dropped_frame_reports_success_but_delivers_nothing() {
        let plan = ConnFaultPlan::shared(ConnFaultConfig {
            seed: 5,
            drop_permille: 1000,
            ..ConnFaultConfig::default()
        });
        let mut conn = FaultyConn::new(Loopback::default(), plan);
        assert_eq!(conn.write(&[9u8; 8]).unwrap(), 8, "write claims success");
        assert_eq!(conn.get_ref().buf.len(), 0, "no bytes reached the peer");
    }

    #[test]
    fn truncated_frame_delivers_half_then_severs() {
        let plan = ConnFaultPlan::shared(ConnFaultConfig {
            seed: 6,
            truncate_permille: 1000,
            ..ConnFaultConfig::default()
        });
        let mut conn = FaultyConn::new(Loopback::default(), plan);
        let err = conn.write(&[3u8; 10]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(conn.get_ref().buf.len(), 5, "half the frame got through");
        assert!(conn.is_broken());
        // Both directions are dead until redial.
        assert!(conn.read(&mut [0u8; 4]).is_err());
        assert!(conn.write(&[0u8; 4]).is_err());
        assert!(conn.flush().is_err());
    }

    #[test]
    fn disconnect_severs_before_any_byte() {
        let plan = ConnFaultPlan::shared(ConnFaultConfig {
            seed: 7,
            disconnect_permille: 1000,
            ..ConnFaultConfig::default()
        });
        let mut conn = FaultyConn::new(Loopback::default(), plan);
        let err = conn.write(&[1u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(conn.get_ref().buf.len(), 0);
        assert!(conn.is_broken());
    }

    #[test]
    fn reads_never_advance_the_schedule() {
        let plan = ConnFaultPlan::shared(ConnFaultConfig {
            seed: 8,
            drop_permille: 500,
            ..ConnFaultConfig::default()
        });
        let mut conn = FaultyConn::new(Loopback::default(), Arc::clone(&plan));
        // A polling reader hammers read; the frame counter must not move,
        // or fault schedules would depend on poll timing.
        for _ in 0..100 {
            let _ = conn.read(&mut [0u8; 16]);
        }
        assert_eq!(plan.lock().unwrap().frames_observed(), 0);
        let _ = conn.write(&[0u8; 8]);
        assert_eq!(plan.lock().unwrap().frames_observed(), 1);
    }
}

//! Durable file-backed storage: a slot-indexed layout over a real file,
//! with a write-back buffer and a crash-consistent undo journal.
//!
//! Every other [`crate::store::DataStore`] in this crate is volatile; this
//! one actually persists bytes, so the H-ORAM reproduction can express
//! restart and crash scenarios. The design mirrors classic single-file
//! storage engines:
//!
//! * **Slot-indexed layout.** The file is a fixed header page followed by
//!   `capacity` fixed-size records, one per slot: a record holds an
//!   occupancy flag, the sealed block's header fields (`block_id`,
//!   `epoch`, `tag`), the body length, and up to `body_capacity` body
//!   bytes. Slot `s` lives at a computable offset — no index structure,
//!   no compaction.
//! * **O_TRUNC-free open.** [`FileStore::open`] never truncates: an
//!   existing file is validated against its header (magic, version,
//!   geometry) and adopted; a new file is initialized with all-empty
//!   records. Opening is how recovery happens.
//! * **Write-back buffer.** Writes land in a small in-memory buffer and
//!   reach the file only when the buffer exceeds its bound, or at an
//!   explicit [`sync`](crate::store::DataStore::sync). Reads check the
//!   buffer first.
//! * **Undo journal.** Before a flushed record overwrites its on-file
//!   predecessor, the predecessor is appended to a sidecar journal
//!   (`<path>.undo`), each entry checksummed. `sync` is the commit
//!   point: flush, fsync the data file, then truncate the journal. If the
//!   process dies between syncs, the next [`open`](FileStore::open) rolls
//!   the file back by applying valid journal entries in reverse — the
//!   file is restored to its state at the last sync, byte for byte. A
//!   torn final journal entry is skipped safely: entries are written (and
//!   flushed) *before* their data write, so an invalid entry implies the
//!   corresponding data write never happened.
//!
//! Together with the sealed snapshots of the trusted client state
//! (`horam-core::persist`), this yields the recovery invariant the
//! persistence tests pin down: kill the engine anywhere, reopen the file,
//! restore the latest snapshot, and replay — byte-identical to a run that
//! was never interrupted.
//!
//! Only ciphertext ever reaches the file: the store holds
//! [`SealedBlock`]s, whose bodies the trusted layer encrypted and
//! authenticated before they got here.

use crate::store::DataStore;
use crate::StorageError;
use oram_crypto::seal::SealedBlock;
use oram_crypto::siphash::SipHash24;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening a device file.
const FILE_MAGIC: [u8; 8] = *b"HORAMDEV";
/// Device-file format version.
const FILE_VERSION: u32 = 1;
/// Header page size; record 0 starts here.
const HEADER_LEN: u64 = 64;
/// Fixed per-record prefix: occupancy flag + body length + block_id +
/// epoch + tag.
const RECORD_PREFIX: usize = 1 + 4 + 8 + 8 + 8;
/// Journal entry prefix: slot address; followed by one full record and a
/// trailing checksum.
const JOURNAL_PREFIX: usize = 8;
/// Fixed (non-secret) key for journal-entry checksums — integrity against
/// torn writes, not authenticity (the records are already sealed).
const JOURNAL_CHECKSUM_KEY: [u8; 16] = *b"horam-undo-jrnl!";

/// Geometry and policy of a [`FileStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStoreConfig {
    /// Number of slots the file is laid out for.
    pub capacity_slots: u64,
    /// Maximum sealed-body bytes a record can hold. Writes with longer
    /// bodies are rejected ([`StorageError::Backend`]).
    pub body_capacity: usize,
    /// Write-back buffer bound in dirty slots; exceeding it flushes the
    /// whole buffer (journaling first).
    pub write_back_slots: usize,
    /// Whether [`sync`](crate::store::DataStore::sync) calls `fsync`.
    /// `false` keeps tests and CI fast; crash consistency *within the
    /// process lifetime* (kill-the-engine scenarios) holds either way,
    /// because the journal ordering is in program order.
    pub fsync: bool,
}

impl FileStoreConfig {
    /// A configuration sized for `capacity_slots` records of up to
    /// `body_capacity` body bytes, with a 64-slot write-back buffer and
    /// no fsync.
    pub fn new(capacity_slots: u64, body_capacity: usize) -> Self {
        Self {
            capacity_slots,
            body_capacity,
            write_back_slots: 64,
            fsync: false,
        }
    }

    /// Replaces the write-back buffer bound.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_write_back_slots(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "write-back buffer needs at least one slot");
        self.write_back_slots = slots;
        self
    }

    /// Enables or disables fsync at sync points.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    fn record_len(&self) -> u64 {
        (RECORD_PREFIX + self.body_capacity) as u64
    }
}

fn io_err(path: &Path, op: &str, e: std::io::Error) -> StorageError {
    StorageError::Backend {
        path: path.display().to_string(),
        reason: format!("{op}: {e}"),
    }
}

fn journal_checksum(slot: u64, record: &[u8]) -> u64 {
    let mut mac = SipHash24::new(&JOURNAL_CHECKSUM_KEY);
    mac.write_u64(slot);
    mac.write_u64(record.len() as u64);
    mac.write(record);
    mac.finish()
}

/// A durable, crash-consistent file-backed block store. See the
/// [module docs](self).
#[derive(Debug)]
pub struct FileStore {
    config: FileStoreConfig,
    path: PathBuf,
    journal_path: PathBuf,
    file: File,
    journal: File,
    /// Dirty slots not yet flushed: `Some(block)` = pending write,
    /// `None` = pending erase. `BTreeMap` so flush order is deterministic.
    buffer: BTreeMap<u64, Option<SealedBlock>>,
    /// Occupied-slot count over file ∪ buffer.
    occupied: usize,
    /// Per-slot occupancy of the *file* image (buffer overlays it).
    file_occupied: Vec<bool>,
    /// Slots journaled since the last sync (each slot is journaled at
    /// most once per sync interval — the first undo image is the one
    /// that matters).
    journaled: Vec<bool>,
    journal_dirty: bool,
}

impl FileStore {
    /// Opens (or creates) the store at `path` without ever truncating.
    ///
    /// A pre-existing file is validated against `config` (magic, version,
    /// slot count, record size) and **recovered**: any committed-but-
    /// unsynced writes recorded in the undo journal are rolled back, so
    /// the adopted contents are exactly the state at the last
    /// [`sync`](crate::store::DataStore::sync). A fresh file is laid out
    /// with every record empty.
    ///
    /// # Errors
    ///
    /// [`StorageError::Backend`] for I/O failures or a header that does
    /// not match `config`.
    pub fn open(path: impl Into<PathBuf>, config: FileStoreConfig) -> Result<Self, StorageError> {
        assert!(config.capacity_slots > 0, "capacity must be positive");
        assert!(
            config.write_back_slots > 0,
            "write-back bound must be positive"
        );
        let path = path.into();
        let journal_path = {
            let mut os = path.clone().into_os_string();
            os.push(".undo");
            PathBuf::from(os)
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(&path, "create dir", e))?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(&path, "open", e))?;
        let file_len = file.metadata().map_err(|e| io_err(&path, "stat", e))?.len();
        let journal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&journal_path)
            .map_err(|e| io_err(&journal_path, "open journal", e))?;

        let mut store = Self {
            file_occupied: vec![false; config.capacity_slots as usize],
            journaled: vec![false; config.capacity_slots as usize],
            config,
            path,
            journal_path,
            file,
            journal,
            buffer: BTreeMap::new(),
            occupied: 0,
            journal_dirty: false,
        };
        if file_len == 0 {
            store.init_fresh()?;
        } else {
            store.validate_header()?;
            store.roll_back_journal()?;
            store.scan_occupancy()?;
        }
        // The journal is committed (empty) after either path.
        store.truncate_journal()?;
        Ok(store)
    }

    /// The data file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The store geometry and policy.
    pub fn config(&self) -> &FileStoreConfig {
        &self.config
    }

    /// Dirty slots currently held in the write-back buffer.
    pub fn buffered_writes(&self) -> usize {
        self.buffer.len()
    }

    fn record_offset(&self, slot: u64) -> u64 {
        HEADER_LEN + slot * self.config.record_len()
    }

    fn check_slot(&self, slot: u64) -> Result<(), StorageError> {
        if slot >= self.config.capacity_slots {
            return Err(StorageError::OutOfCapacity {
                device: self.path.display().to_string(),
                addr: slot,
                capacity: self.config.capacity_slots,
            });
        }
        Ok(())
    }

    fn init_fresh(&mut self) -> Result<(), StorageError> {
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(&FILE_MAGIC);
        header[8..12].copy_from_slice(&FILE_VERSION.to_le_bytes());
        header[12..20].copy_from_slice(&self.config.capacity_slots.to_le_bytes());
        header[20..28].copy_from_slice(&(self.config.body_capacity as u64).to_le_bytes());
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.write_all(&header))
            .map_err(|e| io_err(&self.path, "write header", e))?;
        // Lay the empty records out in one streaming pass so the file has
        // its final size and every record a valid (empty) image.
        let record = vec![0u8; self.config.record_len() as usize];
        for _ in 0..self.config.capacity_slots {
            self.file
                .write_all(&record)
                .map_err(|e| io_err(&self.path, "init record", e))?;
        }
        Ok(())
    }

    fn validate_header(&mut self) -> Result<(), StorageError> {
        let mut header = [0u8; HEADER_LEN as usize];
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.read_exact(&mut header))
            .map_err(|e| io_err(&self.path, "read header", e))?;
        let fail = |reason: String| StorageError::Backend {
            path: self.path.display().to_string(),
            reason,
        };
        if header[..8] != FILE_MAGIC {
            return Err(fail("not a device file (bad magic)".into()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != FILE_VERSION {
            return Err(fail(format!(
                "device file version {version}, expected {FILE_VERSION}"
            )));
        }
        let slots = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let body = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
        if slots != self.config.capacity_slots || body != self.config.body_capacity as u64 {
            return Err(fail(format!(
                "geometry mismatch: file has {slots} slots × {body} body bytes, \
                 config wants {} × {}",
                self.config.capacity_slots, self.config.body_capacity
            )));
        }
        Ok(())
    }

    /// Applies valid journal entries in reverse, restoring the data file
    /// to its state at the last sync. Invalid or torn entries terminate
    /// the valid prefix (their data writes never happened — see the
    /// module docs on write ordering).
    fn roll_back_journal(&mut self) -> Result<(), StorageError> {
        let record_len = self.config.record_len() as usize;
        let entry_len = JOURNAL_PREFIX + record_len + 8;
        let mut bytes = Vec::new();
        self.journal
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.journal.read_to_end(&mut bytes))
            .map_err(|e| io_err(&self.journal_path, "read journal", e))?;
        let mut entries: Vec<(u64, &[u8])> = Vec::new();
        for chunk in bytes.chunks(entry_len) {
            if chunk.len() < entry_len {
                break; // torn final entry: its data write never happened
            }
            let slot = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
            let record = &chunk[JOURNAL_PREFIX..JOURNAL_PREFIX + record_len];
            let sum = u64::from_le_bytes(
                chunk[JOURNAL_PREFIX + record_len..]
                    .try_into()
                    .expect("8 bytes"),
            );
            if slot >= self.config.capacity_slots || journal_checksum(slot, record) != sum {
                break; // corrupt entry: stop the valid prefix here
            }
            entries.push((slot, record));
        }
        for (slot, record) in entries.into_iter().rev() {
            let offset = self.record_offset(slot);
            self.file
                .seek(SeekFrom::Start(offset))
                .and_then(|_| self.file.write_all(record))
                .map_err(|e| io_err(&self.path, "roll back record", e))?;
        }
        Ok(())
    }

    fn truncate_journal(&mut self) -> Result<(), StorageError> {
        self.journal
            .set_len(0)
            .and_then(|_| self.journal.seek(SeekFrom::Start(0)).map(|_| ()))
            .map_err(|e| io_err(&self.journal_path, "truncate journal", e))?;
        self.journaled.iter_mut().for_each(|j| *j = false);
        self.journal_dirty = false;
        Ok(())
    }

    fn scan_occupancy(&mut self) -> Result<(), StorageError> {
        let record_len = self.config.record_len() as usize;
        self.file
            .seek(SeekFrom::Start(HEADER_LEN))
            .map_err(|e| io_err(&self.path, "seek records", e))?;
        self.occupied = 0;
        let mut record = vec![0u8; record_len];
        for slot in 0..self.config.capacity_slots {
            self.file
                .read_exact(&mut record)
                .map_err(|e| io_err(&self.path, "scan record", e))?;
            let occupied = record[0] == 1;
            self.file_occupied[slot as usize] = occupied;
            if occupied {
                self.occupied += 1;
            }
        }
        Ok(())
    }

    fn read_record(&mut self, slot: u64) -> Result<Option<SealedBlock>, StorageError> {
        let mut record = vec![0u8; self.config.record_len() as usize];
        let offset = self.record_offset(slot);
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut record))
            .map_err(|e| io_err(&self.path, "read record", e))?;
        decode_record(&record, &self.path)
    }

    fn encode_record(&self, block: Option<&SealedBlock>) -> Result<Vec<u8>, StorageError> {
        let mut record = vec![0u8; self.config.record_len() as usize];
        if let Some(block) = block {
            let body = block.ciphertext();
            if body.len() > self.config.body_capacity {
                return Err(StorageError::Backend {
                    path: self.path.display().to_string(),
                    reason: format!(
                        "sealed body of {} bytes exceeds record capacity {}",
                        body.len(),
                        self.config.body_capacity
                    ),
                });
            }
            record[0] = 1;
            record[1..5].copy_from_slice(&(body.len() as u32).to_le_bytes());
            record[5..13].copy_from_slice(&block.block_id().to_le_bytes());
            record[13..21].copy_from_slice(&block.epoch().to_le_bytes());
            record[21..29].copy_from_slice(&block.tag().to_le_bytes());
            record[RECORD_PREFIX..RECORD_PREFIX + body.len()].copy_from_slice(body);
        }
        Ok(record)
    }

    /// Journals the current on-file record of `slot` (once per sync
    /// interval), then returns. Must be called before the record is
    /// overwritten.
    fn journal_undo(&mut self, slot: u64) -> Result<(), StorageError> {
        if self.journaled[slot as usize] {
            return Ok(());
        }
        let mut record = vec![0u8; self.config.record_len() as usize];
        let offset = self.record_offset(slot);
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut record))
            .map_err(|e| io_err(&self.path, "read undo image", e))?;
        let mut entry = Vec::with_capacity(JOURNAL_PREFIX + record.len() + 8);
        entry.extend_from_slice(&slot.to_le_bytes());
        entry.extend_from_slice(&record);
        entry.extend_from_slice(&journal_checksum(slot, &record).to_le_bytes());
        self.journal
            .seek(SeekFrom::End(0))
            .and_then(|_| self.journal.write_all(&entry))
            .map_err(|e| io_err(&self.journal_path, "append undo", e))?;
        self.journaled[slot as usize] = true;
        self.journal_dirty = true;
        Ok(())
    }

    /// Flushes the write-back buffer to the file (journaling each target
    /// record first). Does **not** commit: the journal stays live until
    /// the next sync, so a crash after this flush still rolls back.
    fn flush_buffer(&mut self) -> Result<(), StorageError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        // Journal every undo image first, flushing the journal file before
        // any data write: an entry on disk without its data write is safe
        // (rollback rewrites the same bytes), the converse is not.
        let dirty_slots: Vec<u64> = self.buffer.keys().copied().collect();
        for &slot in &dirty_slots {
            self.journal_undo(slot)?;
        }
        if self.journal_dirty {
            self.journal
                .flush()
                .map_err(|e| io_err(&self.journal_path, "flush journal", e))?;
            if self.config.fsync {
                self.journal
                    .sync_data()
                    .map_err(|e| io_err(&self.journal_path, "fsync journal", e))?;
            }
        }
        // Each entry leaves the buffer only once its record is on the
        // file: an I/O error mid-flush keeps the unwritten tail pending
        // (reads still see it, a retried flush or sync resumes it) instead
        // of silently discarding dirty slots — which a later sync would
        // otherwise commit as a half-applied batch.
        while let Some((slot, block)) = self.buffer.pop_first() {
            let written = self.encode_record(block.as_ref()).and_then(|record| {
                let offset = self.record_offset(slot);
                self.file
                    .seek(SeekFrom::Start(offset))
                    .and_then(|_| self.file.write_all(&record))
                    .map_err(|e| io_err(&self.path, "flush record", e))
            });
            match written {
                Ok(()) => self.file_occupied[slot as usize] = block.is_some(),
                Err(e) => {
                    self.buffer.insert(slot, block);
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}

fn decode_record(record: &[u8], path: &Path) -> Result<Option<SealedBlock>, StorageError> {
    match record[0] {
        0 => return Ok(None),
        1 => {}
        // Any other flag byte is on-disk corruption; erroring here keeps
        // decode and the occupancy scan (`flag == 1`) in agreement.
        other => {
            return Err(StorageError::Backend {
                path: path.display().to_string(),
                reason: format!("record flag byte {other} (corrupt record header)"),
            })
        }
    }
    let body_len = u32::from_le_bytes(record[1..5].try_into().expect("4 bytes")) as usize;
    if RECORD_PREFIX + body_len > record.len() {
        return Err(StorageError::Backend {
            path: path.display().to_string(),
            reason: format!("record body length {body_len} exceeds record size"),
        });
    }
    let block_id = u64::from_le_bytes(record[5..13].try_into().expect("8 bytes"));
    let epoch = u64::from_le_bytes(record[13..21].try_into().expect("8 bytes"));
    let tag = u64::from_le_bytes(record[21..29].try_into().expect("8 bytes"));
    let body = record[RECORD_PREFIX..RECORD_PREFIX + body_len].to_vec();
    Ok(Some(SealedBlock::from_parts(block_id, epoch, body, tag)))
}

impl DataStore for FileStore {
    fn get(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        self.check_slot(addr)?;
        if let Some(pending) = self.buffer.get(&addr) {
            return Ok(pending.clone());
        }
        self.read_record(addr)
    }

    fn put(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        self.check_slot(addr)?;
        if block.ciphertext().len() > self.config.body_capacity {
            return Err(StorageError::Backend {
                path: self.path.display().to_string(),
                reason: format!(
                    "sealed body of {} bytes exceeds record capacity {}",
                    block.ciphertext().len(),
                    self.config.body_capacity
                ),
            });
        }
        let was_occupied = match self.buffer.get(&addr) {
            Some(pending) => pending.is_some(),
            None => self.file_occupied[addr as usize],
        };
        if !was_occupied {
            self.occupied += 1;
        }
        self.buffer.insert(addr, Some(block));
        if self.buffer.len() > self.config.write_back_slots {
            self.flush_buffer()?;
        }
        Ok(())
    }

    fn remove(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        self.check_slot(addr)?;
        let previous = match self.buffer.get(&addr) {
            Some(pending) => pending.clone(),
            None => self.read_record(addr)?,
        };
        if previous.is_some() {
            self.occupied -= 1;
            self.buffer.insert(addr, None);
            if self.buffer.len() > self.config.write_back_slots {
                self.flush_buffer()?;
            }
        }
        Ok(previous)
    }

    fn len(&self) -> usize {
        self.occupied
    }

    fn clear(&mut self) -> Result<(), StorageError> {
        for slot in 0..self.config.capacity_slots {
            let occupied = match self.buffer.get(&slot) {
                Some(pending) => pending.is_some(),
                None => self.file_occupied[slot as usize],
            };
            if occupied {
                self.buffer.insert(slot, None);
            }
        }
        self.occupied = 0;
        self.flush_buffer()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.flush_buffer()?;
        self.file
            .flush()
            .map_err(|e| io_err(&self.path, "flush", e))?;
        if self.config.fsync {
            self.file
                .sync_all()
                .map_err(|e| io_err(&self.path, "fsync", e))?;
        }
        // Commit point: the data file is stable, the undo log is void.
        self.truncate_journal()
    }

    fn durable(&self) -> bool {
        true
    }

    fn snapshot_blocks(&mut self) -> Result<Vec<(u64, SealedBlock)>, StorageError> {
        // One streaming pass (the checkpoint fingerprint runs this over
        // the whole device): flush so the file is the complete logical
        // image, then read records sequentially into one reused buffer
        // instead of a seek per slot.
        self.flush_buffer()?;
        let record_len = self.config.record_len() as usize;
        self.file
            .seek(SeekFrom::Start(HEADER_LEN))
            .map_err(|e| io_err(&self.path, "seek records", e))?;
        let mut record = vec![0u8; record_len];
        let mut out = Vec::with_capacity(self.occupied);
        for slot in 0..self.config.capacity_slots {
            self.file
                .read_exact(&mut record)
                .map_err(|e| io_err(&self.path, "stream record", e))?;
            if let Some(block) = decode_record(&record, &self.path)? {
                out.push((slot, block));
            }
        }
        Ok(out)
    }
}

/// A scratch directory under the **workspace** `target/` tree, unique per
/// call. Tests and benches that exercise the file backend must confine
/// their files here so `cargo test` leaves the repository clean (CI
/// asserts it); the directory is the caller's to remove.
pub fn scratch_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Walk up from this crate's manifest to the workspace root
            // (the directory holding Cargo.lock), then into its target/.
            let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            loop {
                if dir.join("Cargo.lock").exists() {
                    break dir.join("target");
                }
                if !dir.pop() {
                    break PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target");
                }
            }
        });
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = target
        .join("scratch")
        .join(format!("{label}-{}-{unique}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir under target/ is creatable");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&MasterKey::from_bytes([4u8; 32]).derive("file-test", 0))
    }

    fn config() -> FileStoreConfig {
        FileStoreConfig::new(32, 64).with_write_back_slots(4)
    }

    struct Scratch(PathBuf);
    impl Scratch {
        fn new(label: &str) -> Self {
            Self(scratch_dir(label))
        }
        fn file(&self) -> PathBuf {
            self.0.join("dev.horam")
        }
    }
    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn put_get_remove_roundtrip_through_the_file() {
        let scratch = Scratch::new("file-roundtrip");
        let mut store = FileStore::open(scratch.file(), config()).unwrap();
        let s = sealer();
        assert!(store.get(3).unwrap().is_none());
        store.put(3, s.seal(3, 0, b"bytes")).unwrap();
        assert_eq!(store.get(3).unwrap().unwrap(), s.seal(3, 0, b"bytes"));
        assert_eq!(DataStore::len(&store), 1);
        // Force through the buffer and read back from the file proper.
        store.sync().unwrap();
        assert_eq!(store.buffered_writes(), 0);
        assert_eq!(store.get(3).unwrap().unwrap(), s.seal(3, 0, b"bytes"));
        assert_eq!(store.remove(3).unwrap().unwrap(), s.seal(3, 0, b"bytes"));
        assert!(store.get(3).unwrap().is_none());
        assert_eq!(DataStore::len(&store), 0);
    }

    #[test]
    fn contents_survive_reopen_after_sync() {
        let scratch = Scratch::new("file-reopen");
        let s = sealer();
        {
            let mut store = FileStore::open(scratch.file(), config()).unwrap();
            for slot in 0..10u64 {
                store.put(slot, s.seal(slot, 2, &[slot as u8; 16])).unwrap();
            }
            store.sync().unwrap();
        }
        let mut reopened = FileStore::open(scratch.file(), config()).unwrap();
        assert_eq!(DataStore::len(&reopened), 10);
        for slot in 0..10u64 {
            assert_eq!(
                reopened.get(slot).unwrap().unwrap(),
                s.seal(slot, 2, &[slot as u8; 16]),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn unsynced_writes_roll_back_on_reopen() {
        let scratch = Scratch::new("file-rollback");
        let s = sealer();
        {
            let mut store = FileStore::open(scratch.file(), config()).unwrap();
            store.put(1, s.seal(1, 0, b"committed")).unwrap();
            store.sync().unwrap();
            // Overwrite + fresh writes, forcing buffer flushes (bound 4)
            // so the dirty records really reach the file — then "crash"
            // by dropping without sync.
            store.put(1, s.seal(1, 1, b"doomed")).unwrap();
            for slot in 10..20u64 {
                store.put(slot, s.seal(slot, 1, b"doomed too")).unwrap();
            }
            assert!(store.buffered_writes() < 11, "flushes must have happened");
        }
        let mut recovered = FileStore::open(scratch.file(), config()).unwrap();
        assert_eq!(
            recovered.get(1).unwrap().unwrap(),
            s.seal(1, 0, b"committed"),
            "slot 1 must roll back to the synced image"
        );
        for slot in 10..20u64 {
            assert!(recovered.get(slot).unwrap().is_none(), "slot {slot} leaked");
        }
        assert_eq!(DataStore::len(&recovered), 1);
    }

    #[test]
    fn torn_journal_entry_is_skipped_safely() {
        let scratch = Scratch::new("file-torn-journal");
        let s = sealer();
        let journal_path = {
            let mut os = scratch.file().into_os_string();
            os.push(".undo");
            PathBuf::from(os)
        };
        {
            let mut store = FileStore::open(scratch.file(), config()).unwrap();
            store.put(0, s.seal(0, 0, b"base")).unwrap();
            store.sync().unwrap();
            store.put(0, s.seal(0, 1, b"post-sync")).unwrap();
            store.flush_buffer().unwrap();
        }
        // Tear the journal's last entry.
        let bytes = std::fs::read(&journal_path).unwrap();
        assert!(!bytes.is_empty(), "flush must have journaled");
        std::fs::write(&journal_path, &bytes[..bytes.len() - 3]).unwrap();
        let mut recovered = FileStore::open(scratch.file(), config()).unwrap();
        // The torn entry was the only one; rollback applies nothing and
        // the post-sync write survives — still a *consistent* record.
        let block = recovered.get(0).unwrap().unwrap();
        assert!(block == s.seal(0, 1, b"post-sync") || block == s.seal(0, 0, b"base"));
    }

    #[test]
    fn geometry_mismatch_is_rejected_not_truncated() {
        let scratch = Scratch::new("file-geometry");
        {
            let mut store = FileStore::open(scratch.file(), config()).unwrap();
            store.put(0, sealer().seal(0, 0, b"data")).unwrap();
            store.sync().unwrap();
        }
        let wrong = FileStoreConfig::new(64, 64);
        assert!(matches!(
            FileStore::open(scratch.file(), wrong),
            Err(StorageError::Backend { .. })
        ));
        // The original contents are untouched by the failed open.
        let mut store = FileStore::open(scratch.file(), config()).unwrap();
        assert!(store.get(0).unwrap().is_some());
    }

    #[test]
    fn oversized_body_and_out_of_range_slot_error() {
        let scratch = Scratch::new("file-bounds");
        let mut store = FileStore::open(scratch.file(), config()).unwrap();
        assert!(matches!(
            store.put(0, sealer().seal(0, 0, &[0u8; 100])),
            Err(StorageError::Backend { .. })
        ));
        assert!(matches!(
            store.put(99, sealer().seal(99, 0, b"x")),
            Err(StorageError::OutOfCapacity { addr: 99, .. })
        ));
        assert!(matches!(
            store.get(99),
            Err(StorageError::OutOfCapacity { .. })
        ));
    }

    #[test]
    fn clear_empties_everything() {
        let scratch = Scratch::new("file-clear");
        let mut store = FileStore::open(scratch.file(), config()).unwrap();
        let s = sealer();
        for slot in 0..8u64 {
            store.put(slot, s.seal(slot, 0, b"x")).unwrap();
        }
        store.clear().unwrap();
        assert_eq!(DataStore::len(&store), 0);
        for slot in 0..8u64 {
            assert!(store.get(slot).unwrap().is_none());
        }
    }

    #[test]
    fn scratch_dirs_are_unique_and_under_target() {
        let a = scratch_dir("unique");
        let b = scratch_dir("unique");
        assert_ne!(a, b);
        assert!(a.components().any(|c| c.as_os_str() == "target"));
        let _ = std::fs::remove_dir_all(a);
        let _ = std::fs::remove_dir_all(b);
    }
}

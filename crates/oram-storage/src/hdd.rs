//! Rotating-disk timing model.
//!
//! The paper's storage backend is a 7200 RPM, 500 GB HDD whose measured
//! throughput is 102.7 MB/s read / 55.2 MB/s write (Table 5-2), and whose
//! decisive property for H-ORAM is that **sequential transfers are 10–20×
//! faster than random page reads** (§5.2.1). This model captures exactly
//! the effects the evaluation depends on:
//!
//! * a **distance-scaled seek penalty** for discontiguous accesses
//!   (`seek_min + seek_coeff · sqrt(distance / capacity)`) — short hops
//!   inside a 64 MB ORAM region cost far less than sweeps across a 1 GB
//!   region, which is why the paper measures 77 µs/I-O on the small dataset
//!   but 107 µs/I-O on the large one;
//! * **asymmetric transfer rates**: reads stream at the measured read
//!   throughput; random writes pay the (slower) measured write throughput,
//!   while streaming writes coalesce to read-rate (write-back caching in
//!   the drive), which reproduces the paper's measured shuffle times;
//! * **head-position tracking**: an access that starts exactly where the
//!   previous one ended is sequential and pays no seek.
//!
//! Calibration constants live in [`crate::calibration`]; see EXPERIMENTS.md
//! for the paper-vs-simulated latency comparison.

use crate::clock::SimDuration;
use crate::device::{AccessKind, TimingModel};

/// Timing parameters for a rotating disk.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HddParams {
    /// Usable capacity in bytes (seek distances are normalized to this).
    pub capacity_bytes: u64,
    /// Minimum positioning cost for any discontiguous access (track switch
    /// + controller overhead), nanoseconds.
    pub seek_min_nanos: u64,
    /// Full-stroke positioning coefficient, nanoseconds; the seek cost is
    /// `seek_min + seek_coeff * sqrt(distance / capacity)`.
    pub seek_coeff_nanos: u64,
    /// Minimum positioning cost for a *queued* discontiguous access
    /// (nanoseconds). With the whole batch visible, the drive services
    /// commands in an elevator sweep: controller overhead overlaps the
    /// previous transfer and the average rotational wait shrinks, so the
    /// effective per-command floor drops well below
    /// [`seek_min_nanos`](Self::seek_min_nanos) — the classic NCQ win at
    /// queue depth ≥ 8.
    pub queued_seek_min_nanos: u64,
    /// Sequential/streaming read bandwidth, bytes per second.
    pub read_bandwidth: f64,
    /// Random write bandwidth (in-place block updates), bytes per second.
    pub write_bandwidth_random: f64,
    /// Streaming write bandwidth (large coalesced runs), bytes per second.
    pub write_bandwidth_streaming: f64,
}

impl HddParams {
    /// The drive of the paper's Table 5-2, calibrated against the measured
    /// per-access latencies of Tables 5-3/5-4 (see EXPERIMENTS.md).
    pub fn dac2019() -> Self {
        Self {
            capacity_bytes: 500 * 1000 * 1000 * 1000, // 500 GB, decimal as marketed
            seek_min_nanos: 55_000,                   // 55 µs effective short seek
            seek_coeff_nanos: 1_000_000,              // +1 ms × sqrt(span fraction)
            queued_seek_min_nanos: 22_000,            // NCQ elevator floor (~2.5× lower)
            read_bandwidth: 102.7e6,                  // Table 5-2
            write_bandwidth_random: 55.2e6,           // Table 5-2
            write_bandwidth_streaming: 102.7e6,       // coalesced, see module docs
        }
    }
}

/// A rotating-disk timing model with head tracking.
#[derive(Debug, Clone)]
pub struct HddModel {
    params: HddParams,
    /// Byte address one past the end of the previous access, if any.
    head: Option<u64>,
}

impl HddModel {
    /// Creates a model from explicit parameters.
    pub fn new(params: HddParams) -> Self {
        assert!(params.capacity_bytes > 0, "capacity must be positive");
        assert!(
            params.read_bandwidth > 0.0,
            "read bandwidth must be positive"
        );
        assert!(
            params.write_bandwidth_random > 0.0,
            "write bandwidth must be positive"
        );
        assert!(
            params.write_bandwidth_streaming > 0.0,
            "streaming bandwidth must be positive"
        );
        Self { params, head: None }
    }

    /// The paper-calibrated drive (see [`HddParams::dac2019`]).
    pub fn paper_calibrated() -> Self {
        Self::new(HddParams::dac2019())
    }

    /// The model's parameters.
    pub fn params(&self) -> &HddParams {
        &self.params
    }

    /// Seek cost from the current head position to `offset`.
    fn seek_cost(&self, offset: u64) -> SimDuration {
        match self.head {
            Some(head) if head == offset => SimDuration::ZERO,
            Some(head) => {
                let distance = head.abs_diff(offset);
                let fraction = (distance as f64 / self.params.capacity_bytes as f64).min(1.0);
                let nanos = self.params.seek_min_nanos as f64
                    + self.params.seek_coeff_nanos as f64 * fraction.sqrt();
                SimDuration::from_nanos(nanos.round() as u64)
            }
            // First access after spin-up/reset: charge the minimum seek.
            None => SimDuration::from_nanos(self.params.seek_min_nanos),
        }
    }

    /// Seek cost for a command the drive already holds in its queue: the
    /// hop from the previous (elevator-ordered) position, with the queued
    /// positioning floor instead of the cold per-command minimum. A
    /// zero-distance hop (exactly sequential) stays free.
    fn queued_seek_cost(&self, offset: u64) -> SimDuration {
        match self.head {
            Some(head) if head == offset => SimDuration::ZERO,
            Some(head) => {
                let distance = head.abs_diff(offset);
                let fraction = (distance as f64 / self.params.capacity_bytes as f64).min(1.0);
                let nanos = self.params.queued_seek_min_nanos as f64
                    + self.params.seek_coeff_nanos as f64 * fraction.sqrt();
                SimDuration::from_nanos(nanos.round() as u64)
            }
            None => SimDuration::from_nanos(self.params.queued_seek_min_nanos),
        }
    }

    fn transfer_cost(&self, kind: AccessKind, bytes: u64, streaming: bool) -> SimDuration {
        let bandwidth = match (kind, streaming) {
            (AccessKind::Read, _) => self.params.read_bandwidth,
            (AccessKind::Write, false) => self.params.write_bandwidth_random,
            (AccessKind::Write, true) => self.params.write_bandwidth_streaming,
        };
        SimDuration::from_nanos((bytes as f64 / bandwidth * 1e9).round() as u64)
    }
}

impl TimingModel for HddModel {
    fn access_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration {
        let cost = self.seek_cost(offset) + self.transfer_cost(kind, bytes, false);
        self.head = Some(offset + bytes);
        cost
    }

    fn streaming_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration {
        let cost = self.seek_cost(offset) + self.transfer_cost(kind, bytes, true);
        self.head = Some(offset + bytes);
        cost
    }

    fn scatter_costs(
        &mut self,
        kind: AccessKind,
        offsets: &[u64],
        bytes_per_op: u64,
    ) -> Vec<SimDuration> {
        // Elevator scheduling: the head visits the batch in address order
        // (one sweep), while each cost is reported against its submission
        // index. The first command pays a cold seek from the current head
        // position; every queued follow-up pays the NCQ floor plus the
        // distance term for its (short) sorted-order hop.
        let mut order: Vec<usize> = (0..offsets.len()).collect();
        order.sort_by_key(|&i| offsets[i]);
        let mut costs = vec![SimDuration::ZERO; offsets.len()];
        for (position, &i) in order.iter().enumerate() {
            let offset = offsets[i];
            let seek = if position == 0 {
                self.seek_cost(offset)
            } else {
                self.queued_seek_cost(offset)
            };
            costs[i] = seek + self.transfer_cost(kind, bytes_per_op, false);
            self.head = Some(offset + bytes_per_op);
        }
        costs
    }

    fn sequential_bandwidth(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Read => self.params.read_bandwidth,
            AccessKind::Write => self.params.write_bandwidth_streaming,
        }
    }

    fn reset(&mut self) {
        self.head = None;
    }

    fn state_words(&self) -> Vec<u64> {
        // Head position matters: a restored run must charge the same seek
        // costs as the uninterrupted one.
        match self.head {
            None => vec![0],
            Some(head) => vec![1, head],
        }
    }

    fn restore_state_words(&mut self, words: &[u64]) {
        self.head = match words {
            [0] => None,
            [1, head] => Some(*head),
            _ => panic!("malformed HDD timing state"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HddModel {
        HddModel::paper_calibrated()
    }

    #[test]
    fn sequential_followup_pays_no_seek() {
        let mut m = model();
        let first = m.access_cost(AccessKind::Read, 0, 1024);
        let second = m.access_cost(AccessKind::Read, 1024, 1024);
        assert!(
            second < first,
            "sequential {second} should beat first {first}"
        );
        // Pure transfer: 1024 B / 102.7 MB/s ≈ 9.97 µs.
        assert_eq!(
            second.as_nanos(),
            (1024.0 / 102.7e6 * 1e9f64).round() as u64
        );
    }

    #[test]
    fn random_read_latency_matches_calibration_small_span() {
        // Head hops within a 64 MB region: seek ≈ 55 µs + 1 ms·sqrt(64e6/500e9)
        // ≈ 66 µs; plus ~10 µs transfer → ≈ 76 µs (paper: 77 µs, Table 5-3).
        let mut m = model();
        m.access_cost(AccessKind::Read, 0, 1024);
        let cost = m.access_cost(AccessKind::Read, 64_000_000, 1024);
        let micros = cost.as_micros_f64();
        assert!((70.0..85.0).contains(&micros), "got {micros} µs");
    }

    #[test]
    fn random_read_latency_matches_calibration_large_span() {
        // Head hops across ~1 GB: ≈ 55 + 1000·sqrt(1e9/500e9) ≈ 100 µs seek
        // + 10 µs transfer (paper: 107 µs, Table 5-4).
        let mut m = model();
        m.access_cost(AccessKind::Read, 0, 1024);
        let cost = m.access_cost(AccessKind::Read, 1_000_000_000, 1024);
        let micros = cost.as_micros_f64();
        assert!((100.0..120.0).contains(&micros), "got {micros} µs");
    }

    #[test]
    fn writes_are_slower_than_reads_randomly() {
        let mut mr = model();
        let mut mw = model();
        mr.access_cost(AccessKind::Read, 0, 1024);
        mw.access_cost(AccessKind::Read, 0, 1024);
        let read = mr.access_cost(AccessKind::Read, 10_000_000, 4096);
        let write = mw.access_cost(AccessKind::Write, 10_000_000, 4096);
        assert!(write > read);
    }

    #[test]
    fn streaming_write_beats_random_write() {
        let mut m = model();
        let random = m.access_cost(AccessKind::Write, 0, 1 << 20);
        m.reset();
        let streaming = m.streaming_cost(AccessKind::Write, 0, 1 << 20);
        assert!(streaming < random);
    }

    #[test]
    fn sequential_streaming_is_an_order_faster_than_random_pages() {
        // The §5.2.1 claim: streaming ≈10–20× faster than random 1 KB pages
        // for the same byte volume.
        let mut m = model();
        let volume = 10u64 << 20; // 10 MiB
        let pages = volume / 1024;
        let mut random_total = SimDuration::ZERO;
        for i in 0..pages {
            // Pseudo-random page offsets within a 1 GB span.
            let offset = (i.wrapping_mul(2654435761) % (1 << 30)) & !1023;
            random_total += m.access_cost(AccessKind::Read, offset, 1024);
        }
        m.reset();
        let streaming = m.streaming_cost(AccessKind::Read, 0, volume);
        let ratio = random_total.as_nanos() as f64 / streaming.as_nanos() as f64;
        assert!(ratio > 8.0, "streaming speedup only {ratio:.1}x");
    }

    #[test]
    fn scatter_singleton_matches_access_cost() {
        let mut a = model();
        let mut b = model();
        a.access_cost(AccessKind::Read, 0, 1024);
        b.access_cost(AccessKind::Read, 0, 1024);
        let single = a.scatter_costs(AccessKind::Read, &[40 << 20], 1024);
        assert_eq!(
            single,
            vec![b.access_cost(AccessKind::Read, 40 << 20, 1024)]
        );
    }

    #[test]
    fn scatter_batch_beats_sequential_random_reads() {
        let offsets: Vec<u64> = (0..64u64)
            .map(|i| (i.wrapping_mul(2654435761) % (64 << 20)) & !1023)
            .collect();
        let mut sequential = model();
        let sequential_total: u64 = offsets
            .iter()
            .map(|&o| sequential.access_cost(AccessKind::Read, o, 1024).as_nanos())
            .sum();
        let mut batched = model();
        let batched_total: u64 = batched
            .scatter_costs(AccessKind::Read, &offsets, 1024)
            .iter()
            .map(|c| c.as_nanos())
            .sum();
        let ratio = sequential_total as f64 / batched_total as f64;
        assert!(ratio > 1.5, "queued batch speedup only {ratio:.2}x");
    }

    #[test]
    fn scatter_costs_align_with_submission_order() {
        // Submit far-then-near: the far offset is *visited* second (sorted
        // sweep) but its cost must be reported at submission index 0.
        let mut m = model();
        m.access_cost(AccessKind::Read, 0, 1024);
        let costs = m.scatter_costs(AccessKind::Read, &[400 << 30, 1 << 20], 1024);
        assert_eq!(costs.len(), 2);
        assert!(
            costs[0] > costs[1],
            "far hop {:?} should exceed near first seek {:?}",
            costs[0],
            costs[1]
        );
    }

    #[test]
    fn longer_seeks_cost_more() {
        let mut near = model();
        near.access_cost(AccessKind::Read, 0, 1024);
        let near_cost = near.access_cost(AccessKind::Read, 1 << 20, 1024);
        let mut far = model();
        far.access_cost(AccessKind::Read, 0, 1024);
        let far_cost = far.access_cost(AccessKind::Read, 100 << 30, 1024);
        assert!(far_cost > near_cost);
    }

    #[test]
    fn reset_forgets_head() {
        let mut m = model();
        m.access_cost(AccessKind::Read, 0, 1024);
        m.reset();
        let after_reset = m.access_cost(AccessKind::Read, 1024, 1024);
        // Not sequential anymore: must include the minimum seek.
        assert!(after_reset.as_nanos() >= m.params().seek_min_nanos);
    }

    #[test]
    fn bandwidth_reporting_matches_params() {
        let m = model();
        assert_eq!(m.sequential_bandwidth(AccessKind::Read), 102.7e6);
        assert_eq!(m.sequential_bandwidth(AccessKind::Write), 102.7e6);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        HddModel::new(HddParams {
            capacity_bytes: 0,
            ..HddParams::dac2019()
        });
    }
}

//! The standard two-device experiment setup: DRAM + storage.
//!
//! Every protocol in this reproduction runs against a [`MemoryHierarchy`]:
//! a fast in-memory device, a slow storage device, one shared clock and one
//! shared bus trace. The hierarchy also centralizes the *time composition*
//! rules the paper uses:
//!
//! * [`MemoryHierarchy::spend_serial`] — a phase whose memory and storage
//!   work are dependent (tree-top-cache Path ORAM: the path read spans both
//!   devices, so costs add);
//! * [`MemoryHierarchy::spend_overlapped`] — H-ORAM's scheduler overlaps
//!   `c` in-memory reads with one I/O fetch, so a cycle costs
//!   `max(memory, storage)` (paper §4.1: "the I/O loads and in-memory reads
//!   are conducted simultaneously").

use crate::calibration::MachineConfig;
use crate::clock::{SimClock, SimDuration};
use crate::device::Device;
use crate::trace::AccessTrace;

/// A DRAM + storage pair with shared clock and trace.
#[derive(Debug)]
pub struct MemoryHierarchy {
    /// Fast device: holds position maps' targets, stash spill, ORAM tree.
    pub memory: Device,
    /// Slow device: holds the flat permuted ORAM region.
    pub storage: Device,
    clock: SimClock,
    trace: AccessTrace,
    config: MachineConfig,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `config`, recording all accesses.
    pub fn new(config: MachineConfig) -> Self {
        let clock = SimClock::new();
        let trace = AccessTrace::new();
        let memory = config.build_memory(clock.clone(), Some(trace.clone()));
        let storage = config.build_storage(clock.clone(), Some(trace.clone()));
        Self {
            memory,
            storage,
            clock,
            trace,
            config,
        }
    }

    /// The paper's testbed with 1 KB blocks.
    pub fn dac2019() -> Self {
        Self::new(MachineConfig::dac2019())
    }

    /// Builds the hierarchy with a **durable, file-backed** storage device:
    /// DRAM stays in memory (it is trusted client state, captured by
    /// snapshots), while the flat ORAM region lives in a real file at
    /// `path` (see [`crate::file::FileStore`]). Timing, tracing, and the
    /// adversary's view are identical to the in-memory hierarchy.
    ///
    /// # Errors
    ///
    /// Propagates file-backend open/recovery errors.
    pub fn with_file_storage(
        config: MachineConfig,
        path: impl Into<std::path::PathBuf>,
        store_config: crate::file::FileStoreConfig,
    ) -> Result<Self, crate::StorageError> {
        let clock = SimClock::new();
        let trace = AccessTrace::new();
        let memory = config.build_memory(clock.clone(), Some(trace.clone()));
        let store = crate::file::FileStore::open(path, store_config)?;
        let storage =
            config.build_storage_with_store(clock.clone(), Some(trace.clone()), Box::new(store));
        Ok(Self {
            memory,
            storage,
            clock,
            trace,
            config,
        })
    }

    /// Interposes a [`crate::fault::FaultyStore`] with the given schedule
    /// between the *storage* device and its backing store (chaos testing:
    /// the flat ORAM region is the part that lives on untrusted, failing
    /// media; DRAM is trusted client state). Returns `self` for builder
    /// chaining.
    pub fn with_storage_faults(mut self, config: crate::fault::FaultConfig) -> Self {
        self.storage
            .wrap_store(|inner| Box::new(crate::fault::FaultyStore::new(inner, config)));
        self
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared bus trace (adversary view).
    pub fn trace(&self) -> &AccessTrace {
        &self.trace
    }

    /// The machine configuration this hierarchy was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The machine's suggested cycle-pipeline depth, adopted by engines
    /// whose own configuration leaves the depth unset (see
    /// [`MachineConfig::pipeline_depth`]).
    pub fn pipeline_hint(&self) -> Option<u64> {
        self.config.pipeline_depth
    }

    /// Overrides the charged block size on both devices (payload scaling).
    pub fn set_charged_block_bytes(&mut self, bytes: u64) {
        self.memory.set_charged_block_bytes(bytes);
        self.storage.set_charged_block_bytes(bytes);
    }

    /// Advances the wall clock by `memory_time + storage_time` (dependent
    /// phases) and returns the advance.
    pub fn spend_serial(&self, memory_time: SimDuration, storage_time: SimDuration) -> SimDuration {
        let total = memory_time + storage_time;
        self.clock.advance(total);
        total
    }

    /// Advances the wall clock by `max(memory_time, storage_time)`
    /// (overlapped phases — H-ORAM scheduling cycles) and returns the
    /// advance.
    pub fn spend_overlapped(
        &self,
        memory_time: SimDuration,
        storage_time: SimDuration,
    ) -> SimDuration {
        let total = memory_time.max(storage_time);
        self.clock.advance(total);
        total
    }

    /// Clears stats, traces, and the clock (between experiment phases);
    /// stored data is preserved.
    pub fn reset_accounting(&mut self) {
        self.memory.reset_accounting();
        self.storage.reset_accounting();
        self.trace.clear();
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::device_ids;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    #[test]
    fn builds_paper_machine() {
        let h = MemoryHierarchy::dac2019();
        assert_eq!(h.memory.id(), device_ids::MEMORY);
        assert_eq!(h.storage.id(), device_ids::STORAGE);
        assert_eq!(h.config().block_bytes, 1024);
    }

    #[test]
    fn shared_trace_observes_both_devices() {
        let mut h = MemoryHierarchy::dac2019();
        let sealer = BlockSealer::new(&MasterKey::from_bytes([1; 32]).derive("h", 0));
        h.memory.write_block(1, sealer.seal(1, 0, b"m")).unwrap();
        h.storage.write_block(2, sealer.seal(2, 0, b"s")).unwrap();
        let events = h.trace().snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].device, device_ids::MEMORY);
        assert_eq!(events[1].device, device_ids::STORAGE);
    }

    #[test]
    fn serial_time_adds_and_overlapped_takes_max() {
        let h = MemoryHierarchy::dac2019();
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(70);
        assert_eq!(h.spend_serial(a, b), SimDuration::from_micros(80));
        assert_eq!(h.spend_overlapped(a, b), SimDuration::from_micros(70));
        assert_eq!(h.clock().now().as_nanos(), 150_000);
    }

    #[test]
    fn reset_accounting_preserves_data() {
        let mut h = MemoryHierarchy::dac2019();
        let sealer = BlockSealer::new(&MasterKey::from_bytes([1; 32]).derive("h", 0));
        h.storage
            .write_block(7, sealer.seal(7, 0, b"keep"))
            .unwrap();
        h.spend_serial(SimDuration::from_micros(1), SimDuration::ZERO);
        h.reset_accounting();
        assert_eq!(h.clock().now().as_nanos(), 0);
        assert!(h.trace().is_empty());
        assert_eq!(h.storage.stats().writes, 0);
        assert_eq!(h.storage.stored_blocks(), 1);
    }
}

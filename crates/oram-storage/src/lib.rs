//! Deterministic storage-device timing simulator for the H-ORAM reproduction.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]
//!
//!
//! The paper evaluates H-ORAM on a real machine (Intel i7-7700K, DDR4-2133,
//! a 7200 RPM HDD with 102.7 MB/s read / 55.2 MB/s write throughput —
//! Table 5-2). This crate substitutes that testbed with a **deterministic
//! timing simulator**: every read and write against a [`device::Device`]
//! stores/retrieves real (sealed) block data *and* is charged a simulated
//! cost by a device [`device::TimingModel`]:
//!
//! * [`hdd::HddModel`] — distance-scaled seek penalty plus asymmetric
//!   sequential/random transfer rates, calibrated in [`calibration`] so the
//!   paper's measured per-access latencies are reproduced within ~10%.
//! * [`dram::DramModel`] — fixed access latency plus bandwidth term.
//! * [`ssd::SsdModel`] — per-op latency and bandwidth, for ablations beyond
//!   the paper's HDD-only setup.
//!
//! Time is tracked in integer nanoseconds ([`clock::SimDuration`]) so runs
//! are exactly reproducible. Devices never advance a global clock
//! themselves — ORAM protocols compose durations (e.g. H-ORAM overlaps
//! in-memory path reads with one storage fetch per scheduling cycle), then
//! advance the shared [`clock::SimClock`].
//!
//! Every access is also appended to an [`trace::AccessTrace`] — the exact
//! view of an adversary probing the memory/I-O bus: device, direction,
//! physical address, size, timestamp. The leakage tests in `oram-analysis`
//! operate on those traces.
//!
//! The [`fault`] module injects deterministic, seeded failures (transient
//! errors, dead slots, bit flips, fsync failures, latency spikes) between
//! a device and its backing store, so every layer above can be chaos-tested
//! replayably.
//!
//! # Example
//!
//! ```
//! use oram_storage::calibration::paper_hdd;
//! use oram_storage::device::{Device, DeviceId};
//! use oram_storage::trace::AccessTrace;
//! use oram_storage::clock::SimClock;
//! use oram_crypto::{keys::MasterKey, seal::BlockSealer};
//!
//! # fn main() -> Result<(), oram_storage::StorageError> {
//! let trace = AccessTrace::new();
//! let clock = SimClock::new();
//! let mut hdd = Device::new(DeviceId(0), "hdd", Box::new(paper_hdd()), clock, Some(trace.clone()));
//!
//! let sealer = BlockSealer::new(&MasterKey::from_bytes([1; 32]).derive("d", 0));
//! hdd.write_block(3, sealer.seal(3, 0, b"hello"))?;
//! let block = hdd.read_block(3)?;
//! let plain = sealer.open(&block).expect("sealed by the same keys");
//! assert_eq!(plain, b"hello");
//! assert_eq!(trace.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod calibration;
pub mod clock;
pub mod device;
pub mod dram;
pub mod fault;
pub mod file;
pub mod hdd;
pub mod hierarchy;
pub mod page_cache;
pub mod ssd;
pub mod stats;
pub mod store;
pub mod trace;

pub use cache::{BlockCache, CacheConfig, CachePolicy, CacheStats, MidTierConfig, TieredStore};
pub use calibration::MachineConfig;
pub use clock::{SimClock, SimDuration, SimTime};
pub use device::{AccessKind, Device, DeviceId, RetryPolicy, RetryStats, ScatterItem, TimingModel};
pub use dram::DramModel;
pub use fault::{
    ConnFaultConfig, ConnFaultPlan, ConnFaultStats, FaultConfig, FaultPlan, FaultStats, FaultyConn,
    FaultyStore,
};
pub use file::{FileStore, FileStoreConfig};
pub use hdd::HddModel;
pub use hierarchy::MemoryHierarchy;
pub use page_cache::PageCacheModel;
pub use ssd::SsdModel;
pub use stats::DeviceStats;
pub use store::{BlockStore, DataStore};
pub use trace::{AccessTrace, TraceEvent};

use std::error::Error;
use std::fmt;

/// Errors surfaced by the storage simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A read addressed a slot that holds no block.
    MissingBlock {
        /// Device that was addressed.
        device: String,
        /// Physical slot address.
        addr: u64,
    },
    /// An access addressed a slot beyond the device capacity.
    OutOfCapacity {
        /// Device that was addressed.
        device: String,
        /// Physical slot address.
        addr: u64,
        /// Device capacity in slots.
        capacity: u64,
    },
    /// A storage backend (e.g. the file-backed store) failed an I/O
    /// operation or rejected malformed on-disk state.
    Backend {
        /// Backing path (or other backend identifier).
        path: String,
        /// What failed.
        reason: String,
    },
    /// A transient device fault (bus glitch, recoverable media error):
    /// the same access may succeed if retried. Injected by
    /// [`fault::FaultyStore`]; [`device::Device`] retries these with
    /// capped exponential backoff charged in simulated time.
    TransientFault {
        /// Device that was addressed.
        device: String,
        /// Physical slot address (0 for whole-device ops like sync).
        addr: u64,
        /// The operation that faulted (`"get"`, `"put"`, `"sync"`, ...).
        op: &'static str,
    },
    /// A permanent slot failure (dead sector): retrying cannot help and
    /// the slot's contents are unrecoverable from this device.
    PermanentFault {
        /// Device that was addressed.
        device: String,
        /// Physical slot address.
        addr: u64,
    },
}

impl StorageError {
    /// Whether retrying the same access may succeed. Only transient
    /// faults qualify; everything else (missing blocks, capacity, backend
    /// I/O failures, dead slots) is deterministic and must surface.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::TransientFault { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::MissingBlock { device, addr } => {
                write!(f, "no block stored at address {addr} on device {device}")
            }
            StorageError::OutOfCapacity {
                device,
                addr,
                capacity,
            } => {
                write!(
                    f,
                    "address {addr} beyond capacity {capacity} of device {device}"
                )
            }
            StorageError::Backend { path, reason } => {
                write!(f, "storage backend {path}: {reason}")
            }
            StorageError::TransientFault { device, addr, op } => {
                write!(
                    f,
                    "transient {op} fault at address {addr} on device {device}"
                )
            }
            StorageError::PermanentFault { device, addr } => {
                write!(
                    f,
                    "permanent slot failure at address {addr} on device {device}"
                )
            }
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_descriptive() {
        let err = StorageError::MissingBlock {
            device: "hdd".into(),
            addr: 12,
        };
        assert!(err.to_string().contains("address 12"));
        let err = StorageError::OutOfCapacity {
            device: "hdd".into(),
            addr: 9,
            capacity: 4,
        };
        assert!(err.to_string().contains("capacity 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();
    }
}

//! An OS page-cache model layered over a storage timing model.
//!
//! The paper's testbed runs on Linux with 16 GB of RAM, so its measured
//! HDD numbers are filtered through the kernel page cache — the likely
//! reason some of its measurements (notably shuffle throughput) exceed
//! raw-device capabilities. This wrapper reproduces that effect for
//! ablations: reads of cached pages cost DRAM-copy time, writes are
//! absorbed write-back and flushed in the background against the
//! underlying device model.
//!
//! The default experiment pipeline does **not** use this wrapper (the
//! calibrated raw-device model already matches the paper's per-access
//! latencies); `ablation_page_cache` quantifies how much of the paper's
//! headroom a cache of a given size would explain.

use crate::clock::SimDuration;
use crate::device::{AccessKind, TimingModel};
use std::collections::HashMap;

/// Parameters of the page-cache model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PageCacheParams {
    /// Cache capacity in pages.
    pub capacity_pages: u64,
    /// Page size in bytes (Linux: 4096).
    pub page_bytes: u64,
    /// Cost of serving one cached page (DRAM copy + syscall overhead).
    pub hit_nanos: u64,
    /// Fraction of write-back cost charged synchronously (the rest is
    /// assumed flushed during idle time). 1.0 = fully synchronous.
    pub writeback_sync_fraction: f64,
}

impl PageCacheParams {
    /// A cache like the paper's testbed could offer: several GB of 4 KB
    /// pages, ~1 µs per cached page, write-back mostly asynchronous.
    pub fn linux_16gb() -> Self {
        Self {
            capacity_pages: (8u64 << 30) / 4096, // 8 GB usable for the cache
            page_bytes: 4096,
            hit_nanos: 1_000,
            writeback_sync_fraction: 0.2,
        }
    }
}

/// LRU write-back page cache over an inner timing model.
#[derive(Debug)]
pub struct PageCacheModel<M> {
    inner: M,
    params: PageCacheParams,
    /// page index → last-use tick (monotone counter LRU).
    resident: HashMap<u64, u64>,
    /// Dirty pages awaiting write-back.
    dirty: HashMap<u64, bool>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<M: TimingModel> PageCacheModel<M> {
    /// Wraps `inner` with a page cache.
    pub fn new(inner: M, params: PageCacheParams) -> Self {
        assert!(
            params.capacity_pages > 0,
            "cache must hold at least one page"
        );
        assert!(params.page_bytes > 0, "page size must be positive");
        assert!((0.0..=1.0).contains(&params.writeback_sync_fraction));
        Self {
            inner,
            params,
            resident: HashMap::new(),
            dirty: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all page touches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn touch(&mut self, page: u64) {
        self.tick += 1;
        self.resident.insert(page, self.tick);
        if self.resident.len() as u64 > self.params.capacity_pages {
            // Evict the least recently used page.
            if let Some((&lru, _)) = self.resident.iter().min_by_key(|(_, &t)| t) {
                self.resident.remove(&lru);
                self.dirty.remove(&lru);
            }
        }
    }

    fn pages_of(&self, offset: u64, bytes: u64) -> (u64, u64) {
        let first = offset / self.params.page_bytes;
        let last = (offset + bytes.max(1) - 1) / self.params.page_bytes;
        (first, last)
    }
}

impl<M: TimingModel> TimingModel for PageCacheModel<M> {
    fn access_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration {
        let (first, last) = self.pages_of(offset, bytes);
        let mut cost = SimDuration::ZERO;
        for page in first..=last {
            let resident = self.resident.contains_key(&page);
            match kind {
                AccessKind::Read => {
                    if resident {
                        self.hits += 1;
                        cost += SimDuration::from_nanos(self.params.hit_nanos);
                    } else {
                        self.misses += 1;
                        cost += self.inner.access_cost(
                            AccessKind::Read,
                            page * self.params.page_bytes,
                            self.params.page_bytes,
                        );
                    }
                    self.touch(page);
                }
                AccessKind::Write => {
                    // Write-back: absorb into the cache, charge the sync
                    // fraction of the device cost.
                    self.hits += u64::from(resident);
                    self.misses += u64::from(!resident);
                    let device = self.inner.access_cost(
                        AccessKind::Write,
                        page * self.params.page_bytes,
                        self.params.page_bytes,
                    );
                    let sync_nanos = (device.as_nanos() as f64
                        * self.params.writeback_sync_fraction)
                        .round() as u64;
                    cost += SimDuration::from_nanos(self.params.hit_nanos + sync_nanos);
                    self.touch(page);
                    self.dirty.insert(page, true);
                }
            }
        }
        cost
    }

    fn streaming_cost(&mut self, kind: AccessKind, offset: u64, bytes: u64) -> SimDuration {
        // Large streaming runs bypass the per-page loop for cost purposes
        // but still warm/dirty the pages they cover.
        let (first, last) = self.pages_of(offset, bytes);
        for page in first..=last {
            self.touch(page);
            if kind == AccessKind::Write {
                self.dirty.insert(page, true);
            }
        }
        match kind {
            AccessKind::Read => self.inner.streaming_cost(kind, offset, bytes),
            AccessKind::Write => {
                let device = self.inner.streaming_cost(kind, offset, bytes);
                let sync =
                    (device.as_nanos() as f64 * self.params.writeback_sync_fraction).round() as u64;
                SimDuration::from_nanos(sync)
            }
        }
    }

    fn sequential_bandwidth(&self, kind: AccessKind) -> f64 {
        self.inner.sequential_bandwidth(kind)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.resident.clear();
        self.dirty.clear();
        // The recency tick must reset with the residency map it orders:
        // leaving it running would make a reset model serialize different
        // state words than a fresh one, breaking snapshot determinism
        // across a reset-then-save (`Device::reset_accounting` followed
        // by `Device::save_state`).
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    fn state_words(&self) -> Vec<u64> {
        // Sorted by page so the serialization is deterministic regardless
        // of hash-map iteration order.
        let mut words = vec![self.tick, self.hits, self.misses];
        let mut resident: Vec<(u64, u64)> = self.resident.iter().map(|(p, t)| (*p, *t)).collect();
        resident.sort_unstable();
        words.push(resident.len() as u64);
        for (page, tick) in resident {
            words.push(page);
            words.push(tick);
        }
        let mut dirty: Vec<u64> = self.dirty.keys().copied().collect();
        dirty.sort_unstable();
        words.push(dirty.len() as u64);
        words.extend(dirty);
        let inner = self.inner.state_words();
        words.push(inner.len() as u64);
        words.extend(inner);
        words
    }

    fn restore_state_words(&mut self, words: &[u64]) {
        let mut it = words.iter().copied();
        let mut next = || it.next().expect("malformed page-cache timing state");
        self.tick = next();
        self.hits = next();
        self.misses = next();
        self.resident.clear();
        for _ in 0..next() {
            let page = next();
            let tick = next();
            self.resident.insert(page, tick);
        }
        self.dirty.clear();
        for _ in 0..next() {
            let page = next();
            self.dirty.insert(page, true);
        }
        let inner_len = next() as usize;
        let inner: Vec<u64> = (0..inner_len).map(|_| next()).collect();
        self.inner.restore_state_words(&inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::HddModel;

    fn cached() -> PageCacheModel<HddModel> {
        PageCacheModel::new(HddModel::paper_calibrated(), PageCacheParams::linux_16gb())
    }

    #[test]
    fn repeat_reads_hit_the_cache() {
        let mut model = cached();
        let cold = model.access_cost(AccessKind::Read, 0, 4096);
        let warm = model.access_cost(AccessKind::Read, 0, 4096);
        assert!(warm < cold / 10, "warm {warm} vs cold {cold}");
        assert_eq!(model.hits(), 1);
        assert_eq!(model.misses(), 1);
    }

    #[test]
    fn writes_are_mostly_absorbed() {
        let mut raw = HddModel::paper_calibrated();
        let device = raw.access_cost(AccessKind::Write, 1 << 20, 4096);
        let mut model = cached();
        let absorbed = model.access_cost(AccessKind::Write, 1 << 20, 4096);
        assert!(absorbed < device, "absorbed {absorbed} vs device {device}");
    }

    #[test]
    fn lru_evicts_beyond_capacity() {
        let mut model = PageCacheModel::new(
            HddModel::paper_calibrated(),
            PageCacheParams {
                capacity_pages: 2,
                ..PageCacheParams::linux_16gb()
            },
        );
        model.access_cost(AccessKind::Read, 0, 4096); // page 0
        model.access_cost(AccessKind::Read, 4096, 4096); // page 1
        model.access_cost(AccessKind::Read, 8192, 4096); // page 2 evicts page 0
        let re_read = model.access_cost(AccessKind::Read, 0, 4096);
        assert!(
            re_read.as_micros_f64() > 10.0,
            "page 0 should have been evicted"
        );
    }

    #[test]
    fn hit_rate_reported() {
        let mut model = cached();
        model.access_cost(AccessKind::Read, 0, 4096);
        model.access_cost(AccessKind::Read, 0, 4096);
        model.access_cost(AccessKind::Read, 0, 4096);
        assert!((model.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn multi_page_access_counts_each_page() {
        let mut model = cached();
        model.access_cost(AccessKind::Read, 0, 16384); // 4 pages
        assert_eq!(model.misses(), 4);
        model.access_cost(AccessKind::Read, 0, 16384);
        assert_eq!(model.hits(), 4);
    }

    #[test]
    fn reset_clears_cache_state() {
        let mut model = cached();
        model.access_cost(AccessKind::Read, 0, 4096);
        model.reset();
        assert_eq!(model.hits() + model.misses(), 0);
        let cold_again = model.access_cost(AccessKind::Read, 0, 4096);
        assert!(cold_again.as_micros_f64() > 10.0);
    }

    /// Regression: `reset()` once left the recency tick running, so a
    /// reset model serialized different state words than a fresh one —
    /// a reset-then-snapshot was not reproducible.
    #[test]
    fn reset_model_serializes_like_a_fresh_one() {
        let mut model = cached();
        model.access_cost(AccessKind::Read, 0, 4096);
        model.access_cost(AccessKind::Write, 8192, 4096);
        model.reset();
        assert_eq!(model.state_words(), cached().state_words());
    }

    /// Hit/miss counters (and residency, and the tick ordering it) must
    /// round-trip through `state_words`/`restore_state_words`, so a
    /// restored run charges byte-identical costs and reports the same
    /// ablation statistics.
    #[test]
    fn counters_and_residency_roundtrip_through_state_words() {
        let mut model = cached();
        model.access_cost(AccessKind::Read, 0, 4096);
        model.access_cost(AccessKind::Read, 0, 4096);
        model.access_cost(AccessKind::Write, 1 << 20, 4096);
        let words = model.state_words();

        let mut restored = cached();
        restored.restore_state_words(&words);
        assert_eq!(restored.hits(), model.hits());
        assert_eq!(restored.misses(), model.misses());
        assert_eq!(restored.state_words(), words);
        // Behavior continues identically: the next access costs the same.
        let a = model.access_cost(AccessKind::Read, 0, 4096);
        let b = restored.access_cost(AccessKind::Read, 0, 4096);
        assert_eq!(a, b);
    }
}

//! Solid-state-drive timing model.
//!
//! The paper evaluates on an HDD only, but its discussion (§5.3) invites
//! the question of how H-ORAM's advantage shifts on storage with cheap
//! random reads. This model supports that ablation: constant per-op
//! latency (no seeks), asymmetric read/write bandwidth, and an optional
//! write-amplification factor for sustained random writes.

use crate::clock::SimDuration;
use crate::device::{AccessKind, TimingModel};

/// Timing parameters for an SSD.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SsdParams {
    /// Per-operation read latency in nanoseconds (flash page read + FTL).
    pub read_latency_nanos: u64,
    /// Per-operation write latency in nanoseconds (program + FTL).
    pub write_latency_nanos: u64,
    /// Read bandwidth, bytes per second.
    pub read_bandwidth: f64,
    /// Write bandwidth, bytes per second.
    pub write_bandwidth: f64,
    /// Multiplier (≥ 1.0) applied to random write transfer time, modelling
    /// garbage-collection amplification.
    pub random_write_amplification: f64,
    /// Per-operation latency for *queued* commands, nanoseconds. Flash
    /// services independent page reads from parallel dies, so at queue
    /// depth ≥ 8 the per-command latency the host observes amortizes to a
    /// fraction of the cold QD1 latency.
    pub queued_latency_nanos: u64,
}

impl SsdParams {
    /// A mid-range 2019 SATA SSD, contemporaneous with the paper's setup.
    pub fn sata_2019() -> Self {
        Self {
            read_latency_nanos: 80_000,  // 80 µs
            write_latency_nanos: 60_000, // 60 µs (DRAM-buffered)
            read_bandwidth: 520.0e6,
            write_bandwidth: 480.0e6,
            random_write_amplification: 1.6,
            queued_latency_nanos: 20_000, // QD≥8 amortized command latency
        }
    }
}

/// A flash-storage timing model.
#[derive(Debug, Clone)]
pub struct SsdModel {
    params: SsdParams,
}

impl SsdModel {
    /// Creates a model from explicit parameters.
    pub fn new(params: SsdParams) -> Self {
        assert!(params.read_bandwidth > 0.0 && params.write_bandwidth > 0.0);
        assert!(params.random_write_amplification >= 1.0);
        Self { params }
    }

    /// A mid-range 2019 SATA SSD.
    pub fn sata_2019() -> Self {
        Self::new(SsdParams::sata_2019())
    }

    /// The model's parameters.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }
}

impl TimingModel for SsdModel {
    fn access_cost(&mut self, kind: AccessKind, _offset: u64, bytes: u64) -> SimDuration {
        let (latency, bandwidth, amp) = match kind {
            AccessKind::Read => (
                self.params.read_latency_nanos,
                self.params.read_bandwidth,
                1.0,
            ),
            AccessKind::Write => (
                self.params.write_latency_nanos,
                self.params.write_bandwidth,
                self.params.random_write_amplification,
            ),
        };
        let transfer = bytes as f64 / bandwidth * 1e9 * amp;
        SimDuration::from_nanos(latency + transfer.round() as u64)
    }

    fn streaming_cost(&mut self, kind: AccessKind, _offset: u64, bytes: u64) -> SimDuration {
        let (latency, bandwidth) = match kind {
            AccessKind::Read => (self.params.read_latency_nanos, self.params.read_bandwidth),
            AccessKind::Write => (self.params.write_latency_nanos, self.params.write_bandwidth),
        };
        let transfer = bytes as f64 / bandwidth * 1e9;
        SimDuration::from_nanos(latency + transfer.round() as u64)
    }

    fn scatter_costs(
        &mut self,
        kind: AccessKind,
        offsets: &[u64],
        bytes_per_op: u64,
    ) -> Vec<SimDuration> {
        // Die-level parallelism: the first command pays the cold latency,
        // queued follow-ups the amortized floor. Transfer terms (and write
        // amplification) are charged per command as for random access.
        offsets
            .iter()
            .enumerate()
            .map(|(position, &offset)| {
                let cost = self.access_cost(kind, offset, bytes_per_op);
                if position == 0 {
                    cost
                } else {
                    let cold = match kind {
                        AccessKind::Read => self.params.read_latency_nanos,
                        AccessKind::Write => self.params.write_latency_nanos,
                    };
                    cost.saturating_sub(SimDuration::from_nanos(
                        cold.saturating_sub(self.params.queued_latency_nanos),
                    ))
                }
            })
            .collect()
    }

    fn sequential_bandwidth(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Read => self.params.read_bandwidth,
            AccessKind::Write => self.params.write_bandwidth,
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_locality_penalty() {
        let mut m = SsdModel::sata_2019();
        let a = m.access_cost(AccessKind::Read, 0, 1024);
        let b = m.access_cost(AccessKind::Read, 400 << 30, 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn random_writes_pay_amplification() {
        let mut m = SsdModel::sata_2019();
        let random = m.access_cost(AccessKind::Write, 0, 1 << 20);
        let streaming = m.streaming_cost(AccessKind::Write, 0, 1 << 20);
        assert!(random > streaming);
    }

    #[test]
    fn ssd_random_read_beats_hdd_random_read() {
        use crate::hdd::HddModel;
        let mut ssd = SsdModel::sata_2019();
        let mut hdd = HddModel::paper_calibrated();
        hdd.access_cost(AccessKind::Read, 0, 1024);
        let h = hdd.access_cost(AccessKind::Read, 1 << 30, 1024);
        let s = ssd.access_cost(AccessKind::Read, 1 << 30, 1024);
        // HDD random ≈ 100 µs; SSD ≈ 80 µs — close, but SSD wins and has no
        // distance dependence.
        assert!(s < h);
    }

    #[test]
    fn queued_reads_amortize_latency() {
        let mut m = SsdModel::sata_2019();
        let offsets = [0u64, 1 << 20, 2 << 20, 3 << 20];
        let costs = m.scatter_costs(AccessKind::Read, &offsets, 1024);
        assert!(
            costs[1] < costs[0],
            "queued {:?} should beat cold {:?}",
            costs[1],
            costs[0]
        );
        assert_eq!(costs[1], costs[2]);
        let mut cold = SsdModel::sata_2019();
        assert_eq!(costs[0], cold.access_cost(AccessKind::Read, 0, 1024));
    }

    #[test]
    #[should_panic]
    fn sub_unit_amplification_rejected() {
        SsdModel::new(SsdParams {
            random_write_amplification: 0.5,
            ..SsdParams::sata_2019()
        });
    }
}

//! Per-device access accounting.

use crate::clock::SimDuration;
use crate::device::AccessKind;

/// Counters accumulated by a [`crate::device::Device`].
///
/// `busy` is the sum of simulated access costs — the device-occupancy time
/// an experiment apportions to serial or overlapped execution as its
/// protocol dictates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DeviceStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Bytes charged for reads.
    pub bytes_read: u64,
    /// Bytes charged for writes.
    pub bytes_written: u64,
    /// Total simulated occupancy (`busy_read + busy_write`).
    pub busy: SimDuration,
    /// Occupancy attributable to reads. Separated so protocols that
    /// pipeline a read stream against a write stream (H-ORAM's partition
    /// shuffle) can compute `max(read, write)` wall-clock time.
    pub busy_read: SimDuration,
    /// Occupancy attributable to writes.
    pub busy_write: SimDuration,
}

impl DeviceStats {
    /// Records one access.
    pub fn record(&mut self, kind: AccessKind, bytes: u64, cost: SimDuration) {
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                self.bytes_read += bytes;
                self.busy_read += cost;
            }
            AccessKind::Write => {
                self.writes += 1;
                self.bytes_written += bytes;
                self.busy_write += cost;
            }
        }
        self.busy += cost;
    }

    /// Total operation count.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Mean cost per operation, or zero if no operations.
    pub fn mean_op_cost(&self) -> SimDuration {
        if self.ops() == 0 {
            SimDuration::ZERO
        } else {
            self.busy / self.ops()
        }
    }

    /// Component-wise sum of two stats records.
    pub fn merged(&self, other: &DeviceStats) -> DeviceStats {
        DeviceStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            busy: self.busy + other.busy,
            busy_read: self.busy_read + other.busy_read,
            busy_write: self.busy_write + other.busy_write,
        }
    }

    /// Component-wise difference (`self − earlier`), for interval deltas.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` exceeds `self` in any component.
    pub fn delta_since(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            busy: self.busy - earlier.busy,
            busy_read: self.busy_read - earlier.busy_read,
            busy_write: self.busy_write - earlier.busy_write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_kind() {
        let mut stats = DeviceStats::default();
        stats.record(AccessKind::Read, 100, SimDuration::from_nanos(5));
        stats.record(AccessKind::Write, 200, SimDuration::from_nanos(10));
        stats.record(AccessKind::Read, 50, SimDuration::from_nanos(5));
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.bytes_read, 150);
        assert_eq!(stats.bytes_written, 200);
        assert_eq!(stats.busy.as_nanos(), 20);
        assert_eq!(stats.ops(), 3);
        assert_eq!(stats.bytes(), 350);
    }

    #[test]
    fn mean_op_cost_handles_empty() {
        assert_eq!(DeviceStats::default().mean_op_cost(), SimDuration::ZERO);
        let mut stats = DeviceStats::default();
        stats.record(AccessKind::Read, 1, SimDuration::from_nanos(30));
        stats.record(AccessKind::Read, 1, SimDuration::from_nanos(10));
        assert_eq!(stats.mean_op_cost().as_nanos(), 20);
    }

    #[test]
    fn merged_sums_componentwise() {
        let mut a = DeviceStats::default();
        a.record(AccessKind::Read, 10, SimDuration::from_nanos(1));
        let mut b = DeviceStats::default();
        b.record(AccessKind::Write, 20, SimDuration::from_nanos(2));
        let m = a.merged(&b);
        assert_eq!(m.reads, 1);
        assert_eq!(m.writes, 1);
        assert_eq!(m.bytes(), 30);
        assert_eq!(m.busy.as_nanos(), 3);
    }
}

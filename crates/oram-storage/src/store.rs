//! Sparse block-addressed backing store.
//!
//! Devices store [`SealedBlock`]s at `u64` slot addresses. The store is
//! sparse (a hash map) so simulating a 500 GB device costs memory only for
//! slots actually written — essential for running the paper's 1 GB
//! experiments with payload scaling.

use oram_crypto::seal::SealedBlock;
use std::collections::HashMap;

/// A sparse map from slot address to sealed block.
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    slots: HashMap<u64, SealedBlock>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The block at `addr`, if present.
    pub fn get(&self, addr: u64) -> Option<&SealedBlock> {
        self.slots.get(&addr)
    }

    /// Stores `block` at `addr`, returning the previous occupant.
    pub fn put(&mut self, addr: u64, block: SealedBlock) -> Option<SealedBlock> {
        self.slots.insert(addr, block)
    }

    /// Removes and returns the block at `addr`.
    pub fn remove(&mut self, addr: u64) -> Option<SealedBlock> {
        self.slots.remove(&addr)
    }

    /// Whether `addr` is occupied.
    pub fn contains(&self, addr: u64) -> bool {
        self.slots.contains_key(&addr)
    }

    /// Iterates over `(addr, block)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SealedBlock)> {
        self.slots.iter().map(|(a, b)| (*a, b))
    }

    /// Removes all blocks.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealed(id: u64) -> SealedBlock {
        BlockSealer::new(&MasterKey::from_bytes([0u8; 32]).derive("store", 0)).seal(
            id,
            0,
            &id.to_le_bytes(),
        )
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut store = BlockStore::new();
        assert!(store.is_empty());
        assert!(store.put(5, sealed(5)).is_none());
        assert!(store.contains(5));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(5).unwrap().block_id(), 5);
        let removed = store.remove(5).unwrap();
        assert_eq!(removed.block_id(), 5);
        assert!(store.is_empty());
    }

    #[test]
    fn put_replaces_and_returns_previous() {
        let mut store = BlockStore::new();
        store.put(1, sealed(10));
        let prev = store.put(1, sealed(20)).unwrap();
        assert_eq!(prev.block_id(), 10);
        assert_eq!(store.get(1).unwrap().block_id(), 20);
    }

    #[test]
    fn sparse_addresses_cost_no_intermediate_slots() {
        let mut store = BlockStore::new();
        store.put(0, sealed(0));
        store.put(u64::MAX - 1, sealed(1));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn iter_visits_all() {
        let mut store = BlockStore::new();
        for a in 0..10 {
            store.put(a, sealed(a));
        }
        let mut addrs: Vec<u64> = store.iter().map(|(a, _)| a).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clear_empties() {
        let mut store = BlockStore::new();
        store.put(3, sealed(3));
        store.clear();
        assert!(store.is_empty());
        assert!(!store.contains(3));
    }
}

//! Block-addressed backing stores: the pluggable *data* half of a device.
//!
//! A [`crate::device::Device`] couples a [`DataStore`] (where the sealed
//! bytes live) with a timing model (what an access costs). Two stores
//! exist:
//!
//! * [`BlockStore`] — a sparse in-memory map, the simulation default: a
//!   500 GB device costs memory only for slots actually written.
//! * [`crate::file::FileStore`] — a slot-indexed real file with a
//!   write-back buffer and an undo journal, for durable experiments that
//!   must survive a restart (see the `file` module docs).
//!
//! The trait is deliberately owned-value (`get` returns a clone):
//! file-backed stores cannot hand out references into the file, and the
//! protocol paths either clone anyway or take ownership via `remove`.

use crate::StorageError;
use oram_crypto::seal::SealedBlock;
use std::collections::HashMap;
use std::fmt;

/// Where a device's sealed blocks physically live.
///
/// Implementations must behave like a map from slot address to block:
/// `put` then `get` round-trips, `remove` empties the slot. I/O-backed
/// stores surface failures as [`StorageError::Backend`]; the in-memory
/// store is infallible.
pub trait DataStore: fmt::Debug + Send {
    /// The block at `addr`, if present (cloned/decoded out of the store).
    fn get(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError>;

    /// Stores `block` at `addr`.
    fn put(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError>;

    /// Removes and returns the block at `addr`.
    fn remove(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError>;

    /// Number of occupied slots.
    fn len(&self) -> usize;

    /// Whether no slot is occupied.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all blocks.
    fn clear(&mut self) -> Result<(), StorageError>;

    /// Durability barrier: flush buffered writes to stable storage and
    /// commit them (checkpoint point for crash recovery). No-op for
    /// volatile stores.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Whether the store's contents survive process exit. Durable stores
    /// are *excluded* from state snapshots (the on-disk file is the
    /// authoritative copy); volatile stores embed their blocks.
    fn durable(&self) -> bool;

    /// Every occupied `(addr, block)` pair, for embedding a volatile
    /// store's contents into a snapshot. Order is unspecified.
    fn snapshot_blocks(&mut self) -> Result<Vec<(u64, SealedBlock)>, StorageError>;

    /// Replaces the store's contents with `blocks` (snapshot restore).
    fn install_blocks(&mut self, blocks: Vec<(u64, SealedBlock)>) -> Result<(), StorageError> {
        self.clear()?;
        for (addr, block) in blocks {
            self.put(addr, block)?;
        }
        Ok(())
    }

    /// Drains simulated latency (nanoseconds) the store accrued since the
    /// last drain — e.g. injected latency spikes from
    /// [`crate::fault::FaultyStore`]. The device folds the drained time
    /// into the *cost* of the access that incurred it, so spikes slow the
    /// simulation down without changing the trace shape. Defaults to zero
    /// for stores that never stall.
    fn take_injected_latency_nanos(&mut self) -> u64 {
        0
    }

    /// Whether this store can return [`StorageError::TransientFault`].
    /// Stores that can MUST return `true`: the device then preserves
    /// write payloads across attempts (a clone per `put`) so transient
    /// write faults are retryable. Stores that answer `false` get the
    /// zero-copy write path and, by contract, never fault transiently.
    fn can_fault(&self) -> bool {
        false
    }

    /// Counters of injected faults, when this store (or a store it wraps)
    /// is a [`crate::fault::FaultyStore`]. `None` for honest stores.
    fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        None
    }
}

/// A sparse map from slot address to sealed block.
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    slots: HashMap<u64, SealedBlock>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The block at `addr`, if present.
    pub fn get(&self, addr: u64) -> Option<&SealedBlock> {
        self.slots.get(&addr)
    }

    /// Stores `block` at `addr`, returning the previous occupant.
    pub fn put(&mut self, addr: u64, block: SealedBlock) -> Option<SealedBlock> {
        self.slots.insert(addr, block)
    }

    /// Removes and returns the block at `addr`.
    pub fn remove(&mut self, addr: u64) -> Option<SealedBlock> {
        self.slots.remove(&addr)
    }

    /// Whether `addr` is occupied.
    pub fn contains(&self, addr: u64) -> bool {
        self.slots.contains_key(&addr)
    }

    /// Iterates over `(addr, block)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SealedBlock)> {
        self.slots.iter().map(|(a, b)| (*a, b))
    }

    /// Removes all blocks.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

impl DataStore for BlockStore {
    fn get(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        Ok(BlockStore::get(self, addr).cloned())
    }

    fn put(&mut self, addr: u64, block: SealedBlock) -> Result<(), StorageError> {
        BlockStore::put(self, addr, block);
        Ok(())
    }

    fn remove(&mut self, addr: u64) -> Result<Option<SealedBlock>, StorageError> {
        Ok(BlockStore::remove(self, addr))
    }

    fn len(&self) -> usize {
        BlockStore::len(self)
    }

    fn clear(&mut self) -> Result<(), StorageError> {
        BlockStore::clear(self);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn durable(&self) -> bool {
        false
    }

    fn snapshot_blocks(&mut self) -> Result<Vec<(u64, SealedBlock)>, StorageError> {
        Ok(self.iter().map(|(a, b)| (a, b.clone())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_crypto::seal::BlockSealer;

    fn sealed(id: u64) -> SealedBlock {
        BlockSealer::new(&MasterKey::from_bytes([0u8; 32]).derive("store", 0)).seal(
            id,
            0,
            &id.to_le_bytes(),
        )
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut store = BlockStore::new();
        assert!(store.is_empty());
        assert!(store.put(5, sealed(5)).is_none());
        assert!(store.contains(5));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(5).unwrap().block_id(), 5);
        let removed = store.remove(5).unwrap();
        assert_eq!(removed.block_id(), 5);
        assert!(store.is_empty());
    }

    #[test]
    fn put_replaces_and_returns_previous() {
        let mut store = BlockStore::new();
        store.put(1, sealed(10));
        let prev = store.put(1, sealed(20)).unwrap();
        assert_eq!(prev.block_id(), 10);
        assert_eq!(store.get(1).unwrap().block_id(), 20);
    }

    #[test]
    fn sparse_addresses_cost_no_intermediate_slots() {
        let mut store = BlockStore::new();
        store.put(0, sealed(0));
        store.put(u64::MAX - 1, sealed(1));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn iter_visits_all() {
        let mut store = BlockStore::new();
        for a in 0..10 {
            store.put(a, sealed(a));
        }
        let mut addrs: Vec<u64> = store.iter().map(|(a, _)| a).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clear_empties() {
        let mut store = BlockStore::new();
        store.put(3, sealed(3));
        store.clear();
        assert!(store.is_empty());
        assert!(!store.contains(3));
    }
}

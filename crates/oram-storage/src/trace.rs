//! Bus-level access tracing: the adversary's view.
//!
//! The threat model (paper §2.2) grants the adversary full observation of
//! the memory bus and the I/O bus: for each access it sees *which device*,
//! *which direction*, *which physical address*, *how many bytes*, and
//! *when* — but never plaintext contents (blocks are sealed) and never the
//! control layer's internal state. [`AccessTrace`] records exactly that
//! tuple stream; the leakage analyses in `oram-analysis` and the
//! obliviousness tests consume it.

use crate::clock::SimTime;
use crate::device::{AccessKind, DeviceId};
use parking_lot::Mutex;
use std::sync::Arc;

/// One observable bus event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// Simulated timestamp of the access.
    pub at: SimTime,
    /// Device the access targeted.
    pub device: DeviceId,
    /// Direction.
    pub kind: AccessKind,
    /// Physical slot address (what the adversary reads off the address
    /// lines). Logical identifiers never appear here.
    pub addr: u64,
    /// Bytes transferred.
    pub bytes: u64,
}

/// A shared, append-only recording of bus events.
///
/// Cloning produces another handle to the same buffer, so one trace can
/// observe several devices. Recording is cheap (a mutex push); experiments
/// that do not need traces simply do not attach one.
///
/// # Example
///
/// ```
/// use oram_storage::trace::{AccessTrace, TraceEvent};
/// use oram_storage::device::{AccessKind, DeviceId};
/// use oram_storage::clock::SimTime;
///
/// let trace = AccessTrace::new();
/// trace.record(TraceEvent {
///     at: SimTime::ZERO,
///     device: DeviceId(0),
///     kind: AccessKind::Read,
///     addr: 42,
///     bytes: 1024,
/// });
/// assert_eq!(trace.snapshot()[0].addr, 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AccessTrace {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Copies out all events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Clears the recording (between experiment phases).
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Events targeting one device, in record order.
    pub fn for_device(&self, device: DeviceId) -> Vec<TraceEvent> {
        self.events
            .lock()
            .iter()
            .copied()
            .filter(|e| e.device == device)
            .collect()
    }

    /// The sequence of addresses touched on one device — the core object of
    /// obliviousness arguments.
    pub fn address_sequence(&self, device: DeviceId) -> Vec<u64> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.device == device)
            .map(|e| e.addr)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(device: u16, addr: u64, kind: AccessKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            device: DeviceId(device),
            kind,
            addr,
            bytes: 1024,
        }
    }

    #[test]
    fn records_in_order() {
        let trace = AccessTrace::new();
        trace.record(ev(0, 1, AccessKind::Read));
        trace.record(ev(0, 2, AccessKind::Write));
        let events = trace.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].addr, 1);
        assert_eq!(events[1].addr, 2);
    }

    #[test]
    fn clones_share_the_buffer() {
        let trace = AccessTrace::new();
        let other = trace.clone();
        trace.record(ev(0, 7, AccessKind::Read));
        assert_eq!(other.len(), 1);
        other.clear();
        assert!(trace.is_empty());
    }

    #[test]
    fn device_filtering() {
        let trace = AccessTrace::new();
        trace.record(ev(0, 1, AccessKind::Read));
        trace.record(ev(1, 2, AccessKind::Read));
        trace.record(ev(0, 3, AccessKind::Write));
        assert_eq!(trace.for_device(DeviceId(0)).len(), 2);
        assert_eq!(trace.address_sequence(DeviceId(0)), vec![1, 3]);
        assert_eq!(trace.address_sequence(DeviceId(1)), vec![2]);
    }

    #[test]
    fn serde_roundtrip_of_events() {
        let event = ev(3, 99, AccessKind::Write);
        let json = serde_json::to_string(&event).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(event, back);
    }
}

//! Property tests over the device timing models: the structural facts the
//! simulation's conclusions rest on must hold for arbitrary access
//! sequences, not just the calibration points.

use oram_storage::clock::{SimClock, SimDuration};
use oram_storage::device::{AccessKind, TimingModel};
use oram_storage::dram::DramModel;
use oram_storage::hdd::{HddModel, HddParams};
use oram_storage::ssd::SsdModel;
use proptest::prelude::*;

proptest! {
    /// Costs are always positive and finite for any (kind, offset, size).
    #[test]
    fn costs_are_positive(
        offsets in proptest::collection::vec((any::<bool>(), 0u64..500_000_000_000u64, 1u64..1_000_000), 1..50)
    ) {
        let mut hdd = HddModel::paper_calibrated();
        let mut dram = DramModel::ddr4_2133();
        let mut ssd = SsdModel::sata_2019();
        for (write, offset, bytes) in offsets {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            for model in [&mut hdd as &mut dyn TimingModel, &mut dram, &mut ssd] {
                let cost = model.access_cost(kind, offset, bytes);
                prop_assert!(cost > SimDuration::ZERO);
            }
        }
    }

    /// HDD: farther seeks never cost less than nearer ones, all else equal.
    #[test]
    fn hdd_seek_cost_is_monotone_in_distance(
        base in 0u64..100_000_000_000u64,
        near in 1u64..1_000_000u64,
        extra in 1u64..400_000_000_000u64,
    ) {
        let mk = || {
            let mut m = HddModel::paper_calibrated();
            m.access_cost(AccessKind::Read, base, 1024); // park the head
            m
        };
        let near_cost = mk().access_cost(AccessKind::Read, base + 1024 + near, 1024);
        let far_cost = mk().access_cost(AccessKind::Read, base + 1024 + near + extra, 1024);
        prop_assert!(far_cost >= near_cost, "near {near_cost}, far {far_cost}");
    }

    /// HDD: for the same byte volume, one streaming run never costs more
    /// than the same volume as scattered block accesses.
    #[test]
    fn hdd_streaming_never_loses(blocks in 2u64..200, stride in 2u64..50) {
        let mut scattered = HddModel::paper_calibrated();
        let mut total = SimDuration::ZERO;
        for i in 0..blocks {
            total += scattered.access_cost(AccessKind::Read, i * stride * 4096, 1024);
        }
        let mut streaming = HddModel::paper_calibrated();
        let run = streaming.streaming_cost(AccessKind::Read, 0, blocks * 1024);
        prop_assert!(run <= total, "streaming {run} vs scattered {total}");
    }

    /// The simulated clock is monotone under arbitrary advances.
    #[test]
    fn clock_is_monotone(steps in proptest::collection::vec(0u64..1_000_000_000, 1..100)) {
        let clock = SimClock::new();
        let mut last = clock.now();
        for step in steps {
            let now = clock.advance(SimDuration::from_nanos(step));
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// Cost models are deterministic: the same access sequence yields the
    /// same total cost.
    #[test]
    fn models_are_deterministic(
        seq in proptest::collection::vec((0u64..1_000_000_000u64, 1u64..100_000), 1..40)
    ) {
        let run = |params: HddParams| {
            let mut m = HddModel::new(params);
            seq.iter()
                .map(|&(offset, bytes)| m.access_cost(AccessKind::Read, offset, bytes))
                .fold(SimDuration::ZERO, |a, b| a + b)
        };
        prop_assert_eq!(run(HddParams::dac2019()), run(HddParams::dac2019()));
    }

    /// Transfer cost grows (weakly) with size at a fixed location.
    #[test]
    fn bigger_transfers_cost_more(bytes in 1u64..10_000_000) {
        let mut small = HddModel::paper_calibrated();
        let mut large = HddModel::paper_calibrated();
        let a = small.access_cost(AccessKind::Read, 0, bytes);
        let b = large.access_cost(AccessKind::Read, 0, bytes + 4096);
        prop_assert!(b >= a);
    }
}

//! Bursty workload: a hot region that periodically relocates.
//!
//! Stresses exactly the mechanism H-ORAM relies on — the in-memory cache —
//! by invalidating locality every `burst_len` requests. Used by ablation
//! benches to chart how the hit rate (and thus the effective `c`) degrades
//! when the working set shifts faster than an access period.

use crate::hotspot::HotspotWorkload;
use crate::WorkloadGenerator;
use oram_crypto::rng::DeterministicRng;
use oram_protocols::types::Request;
use rand::Rng;

/// A hotspot workload whose hot region jumps every `burst_len` requests.
#[derive(Debug, Clone)]
pub struct BurstWorkload {
    inner: HotspotWorkload,
    burst_len: u64,
    issued: u64,
    jump_rng: DeterministicRng,
}

impl BurstWorkload {
    /// Creates a bursty 80/20 workload whose hot region jumps every
    /// `burst_len` requests.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len == 0` (see also [`HotspotWorkload::new`]).
    pub fn new(capacity: u64, burst_len: u64, seed: u64) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        Self {
            inner: HotspotWorkload::paper_default(capacity, seed),
            burst_len,
            issued: 0,
            jump_rng: DeterministicRng::from_u64_seed(seed ^ 0xb5b5_0001),
        }
    }

    /// The current hot region of the underlying hotspot generator.
    pub fn hot_region(&self) -> (u64, u64) {
        self.inner.hot_region()
    }
}

impl WorkloadGenerator for BurstWorkload {
    fn next_request(&mut self) -> Request {
        if self.issued > 0 && self.issued.is_multiple_of(self.burst_len) {
            let start = self.jump_rng.gen_range(0..self.inner.capacity());
            self.inner.set_hot_start(start);
        }
        self.issued += 1;
        self.inner.next_request()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_region_moves_between_bursts() {
        let mut workload = BurstWorkload::new(10_000, 100, 1);
        let first = workload.hot_region();
        workload.generate(250);
        let later = workload.hot_region();
        assert_ne!(first, later, "hot region should have jumped");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = BurstWorkload::new(500, 50, 9).generate(200);
        let b = BurstWorkload::new(500, 50, 9).generate(200);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_stay_in_range() {
        let mut workload = BurstWorkload::new(97, 10, 4);
        assert!(workload.generate(300).iter().all(|r| r.id.0 < 97));
    }
}

//! The paper's 80/20 hotspot workload (§5.2.1).

use crate::WorkloadGenerator;
use oram_crypto::rng::DeterministicRng;
use oram_protocols::types::Request;
use rand::Rng;

/// Requests concentrate on a contiguous hot region with probability
/// `hot_probability`; otherwise they target a uniformly random block.
///
/// # Example
///
/// ```
/// use oram_workload::{HotspotWorkload, WorkloadGenerator};
///
/// let mut workload = HotspotWorkload::paper_default(1000, 42);
/// let requests = workload.generate(100);
/// assert!(requests.iter().all(|r| r.id.0 < 1000));
/// ```
#[derive(Debug, Clone)]
pub struct HotspotWorkload {
    capacity: u64,
    hot_start: u64,
    hot_len: u64,
    hot_probability: f64,
    write_ratio: f64,
    payload_len: usize,
    rng: DeterministicRng,
}

impl HotspotWorkload {
    /// The paper's configuration: 80 % of requests in a hot region
    /// covering 20 % of the dataset, read-only stream.
    pub fn paper_default(capacity: u64, seed: u64) -> Self {
        Self::new(capacity, 0.8, 0.2, 0.0, 0, seed)
    }

    /// Full control: hot region of `hot_fraction · capacity` blocks hit
    /// with probability `hot_probability`; `write_ratio` of requests are
    /// writes carrying `payload_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics unless probabilities and fractions are within `[0, 1]` and
    /// `capacity > 0`.
    pub fn new(
        capacity: u64,
        hot_probability: f64,
        hot_fraction: f64,
        write_ratio: f64,
        payload_len: usize,
        seed: u64,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&hot_probability),
            "hot probability in [0,1]"
        );
        assert!((0.0..=1.0).contains(&hot_fraction), "hot fraction in [0,1]");
        assert!((0.0..=1.0).contains(&write_ratio), "write ratio in [0,1]");
        let hot_len = ((capacity as f64 * hot_fraction).round() as u64).clamp(1, capacity);
        Self {
            capacity,
            hot_start: 0,
            hot_len,
            hot_probability,
            write_ratio,
            payload_len,
            rng: DeterministicRng::from_u64_seed(seed ^ 0x8020_8020),
        }
    }

    /// Moves the hot region (used by the burst workload and ablations).
    pub fn set_hot_start(&mut self, start: u64) {
        self.hot_start = start % self.capacity;
    }

    /// The hot region as `(start, len)`.
    pub fn hot_region(&self) -> (u64, u64) {
        (self.hot_start, self.hot_len)
    }

    fn draw_id(&mut self) -> u64 {
        if self.rng.gen_bool(self.hot_probability) {
            let offset = self.rng.gen_range(0..self.hot_len);
            (self.hot_start + offset) % self.capacity
        } else {
            self.rng.gen_range(0..self.capacity)
        }
    }
}

impl WorkloadGenerator for HotspotWorkload {
    fn next_request(&mut self) -> Request {
        let id = self.draw_id();
        if self.write_ratio > 0.0 && self.rng.gen_bool(self.write_ratio) {
            let mut payload = vec![0u8; self.payload_len];
            self.rng.fill(payload.as_mut_slice());
            Request::write(id, payload)
        } else {
            Request::read(id)
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighty_percent_land_in_the_hot_region() {
        let mut workload = HotspotWorkload::paper_default(10_000, 7);
        let (start, len) = workload.hot_region();
        let requests = workload.generate(20_000);
        let hot = requests
            .iter()
            .filter(|r| r.id.0 >= start && r.id.0 < start + len)
            .count();
        let ratio = hot as f64 / requests.len() as f64;
        // 80 % hot + 20 %·(20 % of uniform also falls in region) = 84 %.
        assert!((0.81..0.87).contains(&ratio), "hot ratio {ratio}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = HotspotWorkload::paper_default(100, 3).generate(50);
        let b = HotspotWorkload::paper_default(100, 3).generate(50);
        assert_eq!(a, b);
        let c = HotspotWorkload::paper_default(100, 4).generate(50);
        assert_ne!(a, c);
    }

    #[test]
    fn write_ratio_produces_writes() {
        let mut workload = HotspotWorkload::new(100, 0.8, 0.2, 0.5, 16, 1);
        let requests = workload.generate(1000);
        let writes = requests.iter().filter(|r| r.op.is_write()).count();
        assert!((350..650).contains(&writes), "writes {writes}");
        for r in &requests {
            if let oram_protocols::types::RequestOp::Write(payload) = &r.op {
                assert_eq!(payload.len(), 16);
            }
        }
    }

    #[test]
    fn moved_hot_region_wraps() {
        let mut workload = HotspotWorkload::new(100, 1.0, 0.1, 0.0, 0, 2);
        workload.set_hot_start(95);
        let requests = workload.generate(200);
        assert!(requests.iter().all(|r| r.id.0 >= 95 || r.id.0 < 5));
    }

    #[test]
    fn all_ids_in_range() {
        let mut workload = HotspotWorkload::paper_default(37, 9);
        assert!(workload.generate(500).iter().all(|r| r.id.0 < 37));
    }

    #[test]
    #[should_panic(expected = "hot probability")]
    fn invalid_probability_rejected() {
        HotspotWorkload::new(10, 1.5, 0.2, 0.0, 0, 1);
    }
}

//! Workload generation and trace handling for the H-ORAM reproduction.
//!
//! The paper's evaluation drives both systems with a synthetic request
//! stream: "we randomly generate a sequence of requests in which 80 % of
//! chance it will distribute in a certain area, and 20 % of chance it
//! requests a random data" (§5.2.1). [`hotspot::HotspotWorkload`] is that
//! generator; the other generators support ablations beyond the paper:
//!
//! * [`uniform::UniformWorkload`] — worst case for caching (every access
//!   equally likely to miss);
//! * [`zipf::ZipfWorkload`] — heavy-tailed popularity, the standard
//!   realistic skew model;
//! * [`sequential::SequentialWorkload`] — scan patterns (file serving);
//! * [`burst::BurstWorkload`] — a hot region that periodically jumps,
//!   stressing the cache across periods.
//!
//! All generators are deterministic in their seed and implement
//! [`WorkloadGenerator`]; [`trace::RequestTrace`] records, saves, loads
//! and replays streams so experiments are exactly repeatable across
//! systems (H-ORAM and the Path ORAM baseline see byte-identical request
//! sequences).
//!
//! For the multi-tenant serving layer, [`serve::TenantSchedule`] turns
//! any generator into a deterministic `(tenant, request)` arrival
//! sequence — sharded, interleaved per tenant, or with a deliberately
//! hot tenant — that the `horam-server` crate and the sequential
//! baselines consume in byte-identical form.

pub mod burst;
pub mod hotspot;
pub mod sequential;
pub mod serve;
pub mod stats;
pub mod trace;
pub mod uniform;
pub mod zipf;

pub use burst::BurstWorkload;
pub use hotspot::HotspotWorkload;
pub use sequential::SequentialWorkload;
pub use serve::{TenantArrival, TenantSchedule};
pub use stats::WorkloadStats;
pub use trace::RequestTrace;
pub use uniform::UniformWorkload;
pub use zipf::ZipfWorkload;

use oram_protocols::types::Request;

/// A deterministic stream of ORAM requests.
pub trait WorkloadGenerator {
    /// Produces the next request.
    fn next_request(&mut self) -> Request;

    /// Number of distinct logical blocks the generator addresses.
    fn capacity(&self) -> u64;

    /// Produces `count` requests.
    fn generate(&mut self, count: usize) -> Vec<Request> {
        (0..count).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_collects_from_next_request() {
        let mut workload = UniformWorkload::new(100, 0.0, 1);
        let requests = workload.generate(25);
        assert_eq!(requests.len(), 25);
        assert!(requests.iter().all(|r| r.id.0 < 100));
    }

    #[test]
    fn generators_are_object_safe() {
        let mut boxed: Box<dyn WorkloadGenerator> = Box::new(HotspotWorkload::paper_default(64, 2));
        let request = boxed.next_request();
        assert!(request.id.0 < 64);
    }
}

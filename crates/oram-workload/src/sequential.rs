//! Sequential scan workload — file-serving / backup patterns.

use crate::WorkloadGenerator;
use oram_protocols::types::Request;

/// Requests walk the address space in order, wrapping at capacity;
/// an optional stride models interleaved readers.
#[derive(Debug, Clone)]
pub struct SequentialWorkload {
    capacity: u64,
    cursor: u64,
    stride: u64,
}

impl SequentialWorkload {
    /// A stride-1 scan from block 0.
    pub fn new(capacity: u64) -> Self {
        Self::with_stride(capacity, 1)
    }

    /// A strided scan (`stride` co-prime with capacity covers all blocks).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `stride == 0`.
    pub fn with_stride(capacity: u64, stride: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            capacity,
            cursor: 0,
            stride,
        }
    }
}

impl WorkloadGenerator for SequentialWorkload {
    fn next_request(&mut self) -> Request {
        let id = self.cursor;
        self.cursor = (self.cursor + self.stride) % self.capacity;
        Request::read(id)
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_in_order_and_wraps() {
        let mut workload = SequentialWorkload::new(3);
        let ids: Vec<u64> = workload.generate(7).iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn stride_covers_coprime_space() {
        let mut workload = SequentialWorkload::with_stride(5, 2);
        let ids: Vec<u64> = workload.generate(5).iter().map(|r| r.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}

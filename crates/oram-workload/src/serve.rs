//! Multi-tenant arrival schedules — the serving-layer workload path.
//!
//! The generators in this crate produce single request streams. A serving
//! layer needs more: *who* submits each request and in what interleaved
//! order. [`TenantSchedule`] is that shape — a deterministic sequence of
//! `(tenant, request)` arrivals buildable from any
//! [`WorkloadGenerator`], so the Zipf/hotspot/burst generators drive the
//! multi-tenant server exactly as they drive the single-user evaluation:
//!
//! * [`TenantSchedule::shard`] — deal one stream round-robin across `t`
//!   tenants (tenants share the dataset and its hot set);
//! * [`TenantSchedule::interleave`] — per-tenant generators merged
//!   round-robin (tenants with disjoint or different-skew traffic);
//! * [`TenantSchedule::with_hot_tenant`] — one tenant submits `weight`×
//!   as often as each other tenant, the fairness stress case.
//!
//! Schedules convert back to flat [`RequestTrace`]s (for the sequential
//! baseline) and split into per-tenant queues (for
//! `horam_core::multi_user::run_multi_user`), so every execution mode
//! sees byte-identical requests.

use crate::trace::RequestTrace;
use crate::WorkloadGenerator;
use oram_protocols::types::{BlockId, Request};

/// One arrival: which tenant submits which request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantArrival {
    /// The submitting tenant's index.
    pub tenant: u32,
    /// The request.
    pub request: Request,
}

/// A deterministic multi-tenant arrival sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSchedule {
    /// Label describing how the schedule was built.
    pub label: String,
    /// The arrivals, in submission order.
    pub arrivals: Vec<TenantArrival>,
}

impl TenantSchedule {
    /// Deals `count` requests from one generator round-robin across
    /// `tenants` tenants: request `i` goes to tenant `i % tenants`.
    ///
    /// All tenants address the same block space, so a skewed generator's
    /// hot set is *shared* — the case batching and dedup exploit.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn shard(
        label: impl Into<String>,
        generator: &mut dyn WorkloadGenerator,
        tenants: u32,
        count: usize,
    ) -> Self {
        assert!(tenants > 0, "at least one tenant required");
        let arrivals = (0..count)
            .map(|i| TenantArrival {
                tenant: i as u32 % tenants,
                request: generator.next_request(),
            })
            .collect();
        Self {
            label: label.into(),
            arrivals,
        }
    }

    /// Merges per-tenant generators round-robin, `count_each` requests
    /// per tenant.
    pub fn interleave(
        label: impl Into<String>,
        mut generators: Vec<(u32, &mut dyn WorkloadGenerator)>,
        count_each: usize,
    ) -> Self {
        let mut arrivals = Vec::with_capacity(generators.len() * count_each);
        for _ in 0..count_each {
            for (tenant, generator) in &mut generators {
                arrivals.push(TenantArrival {
                    tenant: *tenant,
                    request: generator.next_request(),
                });
            }
        }
        Self {
            label: label.into(),
            arrivals,
        }
    }

    /// Like [`shard`](Self::shard), but tenant 0 submits `weight` requests
    /// for every single request of each other tenant — the hot-tenant
    /// fairness stress.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` or `weight` is zero.
    pub fn with_hot_tenant(
        label: impl Into<String>,
        generator: &mut dyn WorkloadGenerator,
        tenants: u32,
        weight: u32,
        count: usize,
    ) -> Self {
        assert!(tenants > 0, "at least one tenant required");
        assert!(weight > 0, "hot-tenant weight must be positive");
        // One round = `weight` arrivals from tenant 0 plus one from each
        // other tenant.
        let round: Vec<u32> = std::iter::repeat_n(0, weight as usize)
            .chain(1..tenants)
            .collect();
        let arrivals = (0..count)
            .map(|i| TenantArrival {
                tenant: round[i % round.len()],
                request: generator.next_request(),
            })
            .collect();
        Self {
            label: label.into(),
            arrivals,
        }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The distinct tenants, ascending.
    pub fn tenants(&self) -> Vec<u32> {
        let mut tenants: Vec<u32> = self.arrivals.iter().map(|a| a.tenant).collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants
    }

    /// The flat request stream in arrival order (the sequential
    /// baseline's input — byte-identical to what the server sees).
    pub fn to_trace(&self) -> RequestTrace {
        RequestTrace::from_requests(
            self.label.clone(),
            self.arrivals.iter().map(|a| a.request.clone()).collect(),
        )
    }

    /// Splits into per-tenant queues preserving each tenant's submission
    /// order (the shape `run_multi_user` and per-tenant baselines take).
    pub fn per_tenant_queues(&self) -> Vec<(u32, Vec<Request>)> {
        let mut queues: Vec<(u32, Vec<Request>)> = self
            .tenants()
            .into_iter()
            .map(|t| (t, Vec::new()))
            .collect();
        for arrival in &self.arrivals {
            let slot = queues
                .iter_mut()
                .find(|(t, _)| *t == arrival.tenant)
                .expect("tenants() covers every arrival");
            slot.1.push(arrival.request.clone());
        }
        queues
    }

    /// How this schedule's requests spread over `shards` shards under the
    /// given routing function: returns per-shard request counts.
    ///
    /// The routing function is a closure (not a concrete mapper type) so
    /// workloads stay decoupled from the ORAM stack — pass
    /// `|id| mapper.shard_of(id)` from a sharded instance's keyed mapper,
    /// or any synthetic split. Benches use this to report load balance
    /// next to throughput.
    ///
    /// # Panics
    ///
    /// Panics if `route` returns an index `≥ shards`.
    pub fn route_counts(
        &self,
        shards: usize,
        mut route: impl FnMut(BlockId) -> usize,
    ) -> Vec<usize> {
        let mut counts = vec![0usize; shards];
        for arrival in &self.arrivals {
            let shard = route(arrival.request.id);
            assert!(shard < shards, "route returned shard {shard} of {shards}");
            counts[shard] += 1;
        }
        counts
    }

    /// Deals `count` arrivals round-robin across `tenants` tenants,
    /// keeping only generated requests that `route` sends to
    /// `target_shard` — the **hot-shard stress**: every request funnels
    /// into one bank of a sharded instance, so scale-out degenerates to a
    /// single instance plus routing overhead. The generator keeps
    /// drawing until `count` matching requests are found.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero, or if the generator fails to produce
    /// a matching request within a generous draw budget (a routing
    /// function that never selects `target_shard`).
    pub fn single_shard(
        label: impl Into<String>,
        generator: &mut dyn WorkloadGenerator,
        tenants: u32,
        count: usize,
        mut route: impl FnMut(BlockId) -> usize,
        target_shard: usize,
    ) -> Self {
        assert!(tenants > 0, "at least one tenant required");
        // A uniform S-way split needs ~S draws per hit; 4096 covers any
        // plausible shard count with huge margin while still terminating
        // on a route that can never match.
        let budget_per_request = 4096usize;
        let mut arrivals = Vec::with_capacity(count);
        for i in 0..count {
            let mut drawn = 0usize;
            let request = loop {
                let candidate = generator.next_request();
                drawn += 1;
                if route(candidate.id) == target_shard {
                    break candidate;
                }
                assert!(
                    drawn < budget_per_request,
                    "route never selected shard {target_shard} in {budget_per_request} draws"
                );
            };
            arrivals.push(TenantArrival {
                tenant: i as u32 % tenants,
                request,
            });
        }
        Self {
            label: label.into(),
            arrivals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfWorkload;

    fn zipf() -> ZipfWorkload {
        ZipfWorkload::new(256, 1.1, 0.2, 7)
    }

    #[test]
    fn shard_deals_round_robin() {
        let schedule = TenantSchedule::shard("s", &mut zipf(), 4, 40);
        assert_eq!(schedule.len(), 40);
        assert_eq!(schedule.tenants(), vec![0, 1, 2, 3]);
        for (i, arrival) in schedule.arrivals.iter().enumerate() {
            assert_eq!(arrival.tenant, i as u32 % 4);
        }
    }

    #[test]
    fn shard_is_deterministic() {
        let a = TenantSchedule::shard("s", &mut zipf(), 4, 50);
        let b = TenantSchedule::shard("s", &mut zipf(), 4, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn hot_tenant_dominates_arrivals() {
        let schedule = TenantSchedule::with_hot_tenant("h", &mut zipf(), 4, 5, 80);
        let hot = schedule.arrivals.iter().filter(|a| a.tenant == 0).count();
        // One round is 5 hot + 3 cold arrivals.
        assert!(
            hot * 10 >= schedule.len() * 5,
            "hot tenant got {hot}/{}",
            schedule.len()
        );
    }

    #[test]
    fn queues_preserve_per_tenant_order() {
        let schedule = TenantSchedule::shard("s", &mut zipf(), 3, 30);
        let queues = schedule.per_tenant_queues();
        assert_eq!(queues.len(), 3);
        for (tenant, queue) in &queues {
            let direct: Vec<&Request> = schedule
                .arrivals
                .iter()
                .filter(|a| a.tenant == *tenant)
                .map(|a| &a.request)
                .collect();
            assert_eq!(queue.iter().collect::<Vec<_>>(), direct);
        }
    }

    #[test]
    fn trace_matches_arrival_order() {
        let schedule = TenantSchedule::shard("s", &mut zipf(), 2, 20);
        let trace = schedule.to_trace();
        assert_eq!(trace.len(), 20);
        for (arrival, request) in schedule.arrivals.iter().zip(&trace.requests) {
            assert_eq!(&arrival.request, request);
        }
    }

    #[test]
    fn interleave_merges_generators() {
        let mut a = zipf();
        let mut b = ZipfWorkload::new(256, 0.8, 0.0, 9);
        let schedule = TenantSchedule::interleave("i", vec![(7, &mut a), (9, &mut b)], 10);
        assert_eq!(schedule.len(), 20);
        assert_eq!(schedule.tenants(), vec![7, 9]);
        assert_eq!(schedule.arrivals[0].tenant, 7);
        assert_eq!(schedule.arrivals[1].tenant, 9);
    }

    #[test]
    fn route_counts_cover_every_arrival() {
        let schedule = TenantSchedule::shard("s", &mut zipf(), 4, 100);
        let counts = schedule.route_counts(4, |id| (id.0 % 4) as usize);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // The Zipf stream touches more than one residue class.
        assert!(counts.iter().filter(|&&c| c > 0).count() > 1);
    }

    #[test]
    #[should_panic(expected = "route returned shard")]
    fn route_counts_reject_out_of_range_shards() {
        let schedule = TenantSchedule::shard("s", &mut zipf(), 2, 10);
        schedule.route_counts(2, |_| 5);
    }

    #[test]
    fn single_shard_funnels_every_request() {
        let route = |id: BlockId| (id.0 % 4) as usize;
        let schedule = TenantSchedule::single_shard("hot", &mut zipf(), 3, 60, route, 2);
        assert_eq!(schedule.len(), 60);
        assert!(schedule.arrivals.iter().all(|a| route(a.request.id) == 2));
        // Round-robin tenant dealing is preserved.
        for (i, arrival) in schedule.arrivals.iter().enumerate() {
            assert_eq!(arrival.tenant, i as u32 % 3);
        }
        assert_eq!(schedule.route_counts(4, route), vec![0, 0, 60, 0]);
    }

    #[test]
    #[should_panic(expected = "never selected shard")]
    fn single_shard_detects_impossible_routes() {
        TenantSchedule::single_shard("h", &mut zipf(), 1, 1, |_| 0, 1);
    }
}

//! Workload-shape statistics.
//!
//! Used by experiment reports to confirm a generated trace actually has
//! the intended shape (e.g. the paper's 80/20 skew) before timing anything.

use oram_protocols::types::Request;
use std::collections::HashMap;

/// Summary statistics of a request sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Total requests.
    pub requests: usize,
    /// Distinct blocks touched.
    pub unique_blocks: usize,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Fraction of requests landing on the most popular 20 % of *touched*
    /// blocks (the 80/20 diagnostic).
    pub top20_share: f64,
    /// Requests to the single most popular block.
    pub max_block_requests: usize,
}

impl WorkloadStats {
    /// Computes statistics over a request slice.
    pub fn compute(requests: &[Request]) -> Self {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let mut writes = 0usize;
        for request in requests {
            *counts.entry(request.id.0).or_default() += 1;
            if request.op.is_write() {
                writes += 1;
            }
        }
        let mut by_popularity: Vec<usize> = counts.values().copied().collect();
        by_popularity.sort_unstable_by(|a, b| b.cmp(a));
        let top20_count = (by_popularity.len() as f64 * 0.2).ceil() as usize;
        let top20: usize = by_popularity.iter().take(top20_count.max(1)).sum();

        Self {
            requests: requests.len(),
            unique_blocks: counts.len(),
            write_fraction: if requests.is_empty() {
                0.0
            } else {
                writes as f64 / requests.len() as f64
            },
            top20_share: if requests.is_empty() {
                0.0
            } else {
                top20 as f64 / requests.len() as f64
            },
            max_block_requests: by_popularity.first().copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotspot::HotspotWorkload;
    use crate::uniform::UniformWorkload;
    use crate::WorkloadGenerator;

    #[test]
    fn hotspot_shows_heavy_top20() {
        let mut generator = HotspotWorkload::paper_default(1000, 1);
        let requests = generator.generate(10_000);
        let stats = WorkloadStats::compute(&requests);
        assert!(stats.top20_share > 0.6, "top20 share {}", stats.top20_share);
        assert_eq!(stats.requests, 10_000);
    }

    #[test]
    fn uniform_shows_light_top20() {
        let mut generator = UniformWorkload::new(1000, 0.0, 1);
        let requests = generator.generate(10_000);
        let stats = WorkloadStats::compute(&requests);
        assert!(stats.top20_share < 0.4, "top20 share {}", stats.top20_share);
    }

    #[test]
    fn write_fraction_counted() {
        let requests = vec![
            Request::read(1u64),
            Request::write(2u64, vec![1]),
            Request::write(3u64, vec![2]),
            Request::read(1u64),
        ];
        let stats = WorkloadStats::compute(&requests);
        assert_eq!(stats.unique_blocks, 3);
        assert!((stats.write_fraction - 0.5).abs() < 1e-12);
        assert_eq!(stats.max_block_requests, 2);
    }

    #[test]
    fn empty_input_is_defined() {
        let stats = WorkloadStats::compute(&[]);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.write_fraction, 0.0);
        assert_eq!(stats.top20_share, 0.0);
    }
}

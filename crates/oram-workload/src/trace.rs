//! Request-trace recording and replay.
//!
//! Comparing two systems fairly requires driving them with the *same*
//! request sequence. A [`RequestTrace`] captures a generator's output once
//! and replays it into each system; traces serialize to JSON so
//! experiments can be archived and re-run bit-identically.

use crate::WorkloadGenerator;
use oram_protocols::types::Request;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// A recorded request sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Label describing the generator and parameters.
    pub label: String,
    /// The requests, in issue order.
    pub requests: Vec<Request>,
}

impl RequestTrace {
    /// Records `count` requests from a generator.
    pub fn record(
        label: impl Into<String>,
        generator: &mut dyn WorkloadGenerator,
        count: usize,
    ) -> Self {
        Self {
            label: label.into(),
            requests: generator.generate(count),
        }
    }

    /// Wraps an explicit request list.
    pub fn from_requests(label: impl Into<String>, requests: Vec<Request>) -> Self {
        Self {
            label: label.into(),
            requests,
        }
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Saves the trace as JSON.
    ///
    /// # Errors
    ///
    /// I/O and serialization errors surface as [`io::Error`].
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a trace from JSON.
    ///
    /// # Errors
    ///
    /// I/O and deserialization errors surface as [`io::Error`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }

    /// Iterates over the requests.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.requests.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotspot::HotspotWorkload;

    #[test]
    fn record_and_replay_are_identical() {
        let mut generator = HotspotWorkload::paper_default(100, 5);
        let trace = RequestTrace::record("hotspot", &mut generator, 50);
        assert_eq!(trace.len(), 50);
        let replayed: Vec<_> = trace.iter().cloned().collect();
        assert_eq!(replayed, trace.requests);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut generator = HotspotWorkload::paper_default(64, 2);
        let trace = RequestTrace::record("roundtrip", &mut generator, 20);
        let dir = std::env::temp_dir().join("horam-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        trace.save(&path).unwrap();
        let loaded = RequestTrace::load(&path).unwrap();
        assert_eq!(trace, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_garbage_errors() {
        let dir = std::env::temp_dir().join("horam-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"not json").unwrap();
        assert!(RequestTrace::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

//! Uniform random workload — the cache-hostile baseline.

use crate::WorkloadGenerator;
use oram_crypto::rng::DeterministicRng;
use oram_protocols::types::Request;
use rand::Rng;

/// Every request targets a uniformly random block.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    capacity: u64,
    write_ratio: f64,
    payload_len: usize,
    rng: DeterministicRng,
}

impl UniformWorkload {
    /// Creates the workload; `write_ratio` of requests are writes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `write_ratio` is outside `[0, 1]`.
    pub fn new(capacity: u64, write_ratio: f64, seed: u64) -> Self {
        Self::with_payload(capacity, write_ratio, 0, seed)
    }

    /// As [`new`](Self::new) with explicit write payload length.
    pub fn with_payload(capacity: u64, write_ratio: f64, payload_len: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!((0.0..=1.0).contains(&write_ratio), "write ratio in [0,1]");
        Self {
            capacity,
            write_ratio,
            payload_len,
            rng: DeterministicRng::from_u64_seed(seed ^ 0x0331_f0c5),
        }
    }
}

impl WorkloadGenerator for UniformWorkload {
    fn next_request(&mut self) -> Request {
        let id = self.rng.gen_range(0..self.capacity);
        if self.write_ratio > 0.0 && self.rng.gen_bool(self.write_ratio) {
            let mut payload = vec![0u8; self.payload_len];
            self.rng.fill(payload.as_mut_slice());
            Request::write(id, payload)
        } else {
            Request::read(id)
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_space_roughly_evenly() {
        let mut workload = UniformWorkload::new(10, 0.0, 5);
        let mut counts = [0u32; 10];
        for request in workload.generate(10_000) {
            counts[request.id.0 as usize] += 1;
        }
        for (id, &count) in counts.iter().enumerate() {
            assert!((800..1200).contains(&count), "block {id} count {count}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            UniformWorkload::new(50, 0.3, 1).generate(30),
            UniformWorkload::new(50, 0.3, 1).generate(30)
        );
    }

    #[test]
    fn write_ratio_zero_is_read_only() {
        let mut workload = UniformWorkload::new(50, 0.0, 2);
        assert!(workload.generate(100).iter().all(|r| !r.op.is_write()));
    }
}

//! Zipf-distributed workload — heavy-tailed popularity.
//!
//! Block `k` (0-based rank) is requested with probability proportional to
//! `1/(k+1)^s`. Sampling inverts the CDF built at construction (exact, no
//! rejection), so generation is O(log N) per request.

use crate::WorkloadGenerator;
use oram_crypto::rng::DeterministicRng;
use oram_protocols::types::Request;
use rand::Rng;

/// Zipf(s) workload over `capacity` blocks.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    capacity: u64,
    /// Cumulative probability table over ranks.
    cdf: Vec<f64>,
    /// Rank → block id mapping (a fixed pseudo-random relabeling so hot
    /// blocks are not simply the lowest ids).
    rank_to_id: Vec<u64>,
    write_ratio: f64,
    payload_len: usize,
    rng: DeterministicRng,
}

impl ZipfWorkload {
    /// Creates a Zipf(`exponent`) workload.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `exponent < 0`, or `write_ratio` is
    /// outside `[0, 1]`. Capacities beyond 2²⁴ are rejected (the CDF table
    /// would be excessive; use hotspot for huge datasets).
    pub fn new(capacity: u64, exponent: f64, write_ratio: f64, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(capacity <= 1 << 24, "capacity too large for tabulated zipf");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        assert!((0.0..=1.0).contains(&write_ratio), "write ratio in [0,1]");

        let mut cdf = Vec::with_capacity(capacity as usize);
        let mut total = 0.0;
        for k in 0..capacity {
            total += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }

        // Fixed relabeling: Fisher–Yates over ids with a derived seed.
        let mut rank_to_id: Vec<u64> = (0..capacity).collect();
        let mut relabel_rng = DeterministicRng::from_u64_seed(seed ^ 0x21bf_0ff5);
        for i in (1..rank_to_id.len()).rev() {
            let j = relabel_rng.gen_range(0..=i);
            rank_to_id.swap(i, j);
        }

        Self {
            capacity,
            cdf,
            rank_to_id,
            write_ratio,
            payload_len: 0,
            rng: DeterministicRng::from_u64_seed(seed ^ 0x21bf_0001),
        }
    }

    /// Sets the payload length carried by generated writes (the target
    /// system's `payload_len`); without it writes carry empty payloads.
    pub fn with_payload_len(mut self, payload_len: usize) -> Self {
        self.payload_len = payload_len;
        self
    }

    fn draw_rank(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }
}

impl WorkloadGenerator for ZipfWorkload {
    fn next_request(&mut self) -> Request {
        let rank = self.draw_rank();
        let id = self.rank_to_id[rank];
        if self.write_ratio > 0.0 && self.rng.gen_bool(self.write_ratio) {
            let mut payload = vec![0u8; self.payload_len];
            self.rng.fill(payload.as_mut_slice());
            Request::write(id, payload)
        } else {
            Request::read(id)
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn rank_one_dominates() {
        let mut workload = ZipfWorkload::new(1000, 1.0, 0.0, 3);
        let requests = workload.generate(20_000);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for r in &requests {
            *counts.entry(r.id.0).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        // Rank-0 mass for zipf(1) over 1000 ≈ 1/H(1000) ≈ 13 %.
        assert!(
            max as f64 / requests.len() as f64 > 0.08,
            "max share too small"
        );
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let mut workload = ZipfWorkload::new(10, 0.0, 0.0, 4);
        let requests = workload.generate(10_000);
        let mut counts = [0u32; 10];
        for r in &requests {
            counts[r.id.0 as usize] += 1;
        }
        for &count in &counts {
            assert!((800..1200).contains(&count), "count {count}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            ZipfWorkload::new(100, 0.9, 0.0, 7).generate(40),
            ZipfWorkload::new(100, 0.9, 0.0, 7).generate(40)
        );
    }

    #[test]
    fn relabeling_spreads_hot_ids() {
        // The hottest block should usually not be id 0.
        let hot_ids: Vec<u64> = (0..8)
            .map(|seed| {
                let mut workload = ZipfWorkload::new(1000, 1.2, 0.0, seed);
                let requests = workload.generate(2000);
                let mut counts: HashMap<u64, u32> = HashMap::new();
                for r in &requests {
                    *counts.entry(r.id.0).or_default() += 1;
                }
                counts
                    .into_iter()
                    .max_by_key(|(_, c)| *c)
                    .map(|(id, _)| id)
                    .unwrap()
            })
            .collect();
        assert!(
            hot_ids.iter().any(|&id| id != 0),
            "hot block always id 0: {hot_ids:?}"
        );
    }
}

//! Scaling to large N: the recursive position map in practice.
//!
//! Builds a 65,536-block H-ORAM — 16× the largest capacity the bench
//! suite drives — with the recursive position map and a file-backed
//! storage device, then shows what that buys:
//!
//! * trusted position-map memory stays at O(log N) — kilobytes where
//!   the flat table would hold megabytes;
//! * the adversary-visible recursion is confined to the levels' own
//!   oblivious traces (the data bus never sees it);
//! * snapshots seal only the trusted state, so checkpointing stays
//!   cheap at any N.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example large_capacity
//! ```

use horam::core::{build_posmap, PosmapMode, RecursivePosmapConfig};
use horam::prelude::*;
use horam::protocols::types::BlockContent;
use horam::storage::calibration::MachineConfig;
use horam::storage::file::{scratch_dir, FileStoreConfig};
use std::path::Path;

const CAPACITY: u64 = 1 << 16;
const PAYLOAD: usize = 16;
const MEMORY_SLOTS: u64 = 2_048;
/// Prime stride so the spot-check sweep touches every storage partition.
const STRIDE: u64 = 509;

fn config(posmap_backing: &Path) -> HOramConfig {
    HOramConfig::new(CAPACITY, PAYLOAD, MEMORY_SLOTS)
        .with_seed(2024)
        .with_io_batch(16)
        .with_posmap(PosmapMode::Recursive(RecursivePosmapConfig {
            backing_dir: Some(posmap_backing.to_string_lossy().into_owned()),
            ..RecursivePosmapConfig::default()
        }))
}

fn open_hierarchy(cfg: &HOramConfig, device_path: &Path) -> Result<MemoryHierarchy, OramError> {
    let slots = cfg.partition_count() * cfg.partition_slots();
    let body = BlockContent::encoded_len(cfg.payload_len);
    Ok(MemoryHierarchy::with_file_storage(
        MachineConfig::dac2019(),
        device_path,
        FileStoreConfig::new(slots, body).with_write_back_slots(64),
    )?)
}

fn payload(id: u64) -> Vec<u8> {
    let mut bytes = vec![0u8; PAYLOAD];
    bytes[..8].copy_from_slice(&id.to_le_bytes());
    bytes
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = scratch_dir("example-large-capacity");
    let device_path = dir.join("oram.horam");
    let cfg = config(&dir.join("posmap"));
    let master = MasterKey::from_bytes([0x65u8; 32]);

    let mut oram = HOram::new(cfg.clone(), open_hierarchy(&cfg, &device_path)?, master)?;

    // The recursion ladder: each level is its own little bucket-tree ORAM
    // over sealed position pages, and only the last level's leaf labels
    // live in trusted memory.
    println!("{CAPACITY} blocks, recursive position map:");
    for view in oram.posmap().level_views() {
        println!(
            "  {:<16} {:>7} pages  (tree depth {:>2}, z={})",
            view.name, view.page_count, view.depth, view.z
        );
    }

    // The headline number: trusted bytes, measured — against the flat
    // table the seed design would pin at this capacity.
    let flat = build_posmap(
        &HOramConfig::new(CAPACITY, PAYLOAD, MEMORY_SLOTS).with_seed(2024),
        &MasterKey::from_bytes([0x65u8; 32]),
        false,
    )?;
    println!(
        "trusted position-map bytes: recursive {} vs flat {} ({:.0}× smaller)",
        oram.posmap().memory_bytes(),
        flat.memory_bytes(),
        flat.memory_bytes() as f64 / oram.posmap().memory_bytes() as f64
    );

    // Serve across the whole address space: a prime-stride sweep of
    // writes, then the same sweep of reads.
    let ids: Vec<u64> = (0..CAPACITY).step_by(STRIDE as usize).collect();
    for &id in &ids {
        oram.write(BlockId(id), &payload(id))?;
    }
    for &id in &ids {
        assert_eq!(oram.read(BlockId(id))?, payload(id), "block {id} corrupt");
    }
    println!(
        "round-tripped {} blocks across the address space ({} shuffles, clock {})",
        ids.len(),
        oram.stats().shuffles,
        oram.clock().now()
    );

    // Snapshots scale with trusted state, not N: the file-backed level
    // devices persist alongside the data device, so the envelope seals
    // only roots, stashes, pinned caches, and epochs.
    let snapshot = oram.snapshot()?;
    println!("snapshot: {} bytes sealed", snapshot.len());
    drop(oram);

    let mut recovered = HOram::restore(
        open_hierarchy(&cfg, &device_path)?,
        MasterKey::from_bytes([0x65u8; 32]),
        &snapshot,
    )?;
    for &id in ids.iter().step_by(16) {
        assert_eq!(recovered.read(BlockId(id))?, payload(id));
    }
    println!("restored from snapshot: spot checks intact, engine continues");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}

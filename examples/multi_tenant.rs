//! Multi-tenant H-ORAM with access control (paper §5.3.2).
//!
//! Several tenants share one ORAM instance: the scheduler interleaves
//! their requests into the same oblivious cycles (no per-tenant pattern is
//! visible on the bus), while the control layer's capability table keeps
//! tenants inside their own block ranges — "some access control protection
//! … added to our scheduler", as the paper puts it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example multi_tenant
//! ```

use horam::core::access_control::{AccessControl, Permission};
use horam::core::{run_multi_user, UserId};
use horam::prelude::*;

fn main() -> Result<(), OramError> {
    // One shared instance: 1024 blocks of 32 B.
    let config = HOramConfig::new(1024, 32, 128).with_seed(88);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([6u8; 32]),
    )?;

    // Three tenants with disjoint ranges; tenant 2 also gets read-only
    // access to tenant 0's published range.
    let mut acl = AccessControl::new();
    acl.grant(UserId(0), 0..256, Permission::ReadWrite);
    acl.grant(UserId(1), 256..512, Permission::ReadWrite);
    acl.grant(UserId(2), 512..768, Permission::ReadWrite);
    acl.grant(UserId(2), 0..64, Permission::ReadOnly); // published range

    // Tenant queues, including some requests the ACL must reject.
    let queues: Vec<(UserId, Vec<Request>)> = vec![
        (
            UserId(0),
            (0..32u64)
                .map(|i| Request::write(i, vec![0xA0; 32]))
                .collect(),
        ),
        (
            UserId(1),
            (256..288u64)
                .map(|i| Request::write(i, vec![0xB1; 32]))
                // Attempted trespass into tenant 0's range:
                .chain(std::iter::once(Request::write(10u64, vec![0xEE; 32])))
                .collect(),
        ),
        (
            UserId(2),
            (0..16u64)
                .map(Request::read) // allowed: published, read-only
                .chain(std::iter::once(Request::write(5u64, vec![0xEE; 32]))) // denied
                .collect(),
        ),
    ];

    // Admission: the control layer filters queues BEFORE anything reaches
    // the scheduler, so denials cause no observable accesses at all.
    let mut admitted_queues = Vec::new();
    let mut total_rejected = 0;
    for (user, queue) in queues {
        let (admitted, rejected) = acl.admit(user, queue);
        for (request, denial) in &rejected {
            println!(
                "denied  {user}: {} {} — {denial}",
                kind(&request.op),
                request.id
            );
        }
        total_rejected += rejected.len();
        admitted_queues.push((user, admitted));
    }

    let report = run_multi_user(&mut oram, admitted_queues)?;
    println!(
        "\nserviced {} requests from 3 tenants ({} denied at admission)",
        report.requests, total_rejected
    );
    println!(
        "wall time {}, throughput {:.0} req/s (simulated)",
        report.wall_time, report.requests_per_sec
    );

    // Tenant 2 reads tenant 0's published data — consistently.
    let published = &report.responses[2][..16];
    assert!(published.iter().all(|v| v == &vec![0xA0; 32]));
    println!("tenant 2 read tenant 0's published blocks consistently");
    Ok(())
}

fn kind(op: &RequestOp) -> &'static str {
    match op {
        RequestOp::Read => "read",
        RequestOp::Write(_) => "write",
    }
}

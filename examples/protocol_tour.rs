//! Tour of every ORAM protocol in the workspace on one workload.
//!
//! Runs the same 400-request hotspot trace through the four baselines and
//! H-ORAM, printing the storage-side cost of each — a miniature of the
//! paper's comparison tables and a demonstration of the shared `Oram`
//! trait.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example protocol_tour
//! ```

use horam::analysis::table::Table;
use horam::crypto::keys::KeyHierarchy;
use horam::prelude::*;
use horam::protocols::{
    build_tree_top_cache, PartitionOram, PathOram, PathOramConfig, SquareRootOram, TreeBackend,
};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;
use horam::workload::WorkloadGenerator;

const CAPACITY: u64 = 1024;
const PAYLOAD: usize = 32;
const MEMORY_SLOTS: u64 = 256;

fn trace() -> Vec<Request> {
    HotspotWorkload::paper_default(CAPACITY, 77).generate(400)
}

fn run(oram: &mut dyn Oram, requests: &[Request]) -> Result<(), OramError> {
    for request in requests {
        oram.access(request)?;
    }
    Ok(())
}

fn main() -> Result<(), OramError> {
    let requests = trace();
    let machine = MachineConfig::dac2019();
    let master = MasterKey::from_bytes([9u8; 32]);
    let mut table = Table::new(vec!["protocol", "storage ops", "storage busy", "notes"]);

    // Path ORAM entirely on the slow device: the worst case.
    {
        let device = machine.build_storage(SimClock::new(), None);
        let mut oram = PathOram::new(
            PathOramConfig::new(CAPACITY, PAYLOAD),
            device,
            &master.derive("tour/path", 0),
        )?;
        run(&mut oram, &requests)?;
        let stats = oram.device().stats();
        table.row(vec![
            "Path ORAM (all on HDD)".into(),
            stats.ops().to_string(),
            stats.busy.to_string(),
            "every path fully on storage".into(),
        ]);
    }

    // The paper's baseline: tree-top cache.
    {
        let clock = SimClock::new();
        let (mut oram, split) = build_tree_top_cache(
            PathOramConfig::new(CAPACITY, PAYLOAD),
            MEMORY_SLOTS,
            machine.build_memory(clock.clone(), None),
            machine.build_storage(clock, None),
            &master.derive("tour/ttc", 0),
        )?;
        run(&mut oram, &requests)?;
        let (_, storage) = oram.backend().stats();
        table.row(vec![
            "Tree-top-cache Path ORAM".into(),
            storage.ops().to_string(),
            storage.busy.to_string(),
            format!("{} levels on storage", split.storage_levels),
        ]);
    }

    // Square-root ORAM: one touch per access + monolithic reshuffles.
    {
        let device = machine.build_storage(SimClock::new(), None);
        let keys = KeyHierarchy::new(master.clone(), "tour/sqrt");
        let mut oram = SquareRootOram::new(CAPACITY, PAYLOAD, device, keys, 5)?;
        run(&mut oram, &requests)?;
        let stats = oram.device().stats();
        table.row(vec![
            "Square-root ORAM".into(),
            stats.ops().to_string(),
            stats.busy.to_string(),
            format!("{} full reshuffles", oram.stats().reshuffles),
        ]);
    }

    // Partition ORAM: per-partition reshuffles.
    {
        let device = machine.build_storage(SimClock::new(), None);
        let keys = KeyHierarchy::new(master.clone(), "tour/partition");
        let mut oram = PartitionOram::new(CAPACITY, PAYLOAD, None, device, keys, 5)?;
        run(&mut oram, &requests)?;
        let stats = oram.device().stats();
        table.row(vec![
            "Partition ORAM".into(),
            stats.ops().to_string(),
            stats.busy.to_string(),
            format!("{} partitions shuffled", oram.stats().partitions_shuffled),
        ]);
    }

    // H-ORAM: the cacheable interface.
    {
        let config = HOramConfig::new(CAPACITY, PAYLOAD, MEMORY_SLOTS).with_seed(6);
        let mut oram = HOram::new(config, MemoryHierarchy::dac2019(), master)?;
        oram.run_batch(&requests)?;
        let stats = oram.storage_device_stats();
        table.row(vec![
            "H-ORAM".into(),
            stats.ops().to_string(),
            stats.busy.to_string(),
            format!(
                "{:.1} requests per I/O load",
                oram.stats().requests_per_io()
            ),
        ]);
    }

    println!(
        "{} requests, hotspot 80/20, {CAPACITY} blocks x {PAYLOAD} B\n",
        requests.len()
    );
    println!("{table}");
    Ok(())
}

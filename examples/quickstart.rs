//! Quickstart: build an H-ORAM, store and retrieve data, inspect costs.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use horam::prelude::*;

fn main() -> Result<(), OramError> {
    // A small instance of the paper's architecture: 4096 blocks of 64 B
    // protected data, with an in-memory Path ORAM tree of 512 slots acting
    // as the cache, on the simulated DAC'19 machine (DDR4 + 7200 RPM HDD).
    let config = HOramConfig::new(4096, 64, 512).with_seed(2019);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([7u8; 32]),
    )?;

    // Single-request API: every access is obliviously scheduled.
    oram.write(BlockId(17), &[0xAB; 64])?;
    let data = oram.read(BlockId(17))?;
    assert_eq!(data, vec![0xAB; 64]);
    println!("block 17 round-tripped through the hybrid ORAM");

    // Batch API: the secure scheduler groups c in-memory hits with each
    // storage fetch, exactly like the paper's Figure 4-2.
    let requests: Vec<Request> = (0..64u64)
        .map(|i| Request::write(i, vec![i as u8; 64]))
        .chain((0..64u64).map(Request::read))
        .collect();
    let responses = oram.run_batch(&requests)?;
    for (i, response) in responses[64..].iter().enumerate() {
        assert_eq!(response, &vec![i as u8; 64]);
    }

    // What did it cost? The stats mirror the paper's Table 5-3 rows.
    let stats = oram.stats();
    println!("requests serviced      : {}", stats.requests);
    println!("scheduling cycles      : {}", stats.cycles);
    println!(
        "I/O loads (real+dummy) : {} ({} real, {} dummy)",
        stats.total_io_loads(),
        stats.real_io_loads,
        stats.dummy_io_loads
    );
    println!("mean I/O latency       : {}", stats.mean_io_latency());
    println!("requests per I/O load  : {:.2}", stats.requests_per_io());
    println!("shuffle periods        : {}", stats.shuffles);
    println!("total simulated time   : {}", stats.total_wall_time());
    println!("memory stash peak      : {}", oram.memory_stash_peak());
    Ok(())
}

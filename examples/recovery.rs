//! Durability end to end: a file-backed H-ORAM survives a kill.
//!
//! Builds an instance whose storage device is a real file, writes data,
//! takes a checkpoint (device sync + sealed snapshot of the trusted
//! state), keeps working, then "crashes" — drops the engine without any
//! cleanup, mid-period, with the write-back buffer in flight. Recovery
//! reopens the device file (its undo journal rolls partial writes back
//! to the checkpoint) and restores the snapshot; the recovered instance
//! serves every checkpointed write correctly and continues the run.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example recovery
//! ```

use horam::prelude::*;
use horam::protocols::types::BlockContent;
use horam::storage::calibration::MachineConfig;
use horam::storage::file::{scratch_dir, FileStoreConfig};
use std::path::Path;

const CAPACITY: u64 = 1024;
const PAYLOAD: usize = 32;
const MEMORY_SLOTS: u64 = 128;

fn config() -> HOramConfig {
    HOramConfig::new(CAPACITY, PAYLOAD, MEMORY_SLOTS).with_seed(2019)
}

fn master() -> MasterKey {
    MasterKey::from_bytes([42u8; 32])
}

/// Opens (or re-opens — never truncates) the device file. Reopening is
/// how crash recovery happens: the file's undo journal is rolled back
/// to the last checkpoint during this call.
fn open_hierarchy(device_path: &Path) -> Result<MemoryHierarchy, OramError> {
    let cfg = config();
    let slots = cfg.partition_count() * cfg.partition_slots();
    let body = BlockContent::encoded_len(cfg.payload_len);
    Ok(MemoryHierarchy::with_file_storage(
        MachineConfig::dac2019(),
        device_path,
        FileStoreConfig::new(slots, body),
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = scratch_dir("example-recovery");
    let device_path = dir.join("oram.horam");

    // --- Before the crash -------------------------------------------------
    let mut oram = HOram::new(config(), open_hierarchy(&device_path)?, master())?;
    for i in 0..48u64 {
        oram.write(BlockId(i), &[i as u8; PAYLOAD])?;
    }

    // Checkpoint: sync the device file (commit point for its journal) and
    // seal the trusted client state. The snapshot is encrypted and
    // authenticated — store it anywhere.
    let snapshot = oram.snapshot()?;
    let snapshot_path = dir.join("snapshot.bin");
    std::fs::write(&snapshot_path, &snapshot)?;
    println!(
        "checkpointed: {} bytes of sealed state + {} on disk",
        snapshot.len(),
        device_path.display()
    );

    // Work past the checkpoint... these writes will be lost by the crash
    // (they are not checkpointed), and that is the point: recovery must
    // roll the device back rather than serve half-applied state.
    for i in 0..24u64 {
        oram.write(BlockId(i), &[0xFF; PAYLOAD])?;
    }

    // --- The crash --------------------------------------------------------
    drop(oram); // no sync, no checkpoint; buffer and journal mid-flight
    println!("crashed (engine dropped without cleanup)");

    // --- Recovery ---------------------------------------------------------
    let snapshot = std::fs::read(&snapshot_path)?;
    let mut recovered = HOram::restore(open_hierarchy(&device_path)?, master(), &snapshot)?;
    for i in 0..48u64 {
        let data = recovered.read(BlockId(i))?;
        assert_eq!(data, vec![i as u8; PAYLOAD], "block {i} lost its data");
    }
    println!("recovered: all 48 checkpointed writes intact, post-checkpoint writes rolled back");

    // The recovered instance is a full continuation: keep serving.
    recovered.write(BlockId(99), &[7; PAYLOAD])?;
    assert_eq!(recovered.read(BlockId(99))?, vec![7; PAYLOAD]);
    println!(
        "continued after recovery: clock at {}, {} shuffles so far",
        recovered.clock().now(),
        recovered.stats().shuffles
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}

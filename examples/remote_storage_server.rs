//! The client/server offload scenario (paper §2.2 and Figure 5-2).
//!
//! A client keeps its dataset on a remote storage server. The access
//! period runs interactively (the client waits on every load), but the
//! shuffle period "only runs on the remote server, so there is no need to
//! transmit data over the slow network" — the client's perceived cost is
//! access time only. This example measures both views and reports the
//! ideal-case speedup the paper quotes (§5.1: up to ~32× per I/O access
//! against the Path ORAM baseline).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example remote_storage_server
//! ```

use horam::analysis::model::OramModel;
use horam::prelude::*;
use horam::workload::WorkloadGenerator;

fn main() -> Result<(), OramError> {
    // 16 Mi-"B" scale model: 16384 blocks with a 2048-slot memory tree
    // (the N/n = 8 ratio of the paper's Table 5-1, scaled down to run in
    // seconds).
    let capacity = 16_384u64;
    let memory_slots = 2_048u64;
    let config = HOramConfig::new(capacity, 32, memory_slots).with_seed(7);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([5u8; 32]),
    )?;

    // A paper-style 80/20 workload long enough to cross shuffle periods.
    let mut workload = HotspotWorkload::paper_default(capacity, 11);
    let requests: Vec<Request> = workload.generate(4_000);
    oram.run_batch(&requests)?;

    let stats = oram.stats();
    let total = stats.total_wall_time();
    let client_only = stats.access_wall_time;

    println!("requests                    : {}", stats.requests);
    println!("access-period time (client) : {client_only}");
    println!("shuffle time (server-side)  : {}", stats.shuffle_wall_time);
    println!("total (single machine)      : {total}");
    println!(
        "offloading the shuffle hides {:.1}% of total cost from the client",
        100.0 * stats.shuffle_wall_time.as_secs_f64() / total.as_secs_f64().max(1e-12)
    );

    // The paper's ideal-case bound for this N/n from the closed model.
    let model = OramModel::new(capacity, memory_slots, 4, oram.config().average_c());
    println!(
        "ideal no-shuffle gain over tree-top Path ORAM (model): {:.1}x per I/O access",
        model.gain_ideal_no_shuffle(1.0)
    );
    Ok(())
}

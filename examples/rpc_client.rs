//! The network layer end to end, from library code: run a server on a
//! real socket, drive it with the retrying [`RpcClient`], drain it into
//! a checkpoint, restore, and show that the restarted epoch answers a
//! replayed request identically.
//!
//! This is the in-process twin of the `horam-serverd` / `horam-client`
//! binaries (see `docs/OPERATIONS.md` for the process-level runbook).
//! Everything here is the production code path — the only difference
//! from deployment is that the server runs on a thread instead of in
//! its own process, so the drain "signal" is the shared drain flag
//! rather than SIGTERM.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example rpc_client
//! ```

use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::core::{Permission, UserId};
use horam::prelude::*;
use horam::storage::file::scratch_dir;
use horam_rpc::server::{run_server, ServerConfig, ServerOutcome};
use horam_rpc::{ClientConfig, Endpoint, Listener, RpcClient};
use horam_server::{FifoPolicy, OramService, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const CAPACITY: u64 = 256;
const PAYLOAD_LEN: usize = 16;
const TENANTS: u32 = 2;

/// The canonical service, fresh or restored from a drain checkpoint's
/// engine snapshot. Building it identically on both sides of the
/// restart is what makes the replay byte-identical: the checkpoint
/// seals *state*, while tenancy and geometry are *configuration*,
/// re-applied here.
fn make_service(snapshot: Option<&[u8]>) -> OramService<ShardedOram> {
    let config = ServiceConfig {
        batch_size: 16,
        ..ServiceConfig::default()
    };
    let base = config
        .engine_config(HOramConfig::new(CAPACITY, PAYLOAD_LEN, 64))
        .with_seed(9);
    let master = MasterKey::from_bytes([0x5A; 32]);
    let oram = match snapshot {
        Some(bytes) => ShardedOram::restore(master, |_| MemoryHierarchy::dac2019(), bytes)
            .expect("checkpoint restores"),
        None => ShardedOram::new(ShardedConfig::new(base, 2), master, |_| {
            MemoryHierarchy::dac2019()
        })
        .expect("engine builds"),
    };
    let mut service = OramService::new(oram, Box::new(FifoPolicy), config);
    let per_tenant = CAPACITY / u64::from(TENANTS);
    for tenant in 0..TENANTS {
        let start = u64::from(tenant) * per_tenant;
        service.register_tenant(
            UserId(tenant),
            start..start + per_tenant,
            Permission::ReadWrite,
        );
    }
    service
}

/// Binds `endpoint` and serves `service` on a thread until the drain
/// flag rises; the join handle returns the [`ServerOutcome`] carrying
/// the drain checkpoint.
fn spawn_server(
    service: OramService<ShardedOram>,
    config: ServerConfig,
    endpoint: &Endpoint,
) -> (Endpoint, thread::JoinHandle<ServerOutcome>) {
    let listener = Listener::bind(endpoint).expect("bind");
    let bound = listener.local_endpoint().expect("local endpoint");
    let join = thread::spawn(move || {
        let mut service = service;
        run_server(&mut service, &listener, &config).expect("server runs")
    });
    (bound, join)
}

fn main() {
    let scratch = scratch_dir("example-rpc");
    let socket = Endpoint::Unix(scratch.join("rpc.sock"));

    // ---- Epoch 0: fresh server -------------------------------------
    let drain = Arc::new(AtomicBool::new(false));
    let config = ServerConfig {
        drain: Arc::clone(&drain),
        ..ServerConfig::default()
    };
    let (endpoint, server) = spawn_server(make_service(None), config, &socket);
    println!("serving on {endpoint}");

    // A pipelined, retrying client. Stable `client_id` + per-request
    // ids are what make its retries idempotent server-side. It dials
    // lazily: the handshake (and the epoch it reports) happens on the
    // first call.
    let mut client = RpcClient::new(ClientConfig::new(endpoint.clone(), 42, 0));

    let previous = client.write(7, vec![0xEE; PAYLOAD_LEN]).expect("write");
    assert_eq!(previous, vec![0u8; PAYLOAD_LEN]); // previous contents
    assert_eq!(client.read(7).expect("read"), vec![0xEE; PAYLOAD_LEN]);
    let rtt = client.ping().expect("ping");
    println!(
        "wrote block 7, read it back; ping {rtt:?} (handshake epoch {:?})",
        client.epoch()
    );

    // ---- Drain: finish in-flight work, checkpoint ------------------
    // The process-level equivalent is `kill -TERM` or `horam-client
    // drain`; here we raise the flag the SIGTERM handler would raise.
    drain.store(true, Ordering::Release);
    let outcome = server.join().expect("server thread");
    let checkpoint = outcome.checkpoint;
    println!(
        "drained: served {} requests, checkpoint {} bytes ({} idempotency-window entries)",
        outcome.counters.served,
        checkpoint.to_bytes().len(),
        checkpoint.window.len(),
    );

    // ---- Epoch 1: restore and replay -------------------------------
    // The checkpoint bundles the sealed engine snapshot AND the
    // idempotency window, so retries of pre-drain work stay recognized.
    let drain = Arc::new(AtomicBool::new(false));
    let config = ServerConfig {
        epoch: checkpoint.epoch + 1,
        preload_window: checkpoint.window.clone(),
        drain: Arc::clone(&drain),
        ..ServerConfig::default()
    };
    let restored = make_service(Some(&checkpoint.snapshot));
    let (endpoint, server) = spawn_server(restored, config, &socket);

    // A *new* client session needs a new identity: client 42's pre-drain
    // request ids are in the preloaded window, so reusing them would
    // replay the old cached responses — exactly what makes a genuine
    // retry of pre-drain work safe, and exactly wrong for fresh work.
    let mut client = RpcClient::new(ClientConfig::new(endpoint, 43, 0));
    assert_eq!(client.read(7).expect("read"), vec![0xEE; PAYLOAD_LEN]);
    assert_eq!(client.epoch(), Some(checkpoint.epoch + 1));
    println!(
        "block 7 survived the restart byte-identically (handshake epoch {:?})",
        client.epoch()
    );

    drain.store(true, Ordering::Release);
    server.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&scratch);
}

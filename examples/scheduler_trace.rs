//! Watch the secure scheduler group requests (paper Figure 4-2).
//!
//! Feeds the exact mix of the paper's example — hits `H1..H6` around
//! misses `M1..M3` — through the scheduler one cycle at a time, printing
//! which requests each cycle services in memory and what the I/O slot
//! does. The printed schedule mirrors Figure 4-2: the first miss's load
//! overlaps later hits, serviced misses turn into hits, and gaps are
//! padded with dummies.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example scheduler_trace
//! ```

use horam::prelude::*;

fn main() -> Result<(), OramError> {
    // Small instance; c fixed at 3 and d = 9 like the paper's example.
    let config = HOramConfig::new(64, 16, 32)
        .with_fixed_c(3)
        .with_prefetch_distance(9)
        .with_seed(4);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([2u8; 32]),
    )?;

    // Make blocks 0..6 memory-resident ("hits"), leave 60..63 cold
    // ("misses"), reproducing the figure's H/M mix.
    let warmup: Vec<Request> = (0..6u64).map(Request::read).collect();
    oram.run_batch(&warmup)?;
    oram.reset_accounting();

    // The ROB contents of Figure 4-2: H1 H2 H3 M1 H4 H5 M2 M2 H6.
    let figure_mix: Vec<Request> = vec![
        Request::read(0u64),  // H1
        Request::read(1u64),  // H2
        Request::read(2u64),  // H3
        Request::read(60u64), // M1
        Request::read(3u64),  // H4
        Request::read(4u64),  // H5
        Request::read(61u64), // M2
        Request::read(61u64), // M2 (duplicate, as in the figure)
        Request::read(5u64),  // H6
    ];

    let tickets: Vec<u64> = figure_mix
        .iter()
        .map(|r| oram.enqueue(r.clone()))
        .collect::<Result<_, _>>()?;

    let mut cycle = 0;
    while {
        let before = oram.stats();
        oram.run_cycle()?;
        cycle += 1;
        let after = oram.stats();
        let hits = after.memory_hits - before.memory_hits;
        let dummy_mem = after.dummy_memory_accesses - before.dummy_memory_accesses;
        let io = if after.real_io_loads > before.real_io_loads {
            "load miss"
        } else {
            "load dummy"
        };
        println!("cycle {cycle}: {hits} hit(s) + {dummy_mem} dummy path access(es) | I/O: {io}");
        after.requests < figure_mix.len() as u64
    } {}

    // Collect responses to prove every request was served.
    let responses = oram.drain(&tickets)?;
    println!(
        "all {} requests serviced across {cycle} cycles",
        responses.len()
    );
    println!(
        "every cycle issued exactly one I/O: {} cycles, {} loads",
        oram.stats().cycles,
        oram.stats().total_io_loads()
    );
    Ok(())
}

//! A small encrypted key-value store with hidden access patterns.
//!
//! The scenario from the paper's introduction: a client keeps sensitive
//! records on untrusted storage. Encryption alone leaks *which* record is
//! touched (searchable-encryption attacks recover content from patterns);
//! layering the store on H-ORAM hides the pattern too. This example builds
//! a string-keyed KV API on top of the block interface and shows that the
//! observable bus trace has the same shape regardless of which keys are
//! queried.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example secure_kv_store
//! ```

use horam::analysis::leakage::TraceShape;
use horam::prelude::*;
use std::collections::HashMap;

/// Fixed-size record layout: 8-byte value length + value bytes.
const VALUE_LEN: usize = 56;
const BLOCK_LEN: usize = 8 + VALUE_LEN;

/// A toy oblivious KV store: keys are hashed onto block slots with a
/// trusted-side directory resolving collisions.
struct ObliviousKv {
    oram: HOram,
    directory: HashMap<String, u64>,
    next_slot: u64,
}

impl ObliviousKv {
    fn new(capacity: u64, seed: u64) -> Result<Self, OramError> {
        let config = HOramConfig::new(capacity, BLOCK_LEN, 256).with_seed(seed);
        let oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([3u8; 32]),
        )?;
        Ok(Self {
            oram,
            directory: HashMap::new(),
            next_slot: 0,
        })
    }

    fn put(&mut self, key: &str, value: &[u8]) -> Result<(), OramError> {
        assert!(
            value.len() <= VALUE_LEN,
            "value too large for the record layout"
        );
        let slot = *self.directory.entry(key.to_string()).or_insert_with(|| {
            let slot = self.next_slot;
            self.next_slot += 1;
            slot
        });
        let mut block = vec![0u8; BLOCK_LEN];
        block[..8].copy_from_slice(&(value.len() as u64).to_le_bytes());
        block[8..8 + value.len()].copy_from_slice(value);
        self.oram.write(BlockId(slot), &block)?;
        Ok(())
    }

    fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, OramError> {
        let Some(&slot) = self.directory.get(key) else {
            return Ok(None);
        };
        let block = self.oram.read(BlockId(slot))?;
        let len = u64::from_le_bytes(block[..8].try_into().expect("8 bytes")) as usize;
        Ok(Some(block[8..8 + len].to_vec()))
    }
}

fn main() -> Result<(), OramError> {
    let mut store = ObliviousKv::new(1024, 99)?;

    // Load a directory of "patient records".
    for i in 0..200 {
        let key = format!("patient/{i:04}");
        let value = format!("diagnosis-{i}");
        store.put(&key, value.as_bytes())?;
    }
    println!("loaded 200 records into the oblivious store");

    // Query two disjoint key sets and compare the adversary's view. The
    // paper's scheduler guarantee (§4.4.2) is that *which* records are
    // touched is hidden: any two workloads with the same request count and
    // cold/warm mix produce byte-identical observable shapes. (Aggregate
    // volume — how many cycles a finite batch needs — is workload
    // dependent in the paper too; its measured I/O counts vary with hit
    // rate.)
    store.oram.reset_accounting();
    for i in 100..105 {
        store.get(&format!("patient/{i:04}"))?; // five cold records, set A
    }
    let shape_a = TraceShape::of(&store.oram.trace().snapshot());
    let stats_a = store.oram.stats();

    store.oram.reset_accounting();
    for i in 150..155 {
        store.get(&format!("patient/{i:04}"))?; // five cold records, set B
    }
    let shape_b = TraceShape::of(&store.oram.trace().snapshot());
    let stats_b = store.oram.stats();

    println!(
        "key set A (100..105): {} cycles, {} I/O loads",
        stats_a.cycles,
        stats_a.total_io_loads()
    );
    println!(
        "key set B (150..155): {} cycles, {} I/O loads",
        stats_b.cycles,
        stats_b.total_io_loads()
    );
    println!(
        "observable trace shapes identical: {}",
        if shape_a == shape_b {
            "yes — record identity hidden"
        } else {
            "NO (leak!)"
        }
    );

    let value = store.get("patient/0007")?.expect("present");
    println!("record still readable: {}", String::from_utf8_lossy(&value));
    Ok(())
}

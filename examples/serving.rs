//! The batched multi-tenant serving layer in action.
//!
//! Four tenants share one H-ORAM instance behind an [`OramService`]:
//! requests are access-checked, queued per tenant, admitted in fair-share
//! batches, deduplicated against the shared hot set, and answered through
//! tickets — no tenant ever blocks another.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use horam::core::Permission;
use horam::core::UserId;
use horam::prelude::*;
use horam::workload::{TenantSchedule, ZipfWorkload};
use horam_server::{FairSharePolicy, OramService, ServeError, ServiceConfig};

fn main() -> Result<(), ServeError> {
    // One shared instance: 2048 blocks of 32 B, 512-slot memory tree.
    let config = HOramConfig::new(2048, 32, 512).with_seed(11);
    let oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([3u8; 32]),
    )?;

    let mut service = OramService::new(
        oram,
        Box::new(FairSharePolicy::default()),
        ServiceConfig {
            batch_size: 64,
            ..ServiceConfig::default()
        },
    );

    // Tenants 0-2 own disjoint ranges; tenant 3 is a read-only auditor
    // over everything.
    service.register_tenant(UserId(0), 0..512, Permission::ReadWrite);
    service.register_tenant(UserId(1), 512..1024, Permission::ReadWrite);
    service.register_tenant(UserId(2), 1024..2048, Permission::ReadWrite);
    service.register_tenant(UserId(3), 0..2048, Permission::ReadOnly);

    // A write the auditor may read but never issue.
    let w = service.submit(UserId(0), Request::write(7u64, vec![0xEE; 32]))?;
    match service.submit(UserId(3), Request::write(7u64, vec![0; 32])) {
        Err(ServeError::Denied(denial)) => println!("auditor write rejected: {denial}"),
        other => panic!("expected denial, got {other:?}"),
    }
    let r = service.submit(UserId(3), Request::read(7u64))?;

    service.pump_until_idle()?;
    assert_eq!(service.take_response(w), Some(vec![0u8; 32])); // previous bytes
    assert_eq!(service.take_response(r), Some(vec![0xEE; 32]));
    println!("write + audited read round-tripped through the pump loop\n");

    // Now heavy shared traffic: a Zipf stream over tenant 0's range dealt
    // across the three writing tenants (a shared hot set, which dedup
    // exploits) — so tenants 1 and 2 first need grants on the shared
    // region.
    service.grant(UserId(1), 0..512, Permission::ReadWrite);
    service.grant(UserId(2), 0..512, Permission::ReadWrite);
    let mut generator = ZipfWorkload::new(512, 1.2, 0.0, 42);
    let schedule = TenantSchedule::shard("zipf", &mut generator, 3, 3_000);
    let arrivals = schedule
        .arrivals
        .iter()
        .map(|a| (UserId(a.tenant), a.request.clone()));
    let (_tickets, report) = service.serve_all(arrivals)?;

    println!(
        "served {} requests in {} batches, {} of simulated time",
        report.completed, report.batches, report.wall_time
    );
    println!(
        "dedup saved {} ORAM accesses ({:.2}x amplification)",
        service.stats().deduped,
        service.stats().amplification()
    );
    for tenant in [0, 1, 2, 3u32] {
        let stats = service.tenant_stats(UserId(tenant)).expect("registered");
        println!(
            "tenant {tenant}: {} completed ({} piggybacked), mean latency {}, denied {}",
            stats.completed,
            stats.piggybacked,
            stats.mean_latency(),
            stats.denied,
        );
    }
    Ok(())
}

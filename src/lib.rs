//! Workspace umbrella package.
//!
//! This package exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the implementation
//! lives in the crates under `crates/`. Start with the [`horam`] facade
//! crate, or see the repository `README.md` for a tour.

pub use horam;
pub use horam_server;

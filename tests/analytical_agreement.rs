//! The simulation must agree with the paper's closed-form model where the
//! model applies: I/O volumes per period, shuffle traffic, and the
//! baseline's per-access cost.

use horam::analysis::model::OramModel;
use horam::prelude::*;
use horam::protocols::{build_tree_top_cache, Oram, PathOramConfig, TreeBackend};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;
use horam::workload::{UniformWorkload, WorkloadGenerator};

/// Tree-top-cache baseline: measured I/O blocks per access must equal the
/// model's `Z·log₂(2N/n)` in each direction.
#[test]
fn baseline_io_per_access_matches_model() {
    let capacity: u64 = 1 << 14; // 16384 blocks
    let memory_slots: u64 = 1 << 11; // 2048 slots
    let machine = MachineConfig::dac2019();
    let clock = SimClock::new();
    let (mut oram, split) = build_tree_top_cache(
        PathOramConfig::new(capacity, 8),
        memory_slots,
        machine.build_memory(clock.clone(), None),
        machine.build_storage(clock, None),
        &MasterKey::from_bytes([41u8; 32]).derive("aa/ttc", 0),
    )
    .expect("baseline builds");

    let model = OramModel::new(capacity, memory_slots, 4, 4.0);
    assert_eq!(split.storage_levels as f64, model.storage_levels());

    let accesses = 50u64;
    let before = oram.backend().stats().1;
    for i in 0..accesses {
        oram.read(BlockId(i * 37 % capacity)).expect("read");
    }
    let after = oram.backend().stats().1;
    let reads_per_access = (after.reads - before.reads) as f64 / accesses as f64;
    let writes_per_access = (after.writes - before.writes) as f64 / accesses as f64;
    let expected = model.path_oram_io_per_request();
    assert_eq!(reads_per_access, expected.reads, "baseline read volume");
    assert_eq!(writes_per_access, expected.writes, "baseline write volume");
}

/// H-ORAM: exactly `n/2` I/O loads per period, and the shuffle's byte
/// traffic within the model's `(N−resident)` read / `N·headroom` write
/// envelope.
#[test]
fn horam_period_volumes_match_model() {
    let capacity: u64 = 1 << 10;
    let memory_slots: u64 = 1 << 6; // period = 32 loads
    let config = HOramConfig::new(capacity, 8, memory_slots).with_seed(3);
    let period_limit = config.period_io_limit();
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([42u8; 32]),
    )
    .expect("h-oram builds");

    let mut generator = UniformWorkload::new(capacity, 0.0, 8);
    // Enough to finish exactly one shuffle.
    let requests = generator.generate(40);
    oram.run_batch(&requests).expect("batch");
    let stats = oram.stats();
    assert_eq!(
        stats.shuffles, 1,
        "setup: exactly one period boundary expected"
    );
    // Loads in the first period equal the period limit exactly.
    assert!(stats.total_io_loads() >= period_limit);

    // Shuffle traffic: the full pass reads and writes every partition slot
    // once (model: N reads + N writes, plus the configured headroom).
    let storage = oram.storage_device_stats();
    let block = 1024u64; // charged block bytes
    let total_slots_bytes = oram.storage_bytes();
    let shuffle_reads = storage.bytes_read - stats.total_io_loads() * block;
    assert_eq!(
        shuffle_reads, total_slots_bytes,
        "shuffle reads every slot once"
    );
    assert_eq!(
        storage.bytes_written, total_slots_bytes,
        "shuffle writes every slot once"
    );
}

/// The measured mean I/O latency must sit in the band the calibrated seek
/// model predicts for the region size (paper: 77 µs at 64 MB spans,
/// 107 µs at 1 GB spans).
#[test]
fn io_latency_sits_in_the_calibrated_band() {
    let capacity: u64 = 1 << 16; // 64 Mi"B" at 1 KB blocks
    let config = HOramConfig::new(capacity, 8, 1 << 13).with_seed(4);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([43u8; 32]),
    )
    .expect("h-oram builds");
    let mut generator = UniformWorkload::new(capacity, 0.0, 9);
    let requests = generator.generate(300);
    oram.run_batch(&requests).expect("batch");
    let mean = oram.stats().mean_io_latency().as_micros_f64();
    assert!(
        (55.0..95.0).contains(&mean),
        "mean I/O latency {mean} µs outside the 64 MB-span calibration band"
    );
}

/// Theoretical Table 5-1 invariants at the paper's parameter point.
#[test]
fn table_5_1_model_point() {
    let model = OramModel::new(1 << 20, 1 << 17, 4, 4.0);
    assert_eq!(model.requests_per_period(), 262_144.0);
    let horam = model.horam_io_per_access();
    assert!((horam.reads - 4.5).abs() < 1e-9);
    assert!((horam.writes - 4.0).abs() < 1e-9);
    let path = model.path_oram_io_per_request();
    assert_eq!(path.reads, 16.0);
}

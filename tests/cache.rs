//! Differential battery for the oblivious block cache: with caching
//! enabled — any policy, any capacity, with or without the SSD mid tier —
//! the engine must be **observably identical** to an uncached run on
//! everything except simulated time:
//!
//! * byte-identical responses over arbitrary request sequences;
//! * identical protocol counters (requests, loads, dummies, shuffles…);
//! * an identical bus trace *shape* — same devices, op kinds, physical
//!   slots, byte counts, in the same submission order;
//! * a simulated clock that never runs *slower* than the uncached run
//!   (hits only remove charged device time, never add it).
//!
//! Checked at 1 and 4 shards, by example and by property. The leakage
//! suite (`tests/leakage.rs`) covers the adversarial side: hit-heavy and
//! miss-heavy schedules are indistinguishable on the bus.

use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::crypto::rng::DeterministicRng;
use horam::prelude::*;
use horam::storage::cache::CacheConfig;
use horam::storage::device::AccessKind;
use horam::storage::trace::TraceEvent;
use rand::Rng;

const CAPACITY: u64 = 256;
const PAYLOAD: usize = 8;
const MEMORY_SLOTS: u64 = 64;

fn config(cache: Option<CacheConfig>) -> HOramConfig {
    let base = HOramConfig::new(CAPACITY, PAYLOAD, MEMORY_SLOTS).with_seed(0x6cac);
    match cache {
        Some(cache) => base.with_cache(cache),
        None => base,
    }
}

fn build(cache: Option<CacheConfig>) -> HOram {
    HOram::new(
        config(cache),
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([0x2B; 32]),
    )
    .expect("construction succeeds")
}

/// A deterministic mixed read/write workload.
fn workload(len: usize, seed: u64) -> Vec<Request> {
    let mut rng = DeterministicRng::from_u64_seed(seed);
    (0..len)
        .map(|_| {
            let id = rng.gen_range(0..CAPACITY);
            if rng.gen_bool(0.3) {
                Request::write(id, vec![rng.gen::<u8>(); PAYLOAD])
            } else {
                Request::read(id)
            }
        })
        .collect()
}

/// The adversary-visible part of an event: everything except the
/// timestamp. Cache hits may only change *when* things happen on the
/// simulated clock, never *what* happens.
fn shape(events: &[TraceEvent]) -> Vec<(u16, bool, u64, u64)> {
    events
        .iter()
        .map(|e| (e.device.0, e.kind == AccessKind::Read, e.addr, e.bytes))
        .collect()
}

/// Every protocol counter in [`HOramStats`] — the fields that must not
/// move when a cache is installed. Time fields are deliberately absent:
/// saving simulated device time is the cache's whole point.
fn counters(stats: &HOramStats) -> [u64; 10] {
    [
        stats.requests,
        stats.writes,
        stats.cycles,
        stats.memory_hits,
        stats.dummy_memory_accesses,
        stats.real_io_loads,
        stats.dummy_io_loads,
        stats.prefetched_blocks,
        stats.shuffles,
        stats.spilled_blocks,
    ]
}

struct Observed {
    responses: Vec<Vec<u8>>,
    counters: [u64; 10],
    shape: Vec<(u16, bool, u64, u64)>,
    clock: u64,
}

fn observe(cache: Option<CacheConfig>, requests: &[Request]) -> Observed {
    let mut oram = build(cache);
    let responses = oram.run_batch(requests).expect("batch runs");
    Observed {
        responses,
        counters: counters(&oram.stats()),
        shape: shape(&oram.trace().snapshot()),
        clock: oram.clock().now().as_nanos(),
    }
}

/// The headline differential: a small LRU cache changes nothing the
/// protocol (or an adversary) can see, and never slows the clock.
#[test]
fn cached_run_is_observably_identical_to_uncached() {
    let requests = workload(400, 71);
    let uncached = observe(None, &requests);
    let cached = observe(Some(CacheConfig::lru(16)), &requests);

    assert_eq!(cached.responses, uncached.responses, "responses diverged");
    assert_eq!(cached.counters, uncached.counters, "counters diverged");
    assert_eq!(cached.shape, uncached.shape, "bus shape diverged");
    assert!(
        cached.clock <= uncached.clock,
        "cache slowed the clock: {} > {}",
        cached.clock,
        uncached.clock
    );
}

/// In the hit-bound regime (capacity covers every storage slot) the
/// cache actually hits — the differential above is not vacuous — and the
/// saved device time shows up on the simulated clock.
#[test]
fn hit_bound_cache_hits_and_saves_simulated_time() {
    let requests = workload(600, 73);
    let uncached = observe(None, &requests);

    let mut oram = build(Some(CacheConfig::lru(1 << 20)));
    let responses = oram.run_batch(&requests).expect("batch runs");
    let stats = oram.cache_stats().expect("cache installed");

    assert!(oram.stats().shuffles >= 2, "setup: periods must turn");
    assert!(
        stats.hits > 0,
        "hit-bound run produced no hits: {stats:?} (hits come from shuffle population)"
    );
    assert_eq!(stats.evictions, 0, "hit-bound cache must never evict");
    assert_eq!(responses, uncached.responses);
    assert_eq!(counters(&oram.stats()), uncached.counters);
    assert!(
        oram.clock().now().as_nanos() < uncached.clock,
        "hits saved no simulated time"
    );
}

/// Capacity and policy are pure performance knobs: every point in the
/// (policy × capacity × mid-tier) grid returns byte-identical responses
/// and an identical bus shape.
#[test]
fn responses_identical_across_policies_capacities_and_tiers() {
    let requests = workload(300, 79);
    let reference = observe(None, &requests);

    let mut grid: Vec<CacheConfig> = Vec::new();
    for capacity in [1u64, 4, 64, 1 << 20] {
        grid.push(CacheConfig::lru(capacity));
        grid.push(CacheConfig::clock(capacity));
    }
    grid.push(CacheConfig::lru(8).with_mid_tier(64));
    grid.push(CacheConfig::clock(8).with_mid_tier(64));

    for cache in grid {
        let label = format!(
            "{:?} cap {} mid {}",
            cache.policy,
            cache.capacity_blocks,
            cache.mid.is_some()
        );
        let has_mid = cache.mid.is_some();
        let observed = observe(Some(cache), &requests);
        assert_eq!(
            observed.responses, reference.responses,
            "{label}: responses diverged"
        );
        assert_eq!(
            observed.counters, reference.counters,
            "{label}: counters diverged"
        );
        assert_eq!(observed.shape, reference.shape, "{label}: shape diverged");
        // RAM hits are strictly cheaper than any device access, so the
        // clock can only speed up. The SSD mid tier carries no such
        // guarantee at this micro-scale geometry: the whole dataset spans
        // a few hundred KB of a 500 GB disk, so a calibrated HDD seek
        // (~66 µs) undercuts a single SSD read (80 µs) — the tier pays
        // off in queued batches and at realistic spans (ARCHITECTURE
        // §10). Equivalence above is what matters; timing is a knob.
        if !has_mid {
            assert!(observed.clock <= reference.clock, "{label}: clock slowed");
        }
    }
}

/// Per-shard caches aggregate and stay semantics-preserving: a 4-shard
/// cached engine matches a 4-shard uncached engine byte for byte, and
/// the merged cache statistics are visible at the top.
#[test]
fn sharded_cached_equals_sharded_uncached() {
    let requests = workload(400, 83);
    let sharded = |cache: Option<CacheConfig>| {
        let base = config(cache);
        ShardedOram::new(
            ShardedConfig::new(base, 4),
            MasterKey::from_bytes([0x2B; 32]),
            |_| MemoryHierarchy::dac2019(),
        )
        .expect("sharded instance builds")
    };

    let mut uncached = sharded(None);
    let expected = uncached.run_batch(&requests).expect("uncached runs");
    assert_eq!(uncached.cache_stats(), None, "no cache configured");

    let mut cached = sharded(Some(CacheConfig::lru(1 << 20)));
    let responses = cached.run_batch(&requests).expect("cached runs");

    assert_eq!(responses, expected, "responses diverged");
    assert_eq!(
        counters(&cached.stats()),
        counters(&uncached.stats()),
        "aggregate counters diverged"
    );
    for (i, (a, b)) in cached.shards().iter().zip(uncached.shards()).enumerate() {
        assert_eq!(
            shape(&a.trace().snapshot()),
            shape(&b.trace().snapshot()),
            "shard {i} bus shape diverged"
        );
    }
    let stats = cached.cache_stats().expect("merged stats surface");
    assert!(stats.hits > 0, "hit-bound sharded run produced no hits");
    assert!(cached.clock().now() <= uncached.clock().now());
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_ops(max: usize) -> impl Strategy<Value = Vec<(u64, Option<u8>)>> {
        proptest::collection::vec((0u64..64, proptest::option::of(any::<u8>())), 1..max)
    }

    fn requests_from(ops: &[(u64, Option<u8>)]) -> Vec<Request> {
        ops.iter()
            .map(|(id, write)| match write {
                Some(byte) => Request::write(*id, vec![*byte; PAYLOAD]),
                None => Request::read(*id),
            })
            .collect()
    }

    fn small(cache: Option<CacheConfig>) -> HOram {
        let base = HOramConfig::new(64, PAYLOAD, 16).with_seed(97);
        let config = match cache {
            Some(cache) => base.with_cache(cache),
            None => base,
        };
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0x2B; 32]),
        )
        .expect("construction succeeds")
    }

    fn cache_points() -> Vec<CacheConfig> {
        vec![
            CacheConfig::lru(2),
            CacheConfig::clock(2),
            CacheConfig::lru(1 << 16),
            CacheConfig::clock(8).with_mid_tier(32),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For arbitrary read/write interleavings, every cache point is
        /// observably identical to the uncached engine (tiny memory tree,
        /// so sequences cross shuffle periods and the cache populates).
        #[test]
        fn cached_equals_uncached_for_arbitrary_sequences(
            ops in arbitrary_ops(70),
        ) {
            let requests = requests_from(&ops);
            let mut reference = small(None);
            let expected = reference.run_batch(&requests).expect("uncached runs");
            let expected_counters = counters(&reference.stats());
            let expected_shape = shape(&reference.trace().snapshot());

            for cache in cache_points() {
                let label = format!("{:?} cap {}", cache.policy, cache.capacity_blocks);
                let has_mid = cache.mid.is_some();
                let mut oram = small(Some(cache));
                let responses = oram.run_batch(&requests).expect("cached runs");
                prop_assert_eq!(&responses, &expected, "{}: responses", label);
                prop_assert_eq!(counters(&oram.stats()), expected_counters, "{}: counters", label);
                prop_assert_eq!(&shape(&oram.trace().snapshot()), &expected_shape, "{}: shape", label);
                // See the grid test: the mid tier's SSD timing carries no
                // clock bound at micro-scale spans; RAM-only caches do.
                if !has_mid {
                    prop_assert!(
                        oram.clock().now() <= reference.clock().now(),
                        "{}: clock slowed", label
                    );
                }
            }
        }

        /// The same equivalence at 4 shards, through per-shard caches.
        #[test]
        fn sharded_cached_equals_sharded_uncached_for_arbitrary_sequences(
            ops in arbitrary_ops(60),
        ) {
            let requests = requests_from(&ops);
            let sharded = |cache: Option<CacheConfig>| {
                let base = HOramConfig::new(64, PAYLOAD, 16).with_seed(97);
                let config = match cache {
                    Some(cache) => base.with_cache(cache),
                    None => base,
                };
                ShardedOram::new(
                    ShardedConfig::new(config, 4),
                    MasterKey::from_bytes([0x2B; 32]),
                    |_| MemoryHierarchy::dac2019(),
                )
                .expect("sharded instance builds")
            };

            let mut reference = sharded(None);
            let expected = reference.run_batch(&requests).expect("uncached runs");

            let mut cached = sharded(Some(CacheConfig::clock(1 << 16)));
            let responses = cached.run_batch(&requests).expect("cached runs");
            prop_assert_eq!(responses, expected);
            prop_assert_eq!(counters(&cached.stats()), counters(&reference.stats()));
            for (i, (a, b)) in cached.shards().iter().zip(reference.shards()).enumerate() {
                prop_assert_eq!(
                    shape(&a.trace().snapshot()),
                    shape(&b.trace().snapshot()),
                    "shard {} shape diverged", i
                );
            }
            prop_assert!(cached.clock().now() <= reference.clock().now());
        }
    }
}

//! Chaos battery: the end-to-end failure-hardening contract under
//! property-based fault schedules.
//!
//! The contract (ISSUE: robustness tentpole): under **any** seeded fault
//! schedule the sharded engine produces, for every submitted request,
//! either a clean typed error or a byte-identical recovered answer —
//! never a panic, never a wrong answer. The battery drives `ShardedOram`
//! at 1 and 4 shards through proptest-generated workloads with
//! mid-run storage-fault injection (transient read faults up to a full
//! outage, or permanent media failure), a recovery kit installed, and
//! checks:
//!
//! 1. **Totality** — every ticket resolves exactly once: a response or a
//!    typed failure (`take_failure`), no lost tickets, no panics.
//! 2. **No wrong answers** — reads on never-faulted shards are byte-
//!    exact against a reference `HashMap` model; reads on the faulted
//!    shard may only return a value that was actually associated with
//!    that block (its checkpointed value or a value written to it this
//!    batch) — garbage or another block's payload fails the property.
//! 3. **Checkpoint-rollback awareness** — after a kit restore, the shard
//!    serves exactly its checkpointed contents (writes since the
//!    checkpoint rolled back with the failed window); after a permanent
//!    fault the shard degrades and every access to it fails typed while
//!    the other shards keep serving byte-exact answers.
//! 4. **Determinism** — the entire case (responses, failures, recovery
//!    count, degraded set) is byte-identical when re-run with the same
//!    seeds: fault injection is replayable, not flaky.
//!
//! Every case logs its generative seeds (`fault_seed`, permille, mode)
//! so a failure reproduces from the test output alone.

use std::collections::HashMap;

use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::prelude::*;
use horam::storage::fault::FaultConfig;
use proptest::prelude::*;

const CAPACITY: u64 = 64;
const PAYLOAD: usize = 8;

fn build(shards: u64) -> ShardedOram {
    let config = ShardedConfig::new(
        HOramConfig::new(CAPACITY, PAYLOAD, 16)
            .with_seed(23)
            .with_io_batch(8),
        shards,
    );
    ShardedOram::new(config, MasterKey::from_bytes([0x7A; 32]), |_| {
        MemoryHierarchy::dac2019()
    })
    .expect("sharded instance builds")
}

/// One request's fully-resolved fate, stringified so two runs of the
/// same case compare byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fate {
    Response(Vec<u8>),
    Failed(String),
}

/// Everything observable from one case run; compared across repeat runs
/// for the determinism property.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CaseOutcome {
    fates: Vec<Fate>,
    recoveries: u64,
    degraded: Vec<usize>,
}

/// Drives one full chaos case: init writes → checkpoint → fault
/// injection on one shard → generated workload → pump to drain →
/// resolve every ticket. Panics (failing the property) if a ticket is
/// lost or the pump stalls.
fn run_case(
    shards: u64,
    ops: &[(u64, Option<u8>)],
    fault_seed: u64,
    permille: u32,
    permanent: bool,
) -> CaseOutcome {
    let mut oram = build(shards);

    // Ground truth for every block, then checkpoint it.
    let init: Vec<Request> = (0..CAPACITY)
        .map(|id| Request::write(id, vec![id as u8; PAYLOAD]))
        .collect();
    oram.run_batch(&init).expect("fault-free init");
    oram.enable_recovery(|_| MemoryHierarchy::dac2019())
        .expect("recovery kit installs");

    let target = (fault_seed % shards) as usize;
    let config = if permanent {
        FaultConfig {
            seed: fault_seed,
            permanent_slots: (0..8192).collect(),
            ..FaultConfig::default()
        }
    } else {
        FaultConfig {
            seed: fault_seed,
            transient_read_permille: permille,
            ..FaultConfig::default()
        }
    };
    oram.inject_storage_faults(target, config);

    // Enqueue the whole workload up front (the shard is healthy at
    // admission), then pump until every healthy queue drains.
    let mut tickets = Vec::with_capacity(ops.len());
    for (id, write) in ops {
        let request = match write {
            Some(byte) => Request::write(*id, vec![*byte; PAYLOAD]),
            None => Request::read(*id),
        };
        tickets.push(oram.enqueue(request).expect("healthy-at-admission enqueue"));
    }
    let mut rounds = 0u32;
    while !oram.is_drained() {
        oram.run_cycle_window(8)
            .expect("the pump absorbs shard failures");
        rounds += 1;
        assert!(
            rounds < 100_000,
            "pump stalled with {} pending",
            oram.pending()
        );
    }

    let fates = tickets
        .into_iter()
        .map(|ticket| match oram.take_response(ticket) {
            Some(bytes) => Fate::Response(bytes),
            None => Fate::Failed(
                oram.take_failure(ticket)
                    .expect("every unresolved ticket carries a typed failure")
                    .to_string(),
            ),
        })
        .collect();

    let outcome = CaseOutcome {
        fates,
        recoveries: oram.recoveries(),
        degraded: oram.degraded_shards(),
    };

    // Post-run probes: the surviving system still answers correctly.
    let shard_of: Vec<usize> = (0..CAPACITY)
        .map(|id| oram.mapper().shard_of(BlockId(id)).expect("id in domain") as usize)
        .collect();

    // Reference model on the healthy shards: init plus this batch's
    // writes, in submission order.
    let mut healthy_model: HashMap<u64, Vec<u8>> = (0..CAPACITY)
        .map(|id| (id, vec![id as u8; PAYLOAD]))
        .collect();
    for (id, write) in ops {
        if let Some(byte) = write {
            healthy_model.insert(*id, vec![*byte; PAYLOAD]);
        }
    }
    for id in 0..CAPACITY {
        let shard = shard_of[id as usize];
        if outcome.degraded.contains(&shard) {
            assert!(
                oram.read(BlockId(id)).is_err(),
                "reads on a degraded shard must fail typed"
            );
        } else if shard == target && (outcome.recoveries > 0 || !outcome.degraded.is_empty()) {
            // Restored from checkpoint: the batch's writes rolled back.
            assert_eq!(
                oram.read(BlockId(id)).expect("restored shard serves"),
                vec![id as u8; PAYLOAD],
                "restored shard must serve exactly its checkpoint"
            );
        } else if shard != target {
            assert_eq!(
                oram.read(BlockId(id)).expect("healthy shard serves"),
                healthy_model[&id],
                "healthy shard diverged from the reference model"
            );
        }
        // The faulted-but-never-failed shard is checked through the
        // in-batch no-wrong-answers property below; its post-run reads
        // still traverse the fault plan and may themselves fail typed.
    }

    outcome
}

/// The no-wrong-answers check: every `Ok` read returned a value that was
/// actually associated with its block — its init/checkpoint payload or a
/// value some earlier-submitted write in this batch gave it.
fn assert_no_wrong_answers(ops: &[(u64, Option<u8>)], outcome: &CaseOutcome, label: &str) {
    let mut seen: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();
    for (index, (id, write)) in ops.iter().enumerate() {
        let candidates = seen
            .entry(*id)
            .or_insert_with(|| vec![vec![*id as u8; PAYLOAD]]);
        match (&outcome.fates[index], write) {
            (Fate::Response(bytes), None) => {
                assert!(
                    candidates.contains(bytes),
                    "{label}: read of block {id} returned {bytes:?}, \
                     never a value of that block (candidates {candidates:?})"
                );
            }
            (Fate::Response(_), Some(byte)) => candidates.push(vec![*byte; PAYLOAD]),
            (Fate::Failed(reason), _) => {
                assert!(!reason.is_empty(), "{label}: typed failures carry a reason");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Four shards, one under fire: typed errors or byte-identical
    /// answers, healthy shards unaffected, deterministic on re-run.
    #[test]
    fn four_shards_survive_any_fault_schedule(
        ops in proptest::collection::vec(
            (0u64..CAPACITY, proptest::option::of(any::<u8>())), 1..40),
        fault_seed in any::<u64>(),
        permille in 0u32..=1000,
        permanent in any::<bool>(),
    ) {
        println!(
            "chaos case: shards=4 fault_seed={fault_seed} permille={permille} permanent={permanent}"
        );
        let outcome = run_case(4, &ops, fault_seed, permille, permanent);
        assert_no_wrong_answers(&ops, &outcome, "shards=4");
        let replay = run_case(4, &ops, fault_seed, permille, permanent);
        prop_assert_eq!(
            &outcome, &replay,
            "fault schedule must be deterministic: same seeds, same fates"
        );
        println!(
            "chaos case: shards=4 fault_seed={fault_seed} → recoveries={} degraded={:?}",
            outcome.recoveries, outcome.degraded
        );
    }

    /// One shard: no healthy siblings to hide behind — a failure
    /// either restores from the checkpoint or degrades the whole
    /// instance, and both paths stay typed and deterministic.
    #[test]
    fn single_shard_survives_any_fault_schedule(
        ops in proptest::collection::vec(
            (0u64..CAPACITY, proptest::option::of(any::<u8>())), 1..40),
        fault_seed in any::<u64>(),
        permille in 0u32..=1000,
        permanent in any::<bool>(),
    ) {
        println!(
            "chaos case: shards=1 fault_seed={fault_seed} permille={permille} permanent={permanent}"
        );
        let outcome = run_case(1, &ops, fault_seed, permille, permanent);
        assert_no_wrong_answers(&ops, &outcome, "shards=1");
        let replay = run_case(1, &ops, fault_seed, permille, permanent);
        prop_assert_eq!(
            &outcome, &replay,
            "fault schedule must be deterministic: same seeds, same fates"
        );
    }
}

/// A full outage mid-run (every read faults, retries exhausted) with a
/// recovery kit: the kit restores the shard from its checkpoint, the
/// batch's lost tickets fail typed, and the restored shard serves its
/// checkpointed contents byte-exactly — the deterministic pin under the
/// proptest umbrella above.
#[test]
fn full_read_outage_restores_from_checkpoint() {
    let ops: Vec<(u64, Option<u8>)> = (0..CAPACITY).map(|id| (id, None)).collect();
    let outcome = run_case(4, &ops, 7, 1000, false);
    assert_eq!(outcome.recoveries, 1, "the kit must restore the dead shard");
    assert!(
        outcome.degraded.is_empty(),
        "a restored shard is not degraded"
    );
    assert!(
        outcome.fates.iter().any(|f| matches!(f, Fate::Failed(_))),
        "the failed window's tickets must resolve to typed failures"
    );
}

/// Permanent media failure degrades the shard even with a kit installed
/// (restoring onto dead media would fail again), and the other shards
/// keep serving.
#[test]
fn permanent_media_failure_degrades_despite_recovery_kit() {
    let ops: Vec<(u64, Option<u8>)> = (0..CAPACITY).map(|id| (id, None)).collect();
    let outcome = run_case(4, &ops, 3, 0, true);
    assert_eq!(
        outcome.recoveries, 0,
        "dead media must not be restored onto"
    );
    assert_eq!(
        outcome.degraded.len(),
        1,
        "exactly the faulted shard degrades"
    );
}

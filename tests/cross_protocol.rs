//! Cross-protocol validation: every ORAM in the workspace implements the
//! same logical contract, so the same trace must produce the same answers
//! from all of them.

use horam::crypto::keys::{KeyHierarchy, MasterKey};
use horam::prelude::*;
use horam::protocols::{
    build_tree_top_cache, Oram, PartitionOram, PathOram, PathOramConfig, SquareRootOram,
};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;
use horam::workload::{HotspotWorkload, WorkloadGenerator};

const CAPACITY: u64 = 128;
const PAYLOAD: usize = 8;

fn workload(seed: u64) -> Vec<Request> {
    let mut generator = HotspotWorkload::new(CAPACITY, 0.8, 0.25, 0.4, PAYLOAD, seed);
    generator.generate(300)
}

/// Collects each protocol's responses for the trace.
fn responses_of(oram: &mut dyn Oram, requests: &[Request]) -> Vec<Vec<u8>> {
    requests
        .iter()
        .map(|r| oram.access(r).expect("access succeeds"))
        .collect()
}

fn all_protocols(master: &MasterKey) -> Vec<(&'static str, Box<dyn Oram>)> {
    let machine = MachineConfig::dac2019();
    let mut protocols: Vec<(&'static str, Box<dyn Oram>)> = Vec::new();

    let device = machine.build_memory(SimClock::new(), None);
    protocols.push((
        "path-oram",
        Box::new(
            PathOram::new(
                PathOramConfig::new(CAPACITY, PAYLOAD),
                device,
                &master.derive("xp/path", 0),
            )
            .unwrap(),
        ),
    ));

    let clock = SimClock::new();
    let (ttc, _) = build_tree_top_cache(
        PathOramConfig::new(CAPACITY, PAYLOAD),
        32,
        machine.build_memory(clock.clone(), None),
        machine.build_storage(clock, None),
        &master.derive("xp/ttc", 0),
    )
    .unwrap();
    protocols.push(("tree-top-cache", Box::new(ttc)));

    protocols.push((
        "square-root",
        Box::new(
            SquareRootOram::new(
                CAPACITY,
                PAYLOAD,
                machine.build_storage(SimClock::new(), None),
                KeyHierarchy::new(master.clone(), "xp/sqrt"),
                3,
            )
            .unwrap(),
        ),
    ));

    protocols.push((
        "partition",
        Box::new(
            PartitionOram::new(
                CAPACITY,
                PAYLOAD,
                None,
                machine.build_storage(SimClock::new(), None),
                KeyHierarchy::new(master.clone(), "xp/partition"),
                4,
            )
            .unwrap(),
        ),
    ));

    let config = HOramConfig::new(CAPACITY, PAYLOAD, 32).with_seed(11);
    protocols.push((
        "h-oram",
        Box::new(HOram::new(config, MemoryHierarchy::dac2019(), master.clone()).unwrap()),
    ));

    protocols
}

#[test]
fn all_protocols_agree_on_one_trace() {
    let master = MasterKey::from_bytes([13u8; 32]);
    let requests = workload(1);
    let mut all = all_protocols(&master);
    let (reference_name, reference_oram) = &mut all[0];
    let reference = responses_of(reference_oram.as_mut(), &requests);
    let reference_name = *reference_name;
    for (name, oram) in &mut all[1..] {
        let got = responses_of(oram.as_mut(), &requests);
        assert_eq!(
            got, reference,
            "{name} disagrees with {reference_name} on the shared trace"
        );
    }
}

#[test]
fn capacities_and_payloads_report_consistently() {
    let master = MasterKey::from_bytes([14u8; 32]);
    for (name, oram) in &mut all_protocols(&master) {
        assert_eq!(oram.capacity(), CAPACITY, "{name} capacity");
        assert_eq!(oram.payload_len(), PAYLOAD, "{name} payload length");
    }
}

#[test]
fn out_of_range_is_rejected_by_every_protocol() {
    let master = MasterKey::from_bytes([15u8; 32]);
    for (name, oram) in &mut all_protocols(&master) {
        let result = oram.read(BlockId(CAPACITY));
        assert!(
            matches!(result, Err(OramError::BlockOutOfRange { .. })),
            "{name} accepted an out-of-range id"
        );
    }
}

#[test]
fn wrong_payload_is_rejected_by_every_protocol() {
    let master = MasterKey::from_bytes([16u8; 32]);
    for (name, oram) in &mut all_protocols(&master) {
        let result = oram.write(BlockId(0), &[1u8; PAYLOAD + 1]);
        assert!(
            matches!(result, Err(OramError::PayloadSize { .. })),
            "{name} accepted a mis-sized payload"
        );
    }
}

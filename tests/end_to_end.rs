//! End-to-end H-ORAM correctness: long mixed workloads across many
//! periods must agree with a plain reference map.

use horam::prelude::*;
use horam::workload::{BurstWorkload, UniformWorkload, WorkloadGenerator, ZipfWorkload};
use std::collections::HashMap;

/// Runs a request trace against H-ORAM and a HashMap reference, asserting
/// byte equality of every response.
fn check_against_reference(mut oram: HOram, requests: &[Request], payload_len: usize) -> HOram {
    let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
    let responses = oram.run_batch(requests).expect("batch runs");
    for (request, response) in requests.iter().zip(&responses) {
        match &request.op {
            RequestOp::Read => {
                let expected = reference
                    .get(&request.id.0)
                    .cloned()
                    .unwrap_or(vec![0u8; payload_len]);
                assert_eq!(response, &expected, "read of block {}", request.id);
            }
            RequestOp::Write(payload) => {
                let expected = reference
                    .insert(request.id.0, payload.clone())
                    .unwrap_or(vec![0u8; payload_len]);
                assert_eq!(
                    response, &expected,
                    "write-previous of block {}",
                    request.id
                );
            }
        }
    }
    oram
}

fn build(capacity: u64, memory_slots: u64, payload_len: usize, seed: u64) -> HOram {
    let config = HOramConfig::new(capacity, payload_len, memory_slots).with_seed(seed);
    HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([21u8; 32]),
    )
    .expect("construction succeeds")
}

#[test]
fn hotspot_workload_with_writes_across_periods() {
    let mut generator = HotspotWorkload::new(512, 0.8, 0.2, 0.4, 16, 3);
    let requests = generator.generate(600);
    let oram = check_against_reference(build(512, 64, 16, 1), &requests, 16);
    assert!(oram.stats().shuffles >= 2, "must cross multiple periods");
}

#[test]
fn uniform_workload_is_correct_despite_poor_locality() {
    let mut generator = UniformWorkload::with_payload(256, 0.5, 8, 9);
    let requests = generator.generate(400);
    let oram = check_against_reference(build(256, 32, 8, 2), &requests, 8);
    // Uniform traffic has little reuse: most I/O is real misses.
    assert!(oram.stats().real_io_loads > 100);
}

#[test]
fn zipf_workload_exploits_the_cache() {
    let mut generator = ZipfWorkload::new(1024, 1.1, 0.0, 5);
    let requests = generator.generate(500);
    let oram = check_against_reference(build(1024, 256, 8, 3), &requests, 8);
    let stats = oram.stats();
    assert!(
        stats.requests_per_io() > 1.0,
        "zipf reuse should beat one request per load, got {}",
        stats.requests_per_io()
    );
}

#[test]
fn burst_workload_survives_working_set_shifts() {
    let mut generator = BurstWorkload::new(512, 64, 7);
    let requests = generator.generate(400);
    check_against_reference(build(512, 64, 8, 4), &requests, 8);
}

#[test]
fn interleaved_batches_preserve_state() {
    let mut oram = build(128, 32, 8, 5);
    for round in 0..5u8 {
        let writes: Vec<Request> = (0..16u64)
            .map(|i| Request::write(i, vec![round; 8]))
            .collect();
        oram.run_batch(&writes).expect("write batch");
        let reads: Vec<Request> = (0..16u64).map(Request::read).collect();
        let values = oram.run_batch(&reads).expect("read batch");
        for value in values {
            assert_eq!(value, vec![round; 8]);
        }
    }
}

#[test]
fn multi_user_sessions_share_one_instance() {
    use horam::core::{run_multi_user, UserId};
    let mut oram = build(256, 64, 8, 6);
    let queues: Vec<(UserId, Vec<Request>)> = (0..4u32)
        .map(|u| {
            let base = u as u64 * 64;
            let requests: Vec<Request> = (0..32u64)
                .map(|i| Request::write(base + i % 16, vec![u as u8 + 1; 8]))
                .collect();
            (UserId(u), requests)
        })
        .collect();
    let report = run_multi_user(&mut oram, queues).expect("multi-user run");
    assert_eq!(report.requests, 128);
    assert!(report.requests_per_sec > 0.0);
    // Each user's region reads back their value.
    for u in 0..4u32 {
        let value = oram.read(BlockId(u as u64 * 64)).expect("read back");
        assert_eq!(value, vec![u as u8 + 1; 8], "user {u} region");
    }
}

#[test]
fn deterministic_replay_gives_identical_timing() {
    let mut generator = HotspotWorkload::paper_default(256, 17);
    let requests = generator.generate(200);
    let mut first = build(256, 64, 8, 7);
    first.run_batch(&requests).expect("first run");
    let mut second = build(256, 64, 8, 7);
    second.run_batch(&requests).expect("second run");
    assert_eq!(
        first.stats(),
        second.stats(),
        "whole runs must be replayable"
    );
    assert_eq!(first.clock().now(), second.clock().now());
}

#[test]
fn partial_shuffle_equals_full_shuffle_functionally() {
    let mut generator = HotspotWorkload::new(256, 0.8, 0.2, 0.3, 8, 23);
    let requests = generator.generate(300);

    let full = HOramConfig::new(256, 8, 32).with_seed(8);
    check_against_reference(
        HOram::new(
            full,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([1u8; 32]),
        )
        .unwrap(),
        &requests,
        8,
    );

    let partial = HOramConfig::new(256, 8, 32)
        .with_seed(8)
        .with_partial_shuffle(0.25);
    let oram = check_against_reference(
        HOram::new(
            partial,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([1u8; 32]),
        )
        .unwrap(),
        &requests,
        8,
    );
    assert!(oram.stats().shuffles >= 1);
}

//! Integration tests of the beyond-paper extension modules: the recursive
//! position map, the page-cache device model, and admission-controlled
//! multi-tenant runs working together with the core system.

use horam::core::access_control::{AccessControl, Permission};
use horam::core::{run_multi_user, UserId};
use horam::prelude::*;
use horam::protocols::BlockId;
use horam::protocols::{PathOramConfig, RecursivePathOram};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;
use horam::storage::device::{AccessKind, TimingModel};
use horam::storage::hdd::HddModel;
use horam::storage::page_cache::{PageCacheModel, PageCacheParams};

#[test]
fn recursive_oram_agrees_with_flat_path_oram() {
    let machine = MachineConfig::dac2019();
    let keys = MasterKey::from_bytes([71u8; 32]).derive("ext/recursive", 0);

    let clock = SimClock::new();
    let machine_for_factory = machine.clone();
    let mut recursive = RecursivePathOram::new(
        PathOramConfig::new(128, 8),
        16,
        4,
        move || machine_for_factory.build_memory(clock.clone(), None),
        &keys,
    )
    .expect("recursive builds");

    let mut flat = horam::protocols::PathOram::new(
        PathOramConfig::new(128, 8),
        machine.build_memory(SimClock::new(), None),
        &keys,
    )
    .expect("flat builds");

    // Same logical trace through both; answers must agree.
    for i in 0..128u64 {
        let payload = vec![(i % 251) as u8; 8];
        recursive
            .write(BlockId(i), &payload)
            .expect("recursive write");
        flat.write(BlockId(i), &payload).expect("flat write");
    }
    for i in (0..128u64).rev() {
        assert_eq!(
            recursive.read(BlockId(i)).expect("recursive read"),
            flat.read(BlockId(i)).expect("flat read"),
            "divergence at block {i}"
        );
    }
}

#[test]
fn recursive_oram_shrinks_the_trusted_table() {
    let machine = MachineConfig::dac2019();
    let clock = SimClock::new();
    let keys = MasterKey::from_bytes([72u8; 32]).derive("ext/enclave", 0);
    let oram = RecursivePathOram::new(
        PathOramConfig::new(4096, 8),
        64, // fanout 8
        8,
        move || machine.build_memory(clock.clone(), None),
        &keys,
    )
    .expect("builds");
    // Naive map: 4096 × 8 B = 32 768 B; the recursive root is far smaller.
    assert!(
        oram.enclave_bytes() < 8192,
        "enclave {} B",
        oram.enclave_bytes()
    );
    assert!(oram.map_levels() >= 2);
}

#[test]
fn page_cached_device_speeds_up_hot_reads_without_changing_data() {
    // The cache is a pure timing layer: contents are unaffected.
    let mut raw = HddModel::paper_calibrated();
    let mut cached =
        PageCacheModel::new(HddModel::paper_calibrated(), PageCacheParams::linux_16gb());

    let mut raw_total = horam::storage::clock::SimDuration::ZERO;
    let mut cached_total = horam::storage::clock::SimDuration::ZERO;
    for round in 0..50u64 {
        let offset = (round % 5) * 4096; // 5 hot pages
        raw_total += raw.access_cost(AccessKind::Read, offset, 1024);
        cached_total += cached.access_cost(AccessKind::Read, offset, 1024);
    }
    assert!(cached_total.as_nanos() * 5 < raw_total.as_nanos());
    assert!(cached.hit_rate() > 0.8);
}

#[test]
fn admission_control_blocks_cross_tenant_traffic_end_to_end() {
    let config = HOramConfig::new(256, 8, 64).with_seed(15);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([73u8; 32]),
    )
    .expect("builds");

    let mut acl = AccessControl::new();
    acl.grant(UserId(0), 0..128, Permission::ReadWrite);
    acl.grant(UserId(1), 128..256, Permission::ReadWrite);

    // Tenant 0 stores a secret; tenant 1 tries to read and overwrite it.
    let (mine, rejected) = acl.admit(UserId(0), vec![Request::write(5u64, vec![0x5E; 8])]);
    assert!(rejected.is_empty());
    let (theirs, rejected) = acl.admit(
        UserId(1),
        vec![
            Request::read(5u64),
            Request::write(5u64, vec![0xFF; 8]),
            Request::read(200u64),
        ],
    );
    assert_eq!(rejected.len(), 2, "both cross-tenant requests rejected");
    assert_eq!(theirs.len(), 1);

    let report =
        run_multi_user(&mut oram, vec![(UserId(0), mine), (UserId(1), theirs)]).expect("runs");
    assert_eq!(report.requests, 2);

    // The secret is intact and readable only through tenant 0's grant.
    assert_eq!(oram.read(BlockId(5)).expect("owner read"), vec![0x5E; 8]);
}

#[test]
fn rejections_generate_no_bus_traffic() {
    let config = HOramConfig::new(128, 8, 32).with_seed(16);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([74u8; 32]),
    )
    .expect("builds");
    let acl = AccessControl::new(); // default deny
    oram.reset_accounting();
    let (admitted, rejected) = acl.admit(UserId(9), vec![Request::read(1u64)]);
    assert!(admitted.is_empty());
    assert_eq!(rejected.len(), 1);
    // Nothing ran, nothing was observed.
    assert!(oram.trace().is_empty());
    assert_eq!(oram.stats().cycles, 0);
}

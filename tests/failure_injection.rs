//! Failure injection: corrupted storage must surface as typed errors,
//! never as silently wrong data.

use horam::crypto::keys::{KeyHierarchy, MasterKey};
use horam::crypto::seal::BlockSealer;
use horam::crypto::CryptoError;
use horam::prelude::*;
use horam::protocols::{Oram, OramError, PathOram, PathOramConfig, SquareRootOram};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;
use horam::storage::device::Device;
use horam::storage::StorageError;

/// Flips one ciphertext bit of a stored block on the device.
fn corrupt_one_block(device: &mut Device, addr: u64) {
    let mut block = device
        .take_block(addr)
        .expect("device healthy")
        .expect("block present");
    block.corrupt_bit(3);
    // Re-inserting without timing charge: we are modelling an attacker
    // writing directly to the medium, not a protocol write.
    let stats_before = *device.stats();
    device.write_block(addr, block).expect("write back");
    // (The extra charged write is irrelevant to the assertion below.)
    let _ = stats_before;
}

#[test]
fn path_oram_detects_tree_corruption() {
    let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
    let keys = MasterKey::from_bytes([51u8; 32]).derive("fi/path", 0);
    let mut oram = PathOram::new(PathOramConfig::new(64, 8), device, &keys).unwrap();
    oram.write(BlockId(1), &[9u8; 8]).unwrap();

    // Corrupt the root bucket: every path passes through it, so the next
    // access must fail authentication.
    // (Root bucket occupies slots 0..Z.)
    corrupt_one_block(oram.device_mut(), 0);
    let result = oram.read(BlockId(1));
    assert!(
        matches!(
            result,
            Err(OramError::Crypto(CryptoError::TagMismatch { .. }))
        ),
        "corruption not detected: {result:?}"
    );
}

#[test]
fn sealer_contract_rejects_any_corruption() {
    // The property every protocol's integrity rests on, exercised at the
    // sealing layer: one flipped ciphertext bit fails authentication.
    let sealer = BlockSealer::new(&MasterKey::from_bytes([53u8; 32]).derive("fi/unit", 0));
    for bit in [0usize, 7, 11, 29] {
        let mut sealed = sealer.seal(7, 0, &[1, 2, 3, 4]);
        sealed.corrupt_bit(bit);
        assert!(
            sealer.open(&sealed).is_err(),
            "bit {bit} flip went undetected"
        );
    }
}

#[test]
fn square_root_oram_works_after_unrelated_corruption_checks() {
    // A clean square-root instance behaves normally (sanity companion to
    // the sealer-contract test; its device is intentionally encapsulated).
    let device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
    let keys = KeyHierarchy::new(MasterKey::from_bytes([52u8; 32]), "fi/sqrt");
    let mut oram = SquareRootOram::new(64, 8, device, keys, 1).unwrap();
    oram.write(BlockId(3), &[5u8; 8]).unwrap();
    assert_eq!(oram.read(BlockId(3)).unwrap(), vec![5u8; 8]);
}

#[test]
fn horam_storage_corruption_is_detected_on_fetch() {
    use horam::core::StorageLayer;
    let config = HOramConfig::new(64, 8, 16).with_seed(5);
    let device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
    let master = MasterKey::from_bytes([54u8; 32]);
    let keys = KeyHierarchy::new(master.clone(), "fi/horam");
    let posmap = horam::core::build_posmap(&config, &master, false).unwrap();
    let mut layer = StorageLayer::new(&config, device, keys, posmap).unwrap();

    // Corrupt the slot of block 9, then fetch it.
    let horam::core::Location::Storage { slot } = layer.posmap_mut().location(BlockId(9)).unwrap()
    else {
        panic!("block 9 must start on storage");
    };
    corrupt_one_block(layer.device_mut(), slot);
    let result = layer.fetch(BlockId(9));
    assert!(
        matches!(
            result,
            Err(OramError::Crypto(CryptoError::TagMismatch { .. }))
        ),
        "corruption not detected: {result:?}"
    );
}

#[test]
fn reads_of_missing_slots_are_storage_errors() {
    let mut device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
    let result = device.read_block(12345);
    assert!(matches!(
        result,
        Err(StorageError::MissingBlock { addr: 12345, .. })
    ));
}

#[test]
fn capacity_violations_are_storage_errors() {
    let mut device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
    device.set_capacity_slots(10);
    let sealer = BlockSealer::new(&MasterKey::from_bytes([55u8; 32]).derive("fi/cap", 0));
    let result = device.write_block(10, sealer.seal(10, 0, b"x"));
    assert!(matches!(
        result,
        Err(StorageError::OutOfCapacity { capacity: 10, .. })
    ));
}

#[test]
fn horam_remains_usable_for_other_blocks_after_detecting_corruption() {
    use horam::core::StorageLayer;
    let config = HOramConfig::new(64, 8, 16).with_seed(6);
    let device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
    let master = MasterKey::from_bytes([56u8; 32]);
    let keys = KeyHierarchy::new(master.clone(), "fi/recover");
    let posmap = horam::core::build_posmap(&config, &master, false).unwrap();
    let mut layer = StorageLayer::new(&config, device, keys, posmap).unwrap();

    let horam::core::Location::Storage { slot } = layer.posmap_mut().location(BlockId(2)).unwrap()
    else {
        panic!("block 2 must start on storage");
    };
    corrupt_one_block(layer.device_mut(), slot);
    assert!(layer.fetch(BlockId(2)).is_err());

    // Undamaged blocks still fetch fine.
    let load = layer.fetch(BlockId(3)).expect("clean block fetches");
    assert_eq!(load.block.unwrap().0, BlockId(3));
}

/// Failed fsync is a *transient, recoverable* event for the durable
/// backend: when every sync is refused, the undo journal is never
/// truncated, so a crash after buffered writes leaves the journal
/// replayable — reopening rolls the data file back to the last
/// successful commit point, byte for byte, and the uncommitted epoch
/// simply never happened.
#[test]
fn failed_fsync_leaves_journal_replayable_on_reopen() {
    use horam::storage::fault::{FaultConfig, FaultyStore};
    use horam::storage::file::{scratch_dir, FileStore, FileStoreConfig};
    use horam::storage::store::DataStore;

    let dir = scratch_dir("fsync-fault");
    let path = dir.join("dev.horam");
    let journal = dir.join("dev.horam.undo");
    let config = FileStoreConfig::new(32, 64).with_write_back_slots(4);
    let sealer = BlockSealer::new(&MasterKey::from_bytes([57u8; 32]).derive("fi/fsync", 0));

    // Epoch 1: a committed state (sync succeeds, journal truncated).
    {
        let mut store = FileStore::open(&path, config.clone()).expect("open");
        store.put(3, sealer.seal(3, 0, b"committed")).expect("put");
        store.sync().expect("clean sync commits");

        // Epoch 2 behind an fsync-refusing injector: overwrite slot 3 and
        // add enough new slots to overflow the write-back buffer, forcing
        // a flush whose undo images land in the journal. Every sync
        // attempt fails typed-transient before reaching the file.
        let mut faulty = FaultyStore::new(
            Box::new(store),
            FaultConfig {
                seed: 11,
                fsync_fail_permille: 1000,
                ..FaultConfig::default()
            },
        );
        faulty
            .put(3, sealer.seal(3, 1, b"uncommitted"))
            .expect("buffered put");
        for slot in 7..12u64 {
            faulty
                .put(slot, sealer.seal(slot, 0, b"new"))
                .expect("buffered put");
        }
        let refused = faulty.sync();
        assert!(
            matches!(
                refused,
                Err(StorageError::TransientFault { op: "sync", .. })
            ),
            "injected fsync failure must surface typed: {refused:?}"
        );
        assert_eq!(faulty.stats().fsync_failures, 1);
        let journal_len = std::fs::metadata(&journal).expect("journal exists").len();
        assert!(
            journal_len > 0,
            "the flushed epoch's undo images must be journaled"
        );
        // Crash: the store drops without ever committing epoch 2.
    }

    // Reopen: journal replay rolls the file back to the last commit.
    let mut store = FileStore::open(&path, config).expect("reopen replays journal");
    assert_eq!(
        store.get(3).expect("get").expect("slot survives"),
        sealer.seal(3, 0, b"committed"),
        "rollback must restore the committed bytes"
    );
    for slot in 7..12u64 {
        assert!(
            store.get(slot).expect("get").is_none(),
            "uncommitted slot {slot} must vanish with the rollback"
        );
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

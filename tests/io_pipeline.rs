//! End-to-end guarantees of the batched zero-copy I/O pipeline: the
//! windowed scheduler must be a pure *timing* optimization — responses,
//! storage access patterns, and the once-per-period invariant are all
//! byte-identical to the sequential per-block path.

use horam::analysis::leakage::once_per_period;
use horam::core::storage_layer::LoadPlan;
use horam::core::StorageLayer;
use horam::crypto::keys::KeyHierarchy;
use horam::prelude::*;
use horam::storage::calibration::{device_ids, MachineConfig};
use horam::storage::clock::SimClock;
use horam_server::{FairSharePolicy, OramService, ServiceConfig};

use horam::core::{Permission, UserId};
use horam::crypto::rng::DeterministicRng;
use rand::Rng;

fn build(io_batch: u64, zero_copy: bool) -> HOram {
    let config = HOramConfig::new(512, 8, 128)
        .with_seed(23)
        .with_io_batch(io_batch)
        .with_zero_copy_io(zero_copy);
    HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([5u8; 32]),
    )
    .expect("construction succeeds")
}

fn mixed_workload(len: usize) -> Vec<Request> {
    let mut rng = DeterministicRng::from_u64_seed(77);
    (0..len)
        .map(|_| {
            let id = rng.gen_range(0..512u64);
            if rng.gen_bool(0.25) {
                Request::write(id, vec![rng.gen::<u8>(); 8])
            } else {
                Request::read(id)
            }
        })
        .collect()
}

/// Batched windows and the per-block path are observably identical: same
/// responses, same storage-device access sequence, same load counts —
/// only simulated I/O time (and host allocations) differ.
#[test]
fn batched_pipeline_is_observably_identical_to_per_block() {
    let requests = mixed_workload(400);

    let mut per_block = build(1, false);
    let per_block_responses = per_block.run_batch(&requests).expect("per-block run");
    let per_block_addrs = per_block.trace().address_sequence(device_ids::STORAGE);

    let mut batched = build(32, true);
    let batched_responses = batched.run_batch(&requests).expect("batched run");
    let batched_addrs = batched.trace().address_sequence(device_ids::STORAGE);

    assert_eq!(per_block_responses, batched_responses, "responses diverged");
    assert_eq!(
        per_block_addrs, batched_addrs,
        "storage access patterns diverged"
    );
    let (seq, bat) = (per_block.stats(), batched.stats());
    assert!(seq.shuffles >= 1, "setup: must cross a shuffle period");
    assert_eq!(seq.total_io_loads(), bat.total_io_loads());
    assert_eq!(seq.real_io_loads, bat.real_io_loads);
    assert!(
        bat.io_time < seq.io_time,
        "batching must win simulated I/O time"
    );
}

/// §4.4.1 under batching: within one access period no storage slot is
/// read twice, even when whole windows of loads are committed at once.
#[test]
fn batched_loads_keep_the_once_per_period_invariant() {
    let mut oram = build(32, true);
    // Hot-set hammering maximizes dummy loads — the risky case.
    let requests: Vec<Request> = (0..180u64).map(|i| Request::read(i % 12)).collect();
    oram.run_batch(&requests).expect("batch");
    assert_eq!(
        oram.stats().shuffles,
        0,
        "setup: stay within one period (budget 64)"
    );
    let events = oram.trace().snapshot();
    assert_eq!(
        once_per_period(&events, device_ids::STORAGE, &[]),
        None,
        "a storage slot was read twice within a period under batching"
    );
}

/// The storage layer's `load_batch` drives the same machinery as
/// `fetch`/`dummy_load` — spot-check at this level too, over a fresh
/// layer with misses and dummies interleaved (the crate-level property
/// test covers arbitrary interleavings).
#[test]
fn storage_layer_load_batch_equals_sequential_calls() {
    let build_layer = || {
        let config = HOramConfig::new(128, 8, 64).with_seed(3);
        let device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
        let master = MasterKey::from_bytes([2u8; 32]);
        let keys = KeyHierarchy::new(master.clone(), "io-pipeline-test");
        let posmap = horam::core::build_posmap(&config, &master, false).expect("posmap builds");
        StorageLayer::new(&config, device, keys, posmap).expect("layer builds")
    };
    let plan = [
        LoadPlan::Dummy,
        LoadPlan::Miss(BlockId(100)),
        LoadPlan::Dummy,
        LoadPlan::Dummy,
        LoadPlan::Miss(BlockId(7)),
        LoadPlan::Dummy,
    ];
    let mut sequential = build_layer();
    let mut seq_blocks = Vec::new();
    for &step in &plan {
        let load = match step {
            LoadPlan::Miss(id) => sequential.fetch(id).expect("fetch"),
            LoadPlan::Dummy => sequential.dummy_load().expect("dummy"),
        };
        seq_blocks.push(load.block);
    }
    let mut batched = build_layer();
    let batch = batched.load_batch(&plan).expect("batch");
    let bat_blocks: Vec<_> = batch.loads.iter().map(|l| l.block.clone()).collect();
    assert_eq!(seq_blocks, bat_blocks);
    assert_eq!(
        sequential.device().stats().reads,
        batched.device().stats().reads
    );
    assert!(batched.device().stats().busy < sequential.device().stats().busy);
}

/// The multi-tenant server rides the same pipeline: a windowed service
/// produces byte-identical responses to a per-cycle service.
#[test]
fn windowed_service_matches_per_cycle_service() {
    let serve = |io_batch: u64| {
        let oram = build(1, true);
        let mut service = OramService::new(
            oram,
            Box::new(FairSharePolicy::default()),
            ServiceConfig {
                io_batch,
                ..ServiceConfig::default()
            },
        );
        for tenant in 0..4u32 {
            service.register_tenant(UserId(tenant), 0..512, Permission::ReadWrite);
        }
        let arrivals: Vec<(UserId, Request)> = mixed_workload(160)
            .into_iter()
            .enumerate()
            .map(|(i, request)| (UserId(i as u32 % 4), request))
            .collect();
        let (tickets, _report) = service.serve_all(arrivals).expect("serves");
        tickets
            .into_iter()
            .map(|t| service.take_response(t).expect("completed"))
            .collect::<Vec<_>>()
    };
    assert_eq!(serve(1), serve(16));
}

//! Security tests over recorded bus traces: the paper's §4.4 claims,
//! checked statistically against the adversary's actual view.

use horam::analysis::leakage::{
    chi_square_critical_p001, chi_square_uniform, once_per_period, TraceShape,
};
use horam::prelude::*;
use horam::storage::cache::CacheConfig;
use horam::storage::calibration::device_ids;
use horam::storage::device::AccessKind;
use horam::storage::trace::TraceEvent;
use horam::workload::WorkloadGenerator;

fn build(capacity: u64, memory_slots: u64, seed: u64) -> HOram {
    let config = HOramConfig::new(capacity, 8, memory_slots).with_seed(seed);
    HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([31u8; 32]),
    )
    .expect("construction succeeds")
}

fn build_cached(capacity: u64, memory_slots: u64, seed: u64, cache: CacheConfig) -> HOram {
    let config = HOramConfig::new(capacity, 8, memory_slots)
        .with_seed(seed)
        .with_cache(cache);
    HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([31u8; 32]),
    )
    .expect("construction succeeds")
}

/// The adversary's per-event view, minus timestamps: device, direction,
/// physical slot, byte count, in submission order.
fn observable(events: &[TraceEvent]) -> Vec<(u16, bool, u64, u64)> {
    events
        .iter()
        .map(|e| (e.device.0, e.kind == AccessKind::Read, e.addr, e.bytes))
        .collect()
}

/// §4.4.1 (access security, storage side): within one access period, no
/// storage slot is read twice.
#[test]
fn storage_slots_read_at_most_once_per_period() {
    let mut oram = build(256, 64, 1);
    // Hammer a small hot set so shelter hits force dummy loads — the
    // dangerous case for slot reuse.
    let requests: Vec<Request> = (0..120u64).map(|i| Request::read(i % 10)).collect();
    oram.run_batch(&requests).expect("batch");

    // Recover period boundaries from the shuffle count: each period issued
    // exactly `period_io_limit` storage reads (loads) — but shuffles add
    // streaming reads too. Simplest sound check: no shuffle happened ⇒ the
    // whole trace is one period. Run a second, period-free workload.
    let mut single_period = build(256, 256, 2); // period = 128 > workload
    let requests: Vec<Request> = (0..100u64).map(|i| Request::read(i % 10)).collect();
    single_period.run_batch(&requests).expect("batch");
    assert_eq!(
        single_period.stats().shuffles,
        0,
        "setup: must stay in one period"
    );
    let events = single_period.trace().snapshot();
    assert_eq!(
        once_per_period(&events, device_ids::STORAGE, &[]),
        None,
        "a storage slot was read twice within a period"
    );
}

/// §4.4.1 (access security, memory side): path-*leaf* choices are uniform.
/// Upper tree levels are shared by every path (the root is read on each
/// access — that is by design, not a leak); the randomized quantity is the
/// leaf each access descends to. Chi-square the leaf-bucket visit counts.
#[test]
fn memory_path_leaf_choices_are_uniform() {
    let mut oram = build(512, 128, 3);
    let mut generator = HotspotWorkload::paper_default(512, 4);
    // Heavily skewed logical workload...
    let requests = generator.generate(400);
    oram.run_batch(&requests).expect("batch");

    // ...must still pick uniform leaves. Memory tree for a 128-slot budget
    // (Z=4): depth 5, 31 buckets, leaf buckets 15..31 ⇒ slots 60..124.
    let leaf_first_slot = 60u64;
    let leaf_count = 16usize;
    let mut visits = vec![0u64; leaf_count];
    for event in oram.trace().snapshot() {
        if event.device == device_ids::MEMORY
            && event.kind == AccessKind::Read
            && event.addr >= leaf_first_slot
            && event.addr % 4 == 0
            && event.bytes <= 1024
        {
            let leaf = ((event.addr - leaf_first_slot) / 4) as usize;
            if leaf < leaf_count {
                visits[leaf] += 1;
            }
        }
    }
    assert!(
        visits.iter().sum::<u64>() > 300,
        "setup: need enough path reads"
    );
    let (stat, df) = chi_square_uniform(&visits);
    assert!(
        stat < chi_square_critical_p001(df),
        "leaf visits too skewed: chi2 {stat}, visits {visits:?}"
    );
}

/// §4.4.2 (scheduler security): two workloads with the same length and
/// cold/warm profile are observably identical — same device op counts,
/// same bytes, cycle for cycle.
#[test]
fn different_workloads_same_profile_are_indistinguishable() {
    let run = |targets: Vec<u64>, seed: u64| {
        let mut oram = build(256, 64, seed);
        let requests: Vec<Request> = targets.into_iter().map(Request::read).collect();
        oram.run_batch(&requests).expect("batch");
        (TraceShape::of(&oram.trace().snapshot()), oram.stats())
    };

    // Workload A: 40 distinct cold blocks, ascending.
    let (shape_a, stats_a) = run((0..40).collect(), 7);
    // Workload B: 40 *different* distinct cold blocks, scattered.
    let (shape_b, stats_b) = run((0..40).map(|i| 255 - i * 3).collect(), 7);

    assert_eq!(
        shape_a, shape_b,
        "bus shapes must not depend on which blocks are read"
    );
    assert_eq!(stats_a.cycles, stats_b.cycles);
    assert_eq!(stats_a.total_io_loads(), stats_b.total_io_loads());
}

/// §4.4.3 (shuffle obliviousness): the shuffle period's storage pass is a
/// fixed sequential sweep — identical op counts and byte volumes no matter
/// which blocks were hot.
#[test]
fn shuffle_pass_shape_is_workload_independent() {
    let run = |targets: Vec<u64>| {
        let mut oram = build(256, 32, 9); // period = 16 loads
        let requests: Vec<Request> = targets.into_iter().map(Request::read).collect();
        oram.run_batch(&requests).expect("batch");
        assert!(oram.stats().shuffles >= 1, "setup: must shuffle");
        oram.storage_device_stats()
    };
    let a = run((0..40).collect());
    let b = run((100..140).collect());
    assert_eq!(a.reads, b.reads, "shuffle read ops differ");
    assert_eq!(a.writes, b.writes, "shuffle write ops differ");
    assert_eq!(a.bytes(), b.bytes(), "shuffle byte volume differs");
}

/// Logical identifiers must never appear as physical addresses in any
/// systematic way: reading blocks 0..k in order must not touch storage
/// addresses 0..k in order.
#[test]
fn physical_addresses_are_decorrelated_from_logical_ids() {
    let mut oram = build(256, 256, 11);
    let requests: Vec<Request> = (0..64u64).map(Request::read).collect();
    oram.run_batch(&requests).expect("batch");
    let reads: Vec<u64> = oram
        .trace()
        .snapshot()
        .iter()
        .filter(|e| e.device == device_ids::STORAGE && e.kind == AccessKind::Read)
        .map(|e| e.addr)
        .collect();
    assert!(reads.len() >= 64);
    // Count order-preserving adjacent pairs; a permuted layout leaves ~50 %.
    let ascending = reads.windows(2).filter(|w| w[1] > w[0]).count();
    let fraction = ascending as f64 / (reads.len() - 1) as f64;
    assert!(
        (0.25..0.75).contains(&fraction),
        "storage read order correlates with logical order: {fraction}"
    );
}

/// Dummy and real I/O loads must be indistinguishable per event: same
/// direction, same size, addresses from the same permuted space.
#[test]
fn dummy_loads_look_like_real_loads() {
    let mut oram = build(256, 128, 13);
    // All-hit tail forces dummy loads after the initial misses.
    let requests: Vec<Request> = (0..80u64).map(|i| Request::read(i % 4)).collect();
    oram.run_batch(&requests).expect("batch");
    let stats = oram.stats();
    assert!(stats.dummy_io_loads > 0, "setup: dummies must occur");
    let events = oram.trace().snapshot();
    let sizes: std::collections::HashSet<u64> = events
        .iter()
        .filter(|e| e.device == device_ids::STORAGE && e.kind == AccessKind::Read)
        // Ignore streaming shuffle reads (aggregated into large run events)
        .filter(|e| e.bytes <= 1024)
        .map(|e| e.bytes)
        .collect();
    assert_eq!(sizes.len(), 1, "load sizes vary: {sizes:?}");
}

/// Cache obliviousness, schedule side: §4.4.2's indistinguishability
/// survives a hit-bound cache. Two same-profile schedules over disjoint
/// block sets — whose physical slots hit the cache differently — still
/// produce identical bus shapes and cycle counts. (Schedules with
/// *different* warm/cold profiles differ by scheduler design, cache or
/// no cache; the capacity test below isolates the cache axis.)
#[test]
fn cached_same_profile_schedules_stay_indistinguishable() {
    let run = |targets: Vec<u64>| {
        let mut oram = build_cached(256, 64, 19, CacheConfig::lru(1 << 20));
        let requests: Vec<Request> = targets.into_iter().map(Request::read).collect();
        oram.run_batch(&requests).expect("batch");
        assert!(oram.stats().shuffles >= 1, "setup: periods must turn");
        (
            TraceShape::of(&oram.trace().snapshot()),
            oram.stats().cycles,
            oram.cache_stats().expect("cache installed"),
        )
    };

    // Same profile (60 distinct cold blocks each), disjoint identities.
    let (shape_a, cycles_a, cache_a) = run((0..60).collect());
    let (shape_b, cycles_b, cache_b) = run((0..60).map(|i| 255 - i * 3).collect());

    assert_eq!(shape_a, shape_b, "bus shape depends on which blocks hit");
    assert_eq!(cycles_a, cycles_b);
    assert!(
        cache_a.hits + cache_b.hits > 0,
        "setup: the cache must see hits ({cache_a:?} vs {cache_b:?})"
    );
}

/// Cache obliviousness, capacity side: the **same** schedule against a
/// hit-bound cache (capacity covers every slot) and a trivial one-block
/// cache produces the identical event sequence — device, direction,
/// slot, bytes, order. Capacity moves only simulated time.
#[test]
fn cache_capacity_is_invisible_on_the_bus() {
    let run = |cache: CacheConfig| {
        let mut oram = build_cached(256, 64, 19, cache);
        let requests: Vec<Request> = (0..150u64).map(|i| Request::read(i % 10)).collect();
        oram.run_batch(&requests).expect("batch");
        (
            observable(&oram.trace().snapshot()),
            oram.cache_stats().expect("cache installed"),
        )
    };
    let (hit_heavy, hit_stats) = run(CacheConfig::lru(1 << 20));
    let (miss_heavy, miss_stats) = run(CacheConfig::lru(1));
    assert!(
        hit_stats.hits > miss_stats.hits,
        "setup: the regimes must actually differ ({hit_stats:?} vs {miss_stats:?})"
    );
    assert_eq!(hit_heavy, miss_heavy, "cache capacity leaked onto the bus");
}

/// The same two checks at 4 shards: per-shard caches must not let hit
/// rate or capacity show through any shard's trace.
#[test]
fn sharded_cache_traces_are_hit_rate_independent() {
    use horam::core::shard::{ShardedConfig, ShardedOram};

    let run = |cache_capacity: u64| {
        let config = HOramConfig::new(256, 8, 64)
            .with_seed(19)
            .with_cache(CacheConfig::lru(cache_capacity));
        let mut oram = ShardedOram::new(
            ShardedConfig::new(config, 4),
            MasterKey::from_bytes([31u8; 32]),
            |_| MemoryHierarchy::dac2019(),
        )
        .expect("sharded instance builds");
        let requests: Vec<Request> = (0..200u64).map(|i| Request::read(i % 16)).collect();
        oram.run_batch(&requests).expect("batch");
        let traces: Vec<_> = oram
            .shards()
            .iter()
            .map(|s| observable(&s.trace().snapshot()))
            .collect();
        (traces, oram.cache_stats().expect("cache installed"))
    };

    let (hit_traces, hit_stats) = run(1 << 20);
    let (miss_traces, miss_stats) = run(1);
    assert!(
        hit_stats.hits > miss_stats.hits,
        "setup: regimes must differ"
    );
    for (i, (a, b)) in hit_traces.iter().zip(&miss_traces).enumerate() {
        assert_eq!(a, b, "shard {i}: cache capacity leaked onto the bus");
    }
}

/// Fault-retry obliviousness: a run whose storage store injects seeded
/// transient faults (absorbed by the device's retry/backoff layer) must
/// present the **identical** bus view — device, direction, slot, bytes,
/// order — as the fault-free run. Retries are charged in simulated time
/// only; the adversary sees latency, never a changed access pattern.
#[test]
fn retries_are_timing_only_on_the_bus() {
    use horam::storage::fault::FaultConfig;

    let run = |fault: Option<FaultConfig>| {
        let config = HOramConfig::new(256, 8, 64).with_seed(23);
        let hierarchy = MemoryHierarchy::dac2019();
        let hierarchy = match fault {
            Some(config) => hierarchy.with_storage_faults(config),
            None => hierarchy,
        };
        let mut oram = HOram::new(config, hierarchy, MasterKey::from_bytes([31u8; 32]))
            .expect("construction succeeds");
        // A deep budget keeps this 150‰ plan fully absorbed: the probe
        // is about the bus view of *successful* retries, not exhaustion.
        oram.storage_device_mut()
            .set_retry_policy(horam::storage::device::RetryPolicy {
                max_attempts: 10,
                ..Default::default()
            });
        oram.reset_accounting();
        let requests: Vec<Request> = (0..120u64).map(|i| Request::read(i % 30)).collect();
        oram.run_batch(&requests).expect("batch");
        (
            observable(&oram.trace().snapshot()),
            oram.clock().now().as_nanos(),
            oram.storage_retry_stats(),
        )
    };

    let (clean_trace, clean_nanos, clean_retries) = run(None);
    let (faulted_trace, faulted_nanos, faulted_retries) = run(Some(FaultConfig::transient(5, 150)));
    assert_eq!(clean_retries.retries, 0, "setup: clean run never retries");
    assert!(
        faulted_retries.retries > 0,
        "setup: the fault plan must actually trigger retries"
    );
    assert_eq!(
        faulted_retries.exhausted, 0,
        "setup: this seed must stay within the retry budget"
    );
    assert_eq!(
        clean_trace, faulted_trace,
        "retries changed the observable access pattern"
    );
    assert!(
        faulted_nanos > clean_nanos,
        "backoff must be charged in simulated time ({faulted_nanos} vs {clean_nanos})"
    );
}

/// The retry battery can fail: the doc-hidden `leaky_retry` fixture
/// re-records each retry attempt as its own bus event, and exactly the
/// trace comparison above catches it — the leaky trace grows by one
/// event per retry.
#[test]
fn leaky_retry_fixture_is_detected() {
    use horam::storage::fault::FaultConfig;

    let run = |leaky: bool| {
        let config = HOramConfig::new(256, 8, 64).with_seed(23);
        let hierarchy =
            MemoryHierarchy::dac2019().with_storage_faults(FaultConfig::transient(5, 150));
        let mut oram = HOram::new(config, hierarchy, MasterKey::from_bytes([31u8; 32]))
            .expect("construction succeeds");
        oram.storage_device_mut()
            .set_retry_policy(horam::storage::device::RetryPolicy {
                max_attempts: 10,
                ..Default::default()
            });
        oram.storage_device_mut().set_leaky_retry(leaky);
        oram.reset_accounting();
        let requests: Vec<Request> = (0..120u64).map(|i| Request::read(i % 30)).collect();
        oram.run_batch(&requests).expect("batch");
        (
            observable(&oram.trace().snapshot()),
            oram.storage_retry_stats(),
        )
    };

    let (honest, honest_retries) = run(false);
    let (leaky, leaky_retries) = run(true);
    assert!(honest_retries.retries > 0, "setup: retries must occur");
    assert_eq!(
        honest_retries.retries, leaky_retries.retries,
        "the fixture must not change retry behaviour, only visibility"
    );
    assert_ne!(
        honest, leaky,
        "a retry implementation that leaks onto the bus must be visible to this battery"
    );
    assert_eq!(
        leaky.len(),
        honest.len() + leaky_retries.retries as usize,
        "the leak is exactly one extra bus event per retry"
    );
}

/// The battery can fail: a deliberately broken cache that serves RAM
/// hits *without* emitting the padded bus event (`leaky_hits`) is caught
/// by exactly the comparison the tests above run — its trace visibly
/// shrinks in the hit-bound regime.
#[test]
fn leaky_cache_fixture_is_detected() {
    let run = |leaky: bool| {
        let mut cache = CacheConfig::lru(1 << 20);
        cache.leaky_hits = leaky;
        let mut oram = build_cached(256, 64, 19, cache);
        let requests: Vec<Request> = (0..150u64).map(|i| Request::read(i % 10)).collect();
        oram.run_batch(&requests).expect("batch");
        (
            observable(&oram.trace().snapshot()),
            oram.cache_stats().expect("cache installed"),
        )
    };
    let (honest, honest_stats) = run(false);
    let (leaky, leaky_stats) = run(true);
    assert!(honest_stats.hits > 0, "setup: hits must occur");
    assert_eq!(honest_stats.hits, leaky_stats.hits, "same hit pattern");
    assert_ne!(
        honest, leaky,
        "a cache that skips hit padding must be visible to this battery"
    );
    // The leak is precisely the missing hit events: the leaky trace is
    // shorter by the number of events the honest cache padded.
    assert!(
        leaky.len() < honest.len(),
        "leaky trace should drop events ({} vs {})",
        leaky.len(),
        honest.len()
    );
}

/// §4.4 extended to the recursive position map: the recursion must add
/// nothing to the data ORAM's bus, and each level's own trace must be a
/// well-formed oblivious path sequence.
mod recursive_posmap {
    use super::*;
    use horam::core::PosmapMode;

    fn build_recursive(capacity: u64, memory_slots: u64, seed: u64) -> HOram {
        let config = HOramConfig::new(capacity, 8, memory_slots)
            .with_seed(seed)
            .with_recursive_posmap(None, 4);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([31u8; 32]),
        )
        .expect("construction succeeds")
    }

    /// The map mode is invisible on the data bus: flat and recursive
    /// engines produce byte-identical traces (addresses, directions,
    /// sizes — and simulated timestamps) over the same workload.
    #[test]
    fn recursion_is_invisible_on_the_data_bus() {
        let requests: Vec<Request> = (0..160u64).map(|i| Request::read(i * 7 % 64)).collect();
        let mut flat = build(256, 64, 9);
        flat.run_batch(&requests).expect("flat batch");
        let mut recursive = build_recursive(256, 64, 9);
        recursive.run_batch(&requests).expect("recursive batch");
        assert!(
            matches!(recursive.config().posmap, PosmapMode::Recursive(_)),
            "setup: recursive mode must be installed"
        );
        assert_eq!(
            flat.trace().snapshot(),
            recursive.trace().snapshot(),
            "recursive position map altered the data ORAM's bus trace"
        );
        assert_eq!(flat.clock().now(), recursive.clock().now());
    }

    /// Each level's trace is a well-formed path-ORAM view: every event
    /// moves one fixed-size page, addresses stay inside the level's
    /// bucket tree, and path reads are matched by path write-backs.
    #[test]
    fn level_traces_are_uniform_and_bounded() {
        let mut oram = build_recursive(256, 64, 10);
        // Drop the construction-time bulk-build traffic so the checked
        // trace is pure steady-state checkout/check-in traffic.
        oram.reset_accounting();
        let requests: Vec<Request> = (0..200u64).map(|i| Request::read(i * 11 % 256)).collect();
        oram.run_batch(&requests).expect("batch");

        let views = oram.posmap().level_views();
        assert!(!views.is_empty(), "recursive map must expose levels");
        let mut some_level_active = false;
        for view in &views {
            let events = view.trace.snapshot();
            if events.is_empty() {
                continue; // a fully cache-resident level is legitimate
            }
            some_level_active = true;
            let tree_slots = ((1u64 << view.depth) - 1) * view.z as u64;
            // Events are run-granular (a path segment or a rebuild
            // stream), so sizes are multiples of one sealed page — the
            // smallest transfer observed.
            let page_bytes = events.iter().map(|e| e.bytes).min().unwrap();
            let mut read_bytes = 0u64;
            let mut write_bytes = 0u64;
            for event in &events {
                assert!(
                    event.bytes > 0 && event.bytes % page_bytes == 0,
                    "level {} moved a fractional page ({} bytes, page {})",
                    view.name,
                    event.bytes,
                    page_bytes
                );
                assert!(
                    event.addr < tree_slots,
                    "level {} touched address {} outside its {} tree slots",
                    view.name,
                    event.addr,
                    tree_slots
                );
                match event.kind {
                    AccessKind::Read => read_bytes += event.bytes,
                    AccessKind::Write => write_bytes += event.bytes,
                }
            }
            // Every path read is written back; rebuild streams only add
            // writes — so read traffic never exceeds write traffic.
            assert!(
                read_bytes <= write_bytes,
                "level {}: {} bytes read but only {} written back",
                view.name,
                read_bytes,
                write_bytes
            );
        }
        assert!(
            some_level_active,
            "workload must exercise at least one level"
        );
    }

    /// Level traces depend only on the access schedule, never on the data:
    /// two runs over the same ids with different written payloads produce
    /// byte-identical level traces (timestamps included).
    #[test]
    fn level_traces_are_payload_independent() {
        let run = |fill: u8| {
            let mut oram = build_recursive(256, 64, 12);
            let requests: Vec<Request> = (0..150u64)
                .map(|i| {
                    if i % 3 == 0 {
                        Request::write(i % 256, vec![fill; 8])
                    } else {
                        Request::read((i * 13) % 256)
                    }
                })
                .collect();
            oram.run_batch(&requests).expect("batch");
            oram.posmap()
                .level_views()
                .into_iter()
                .map(|view| (view.name, view.trace.snapshot()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(0x00),
            run(0xFF),
            "posmap level traffic leaked written data"
        );
    }
}

//! Thread-count invariance of the wall-clock parallel execution engine.
//!
//! `HOramConfig::worker_threads` may change only *when* work happens on
//! the host, never *what* the system computes: for any request sequence,
//! responses, per-shard bus traces, and statistics must be byte-identical
//! at every thread count. These tests pin that contract for both levels
//! of parallelism — the threaded shard pump (`ShardedOram`) and the
//! data-parallel shuffle stream (`StorageLayer::rebuild_window` inside a
//! single instance) — plus the worker pool's panic discipline (a
//! panicking task must surface as a panic, not a deadlock).
//!
//! The CI workflow also runs this file under `RUST_TEST_THREADS=1`: with
//! the harness serialized, pool shutdown/ordering bugs (e.g. a scope that
//! returns before its tasks finish) cannot hide behind inter-test
//! concurrency.

use horam::core::pool::WorkerPool;
use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::core::{Permission, UserId};
use horam::crypto::rng::DeterministicRng;
use horam::prelude::*;
use horam_server::{FairSharePolicy, OramService, ServiceConfig};
use proptest::prelude::*;
use rand::Rng;

fn sharded(capacity: u64, memory_slots: u64, shards: u64, threads: usize) -> ShardedOram {
    let config = ShardedConfig::new(
        HOramConfig::new(capacity, 8, memory_slots)
            .with_seed(23)
            .with_io_batch(8)
            .with_worker_threads(threads),
        shards,
    );
    ShardedOram::new(config, MasterKey::from_bytes([0x3C; 32]), |_| {
        MemoryHierarchy::dac2019()
    })
    .expect("sharded instance builds")
}

fn single(capacity: u64, memory_slots: u64, threads: usize) -> HOram {
    HOram::new(
        HOramConfig::new(capacity, 8, memory_slots)
            .with_seed(23)
            .with_io_batch(8)
            .with_worker_threads(threads),
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([0x3C; 32]),
    )
    .expect("single instance builds")
}

fn mixed_workload(capacity: u64, len: usize, seed: u64) -> Vec<Request> {
    let mut rng = DeterministicRng::from_u64_seed(seed);
    (0..len)
        .map(|_| {
            let id = rng.gen_range(0..capacity);
            if rng.gen_bool(0.35) {
                Request::write(id, vec![rng.gen::<u8>(); 8])
            } else {
                Request::read(id)
            }
        })
        .collect()
}

/// Everything an adversary or operator can observe from one run.
fn sharded_observables(
    oram: &mut ShardedOram,
    requests: &[Request],
) -> (
    Vec<Vec<u8>>,
    Vec<Vec<horam::storage::trace::TraceEvent>>,
    HOramStats,
    u64,
) {
    let responses = oram.run_batch(requests).expect("batch runs");
    let traces = oram
        .shards()
        .iter()
        .map(|shard| shard.trace().snapshot())
        .collect();
    (
        responses,
        traces,
        oram.stats(),
        oram.clock().now().as_nanos(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The deterministic heart of the engine: arbitrary request sequences
    /// observe byte-identical responses, identical per-shard storage
    /// traces, and identical aggregate statistics at 1, 2, and 4 worker
    /// threads.
    #[test]
    fn sharded_thread_counts_are_byte_identical(
        ops in proptest::collection::vec((0u64..128, proptest::option::of(any::<u8>())), 1..60),
    ) {
        let requests: Vec<Request> = ops
            .into_iter()
            .map(|(id, write)| match write {
                Some(byte) => Request::write(id, vec![byte; 8]),
                None => Request::read(id),
            })
            .collect();
        let mut reference = sharded(128, 32, 4, 1);
        let expected = sharded_observables(&mut reference, &requests);
        for threads in [2usize, 4] {
            let mut threaded = sharded(128, 32, 4, threads);
            let got = sharded_observables(&mut threaded, &requests);
            prop_assert_eq!(&expected.0, &got.0, "responses diverged at {} threads", threads);
            prop_assert_eq!(
                &expected.1, &got.1,
                "per-shard traces diverged at {} threads", threads
            );
            prop_assert_eq!(&expected.2, &got.2, "stats diverged at {} threads", threads);
            prop_assert_eq!(
                expected.3, got.3,
                "frontier clock diverged at {} threads", threads
            );
        }
    }

    /// The same contract one layer down: a single instance's data-parallel
    /// shuffle stream leaves responses, the full bus trace, and stats
    /// untouched at any thread count.
    #[test]
    fn single_instance_thread_counts_are_byte_identical(
        ids in proptest::collection::vec(0u64..64, 1..50),
    ) {
        let requests: Vec<Request> = ids.into_iter().map(Request::read).collect();
        let mut reference = single(64, 16, 1);
        let expected = reference.run_batch(&requests).expect("serial runs");
        let expected_trace = reference.trace().snapshot();
        for threads in [2usize, 4] {
            let mut threaded = single(64, 16, threads);
            let got = threaded.run_batch(&requests).expect("threaded runs");
            prop_assert_eq!(&expected, &got, "responses diverged at {} threads", threads);
            prop_assert_eq!(
                &expected_trace,
                &threaded.trace().snapshot(),
                "trace diverged at {} threads", threads
            );
            prop_assert_eq!(
                reference.stats(),
                threaded.stats(),
                "stats diverged at {} threads", threads
            );
        }
    }
}

/// A long mixed run that crosses many shuffle periods on every shard:
/// the threaded pump and the data-parallel shuffle both engage, and the
/// read-your-writes semantics survive unchanged.
#[test]
fn threaded_engine_read_your_writes_across_periods() {
    let requests = mixed_workload(256, 500, 91);
    let mut serial = sharded(256, 64, 4, 1);
    let expected = serial.run_batch(&requests).expect("serial runs");
    assert!(
        serial.stats().shuffles >= 8,
        "setup must cross many periods, saw {}",
        serial.stats().shuffles
    );
    let mut threaded = sharded(256, 64, 4, 4);
    let got = threaded.run_batch(&requests).expect("threaded runs");
    assert_eq!(expected, got);
    assert_eq!(serial.stats(), threaded.stats());
}

/// The serving layer sized by `ServiceConfig::worker_threads` returns the
/// same responses as a serial engine — the router is thread-agnostic.
#[test]
fn service_over_threaded_engine_matches_serial() {
    let requests = mixed_workload(256, 240, 57);
    let serve = |threads: usize| -> Vec<Vec<u8>> {
        let service_config = ServiceConfig {
            batch_size: 32,
            worker_threads: threads,
            ..ServiceConfig::default()
        };
        let config = ShardedConfig::new(
            service_config
                .engine_config(HOramConfig::new(256, 8, 64))
                .with_seed(23),
            4,
        );
        let oram = ShardedOram::new(config, MasterKey::from_bytes([0x3C; 32]), |_| {
            MemoryHierarchy::dac2019()
        })
        .expect("builds");
        let mut service =
            OramService::new(oram, Box::new(FairSharePolicy::default()), service_config);
        service.register_tenant(UserId(0), 0..256, Permission::ReadWrite);
        let arrivals = requests.iter().map(|r| (UserId(0), r.clone()));
        let (tickets, _) = service.serve_all(arrivals).expect("serves");
        tickets
            .into_iter()
            .map(|t| service.take_response(t).expect("completed"))
            .collect()
    };
    let serial = serve(1);
    assert_eq!(serial, serve(2));
    assert_eq!(serial, serve(4));
}

/// A panicking task propagates out of the pool's scope as a panic on the
/// caller — it must not deadlock the pump loop or kill the pool.
#[test]
fn pool_panic_propagates_without_deadlocking() {
    let pool = WorkerPool::new(4);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.scope(|scope| {
            scope.spawn(|| panic!("injected shard failure"));
            scope.spawn(|| { /* healthy sibling keeps running */ });
        });
    }));
    assert!(outcome.is_err(), "the injected panic must surface");

    // The pool survives: the next "pump round" completes normally.
    let mut round = vec![0u32; 16];
    pool.scope(|scope| {
        for (i, slot) in round.iter_mut().enumerate() {
            scope.spawn(move || *slot = i as u32 + 1);
        }
    });
    assert_eq!(round, (1..=16).collect::<Vec<u32>>());
}

/// Degenerate geometries (one shard, shards larger than the thread
/// count, thread counts larger than the shard count) all stay correct.
#[test]
fn thread_shard_mismatch_shapes_work() {
    let requests = mixed_workload(128, 120, 7);
    let mut reference = sharded(128, 32, 2, 1);
    let expected = reference.run_batch(&requests).expect("runs");
    for (shards, threads) in [(1u64, 4usize), (2, 8), (4, 2)] {
        let mut oram = sharded(128, 32, shards, threads);
        // Different shard counts route differently, so only compare
        // same-shard-count runs response-wise; others must simply agree
        // with the reference *data* (read-your-writes against the same
        // request list).
        let got = oram.run_batch(&requests).expect("runs");
        if shards == 2 {
            assert_eq!(expected, got, "shards={shards} threads={threads}");
        } else {
            assert_eq!(expected.len(), got.len());
        }
    }
}

//! Durability and crash-consistent recovery: the invariant this suite
//! pins down is
//!
//! > kill the engine at an arbitrary cycle boundary, restore from the
//! > latest snapshot + the on-disk device file, and replay — responses,
//! > traces, and statistics are **byte-identical** to an uninterrupted
//! > run.
//!
//! Three layers of evidence:
//!
//! * proptests over arbitrary access prefixes: `snapshot → restore` is
//!   the identity on all observable behavior, at 1 and 4 shards;
//! * torn-write tests: a snapshot truncated at *every* byte boundary (or
//!   bit-flipped anywhere) must fail restore with an error — never a
//!   panic, never wrong data;
//! * a real kill: a file-backed engine is dropped mid-workload with its
//!   write-back buffer half flushed; reopening rolls the undo journal
//!   back to the checkpoint and replay matches the uninterrupted run.

use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::crypto::rng::DeterministicRng;
use horam::prelude::*;
use horam::protocols::types::BlockContent;
use horam::storage::cache::CacheConfig;
use horam::storage::calibration::MachineConfig;
use horam::storage::file::{scratch_dir, FileStoreConfig};
use horam::storage::trace::TraceEvent;
use rand::Rng;
use std::path::{Path, PathBuf};

const CAPACITY: u64 = 64;
const PAYLOAD: usize = 8;
const MEMORY_SLOTS: u64 = 16; // period = 8 I/O loads: shuffles happen often

fn config() -> HOramConfig {
    HOramConfig::new(CAPACITY, PAYLOAD, MEMORY_SLOTS)
        .with_seed(1213)
        .with_worker_threads(1)
}

fn master() -> MasterKey {
    MasterKey::from_bytes([0x5A; 32])
}

fn build() -> HOram {
    HOram::new(config(), MemoryHierarchy::dac2019(), master()).unwrap()
}

/// Splits a generated op list into requests.
fn requests_from(ops: &[(u64, Option<u8>)]) -> Vec<Request> {
    ops.iter()
        .map(|(id, write)| match write {
            Some(byte) => Request::write(*id, vec![*byte; PAYLOAD]),
            None => Request::read(*id),
        })
        .collect()
}

/// A deterministic mixed read/write workload.
fn workload(len: usize, seed: u64) -> Vec<Request> {
    let mut rng = DeterministicRng::from_u64_seed(seed);
    (0..len)
        .map(|_| {
            let id = rng.gen_range(0..CAPACITY);
            if rng.gen_bool(0.35) {
                Request::write(id, vec![rng.gen::<u8>(); PAYLOAD])
            } else {
                Request::read(id)
            }
        })
        .collect()
}

/// The file-backed hierarchy for this suite's geometry. `write_back` is
/// kept tiny so mid-workload kills catch the buffer half flushed.
fn file_hierarchy(path: &Path) -> MemoryHierarchy {
    let cfg = config();
    let slots = cfg.partition_count() * cfg.partition_slots();
    let body = BlockContent::encoded_len(cfg.payload_len);
    MemoryHierarchy::with_file_storage(
        MachineConfig::dac2019(),
        path,
        FileStoreConfig::new(slots, body).with_write_back_slots(8),
    )
    .unwrap()
}

struct Scratch(PathBuf);
impl Scratch {
    fn new(label: &str) -> Self {
        Self(scratch_dir(label))
    }
    fn device(&self) -> PathBuf {
        self.0.join("storage.horam")
    }
}
impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn strip_times(events: &[TraceEvent]) -> Vec<(u16, u64, u64)> {
    events
        .iter()
        .map(|e| (e.device.0, e.addr, e.bytes))
        .collect()
}

#[test]
fn snapshot_restore_continues_byte_identically() {
    let prefix = workload(60, 7);
    let suffix = workload(90, 8);

    let mut original = build();
    original.run_batch(&prefix).unwrap();
    let snapshot = original.snapshot().unwrap();
    let trace_mark = original.trace().snapshot().len();
    let original_suffix_responses = original.run_batch(&suffix).unwrap();
    let original_suffix_trace = original.trace().snapshot()[trace_mark..].to_vec();

    let restored = HOram::restore(MemoryHierarchy::dac2019(), master(), &snapshot);
    let mut restored = restored.unwrap();
    let restored_responses = restored.run_batch(&suffix).unwrap();

    assert_eq!(original_suffix_responses, restored_responses);
    assert_eq!(
        original_suffix_trace,
        restored.trace().snapshot(),
        "bus trace diverged after restore (timestamps included)"
    );
    assert_eq!(original.stats(), restored.stats());
    assert_eq!(original.clock().now(), restored.clock().now());
    assert!(
        original.stats().shuffles >= 2,
        "workload must cross period boundaries for the test to mean anything"
    );
}

#[test]
fn snapshot_requires_a_drained_queue() {
    let mut oram = build();
    oram.enqueue(Request::read(1u64)).unwrap();
    assert!(matches!(
        oram.snapshot(),
        Err(OramError::SnapshotInvalid { .. })
    ));
    // Draining unblocks it.
    while !oram.queue().is_drained() {
        oram.run_cycle().unwrap();
    }
    oram.snapshot().unwrap();
}

#[test]
fn torn_snapshot_errors_at_every_byte_boundary() {
    let mut oram = build();
    oram.run_batch(&workload(20, 3)).unwrap();
    let snapshot = oram.snapshot().unwrap();

    for cut in 0..snapshot.len() {
        let result = HOram::restore(MemoryHierarchy::dac2019(), master(), &snapshot[..cut]);
        assert!(
            matches!(result, Err(OramError::SnapshotInvalid { .. })),
            "truncation at byte {cut} did not error"
        );
    }
}

#[test]
fn corrupted_and_wrong_key_snapshots_error() {
    let mut oram = build();
    oram.run_batch(&workload(16, 5)).unwrap();
    let snapshot = oram.snapshot().unwrap();

    let mut rng = DeterministicRng::from_u64_seed(11);
    for _ in 0..64 {
        let mut corrupt = snapshot.clone();
        let at = rng.gen_range(0..corrupt.len());
        corrupt[at] ^= 1 << rng.gen_range(0..8u32);
        assert!(
            HOram::restore(MemoryHierarchy::dac2019(), master(), &corrupt).is_err(),
            "bit flip at byte {at} accepted"
        );
    }
    let wrong_key = MasterKey::from_bytes([0x77; 32]);
    assert!(HOram::restore(MemoryHierarchy::dac2019(), wrong_key, &snapshot).is_err());
}

#[test]
fn kill_at_arbitrary_cycle_boundary_with_file_backend() {
    // One uninterrupted reference run against a file-backed device, and
    // many killed-and-recovered runs that must match it exactly.
    let pre = workload(40, 21);
    let post = workload(70, 22);

    let reference_scratch = Scratch::new("persist-reference");
    let mut reference = HOram::new(
        config(),
        file_hierarchy(&reference_scratch.device()),
        master(),
    )
    .unwrap();
    reference.run_batch(&pre).unwrap();
    let _ = reference.snapshot().unwrap();
    let ref_mark = reference.trace().snapshot().len();
    let ref_responses = reference.run_batch(&post).unwrap();
    let ref_trace = reference.trace().snapshot()[ref_mark..].to_vec();
    let ref_stats = reference.stats();
    assert!(ref_stats.shuffles >= 2, "setup: periods must turn");

    for kill_after_cycles in [0u64, 1, 3, 7, 13, 29] {
        let scratch = Scratch::new("persist-kill");
        let mut engine = HOram::new(config(), file_hierarchy(&scratch.device()), master()).unwrap();
        engine.run_batch(&pre).unwrap();
        let snapshot = engine.snapshot().unwrap();

        // Run past the checkpoint, then kill at a cycle boundary: enqueue
        // the post-snapshot work and execute only some of its cycles, so
        // the shuffle stream and write-back buffer are mid-flight.
        for request in &post {
            engine.enqueue(request.clone()).unwrap();
        }
        for _ in 0..kill_after_cycles {
            if engine.queue().is_drained() {
                break;
            }
            engine.run_cycle().unwrap();
        }
        drop(engine); // the kill: no sync, no checkpoint

        // Recovery: reopen the device file (undo journal rolls partial
        // writes back), restore the snapshot, replay the post-snapshot
        // requests from scratch.
        let mut recovered =
            HOram::restore(file_hierarchy(&scratch.device()), master(), &snapshot).unwrap();
        let responses = recovered.run_batch(&post).unwrap();
        assert_eq!(
            ref_responses, responses,
            "kill after {kill_after_cycles} cycles: responses diverged"
        );
        assert_eq!(
            ref_trace,
            recovered.trace().snapshot(),
            "kill after {kill_after_cycles} cycles: trace diverged"
        );
        assert_eq!(
            ref_stats,
            recovered.stats(),
            "kill after {kill_after_cycles} cycles: stats diverged"
        );
        assert_eq!(reference.clock().now(), recovered.clock().now());
    }
}

#[test]
fn file_backed_run_matches_in_memory_run_exactly() {
    // The backend must be invisible to the protocol: same responses,
    // same trace shape, same simulated time as the in-memory store.
    let requests = workload(80, 31);
    let mut volatile = build();
    let volatile_responses = volatile.run_batch(&requests).unwrap();

    let scratch = Scratch::new("persist-backend-equiv");
    let mut durable = HOram::new(config(), file_hierarchy(&scratch.device()), master()).unwrap();
    let durable_responses = durable.run_batch(&requests).unwrap();

    assert_eq!(volatile_responses, durable_responses);
    assert_eq!(
        strip_times(&volatile.trace().snapshot()),
        strip_times(&durable.trace().snapshot())
    );
    assert_eq!(volatile.stats(), durable.stats());
    assert_eq!(volatile.clock().now(), durable.clock().now());
}

mod cached {
    //! The same recovery invariant with the block cache in the loop: a
    //! snapshot must flush dirty cached blocks into the durable store
    //! before fingerprinting it, restore must re-install the cache and
    //! repopulate its residency from the recovered store, and a kill
    //! that strands dirty blocks in RAM must lose nothing the snapshot
    //! promised to keep.

    use super::*;
    use horam::crypto::persist::{StateReader, StateWriter};
    use horam::crypto::seal::BlockSealer;
    use horam::storage::clock::SimClock;
    use horam::storage::device::Device;
    use horam::storage::device::DeviceId;
    use horam::storage::file::FileStore;
    use horam::storage::hdd::HddModel;

    fn cached_config() -> HOramConfig {
        // Hit-bound capacity: after the first shuffle every slot is
        // cached, so restore must rebuild real residency to stay
        // byte-identical on the clock.
        config().with_cache(CacheConfig::lru(1 << 20))
    }

    /// The engine-level kill test, with a cache installed on both the
    /// reference and every killed run.
    #[test]
    fn kill_with_cache_installed_recovers_byte_identically() {
        let pre = workload(40, 121);
        let post = workload(70, 122);

        let reference_scratch = Scratch::new("persist-cache-reference");
        let mut reference = HOram::new(
            cached_config(),
            file_hierarchy(&reference_scratch.device()),
            master(),
        )
        .unwrap();
        reference.run_batch(&pre).unwrap();
        let _ = reference.snapshot().unwrap();
        let ref_mark = reference.trace().snapshot().len();
        let ref_responses = reference.run_batch(&post).unwrap();
        let ref_trace = reference.trace().snapshot()[ref_mark..].to_vec();
        let ref_stats = reference.stats();
        assert!(ref_stats.shuffles >= 2, "setup: periods must turn");
        assert!(
            reference.cache_stats().unwrap().hits > 0,
            "setup: the cache must be live"
        );

        for kill_after_cycles in [0u64, 5, 17] {
            let scratch = Scratch::new("persist-cache-kill");
            let mut engine =
                HOram::new(cached_config(), file_hierarchy(&scratch.device()), master()).unwrap();
            engine.run_batch(&pre).unwrap();
            let snapshot = engine.snapshot().unwrap();

            for request in &post {
                engine.enqueue(request.clone()).unwrap();
            }
            for _ in 0..kill_after_cycles {
                if engine.queue().is_drained() {
                    break;
                }
                engine.run_cycle().unwrap();
            }
            drop(engine); // the kill: cached state dies with the process

            let mut recovered =
                HOram::restore(file_hierarchy(&scratch.device()), master(), &snapshot).unwrap();
            let responses = recovered.run_batch(&post).unwrap();
            assert_eq!(
                ref_responses, responses,
                "kill after {kill_after_cycles} cycles: responses diverged"
            );
            assert_eq!(
                ref_trace,
                recovered.trace().snapshot(),
                "kill after {kill_after_cycles} cycles: trace diverged"
            );
            assert_eq!(ref_stats, recovered.stats());
            assert_eq!(reference.clock().now(), recovered.clock().now());
        }
    }

    /// A cached file-backed run equals a cached in-memory run equals an
    /// uncached run on responses — the cache and the backend compose
    /// without touching protocol semantics.
    #[test]
    fn cached_file_backed_run_matches_in_memory_run() {
        let requests = workload(80, 131);
        let mut volatile =
            HOram::new(cached_config(), MemoryHierarchy::dac2019(), master()).unwrap();
        let volatile_responses = volatile.run_batch(&requests).unwrap();

        let scratch = Scratch::new("persist-cache-backend-equiv");
        let mut durable =
            HOram::new(cached_config(), file_hierarchy(&scratch.device()), master()).unwrap();
        let durable_responses = durable.run_batch(&requests).unwrap();

        assert_eq!(volatile_responses, durable_responses);
        assert_eq!(
            strip_times(&volatile.trace().snapshot()),
            strip_times(&durable.trace().snapshot())
        );
        assert_eq!(volatile.stats(), durable.stats());
        assert_eq!(volatile.clock().now(), durable.clock().now());
        assert_eq!(volatile.cache_stats(), durable.cache_stats());
    }

    // ---- Device-level: the dirty write-back path under a kill. The
    // engine writes storage write-through (shuffle rebuilds), so dirty
    // cached blocks only arise for direct Device users; this pins the
    // contract down where it lives.

    const SLOTS: u64 = 64;
    const BODY: usize = 256;

    fn sealer() -> BlockSealer {
        BlockSealer::new(&master().derive("cache-persist-test", 0))
    }

    fn open_device(path: &Path, clock: SimClock) -> Device {
        let store = FileStore::open(path, FileStoreConfig::new(SLOTS, BODY)).unwrap();
        let mut dev = Device::with_store(
            DeviceId(7),
            "cold",
            Box::new(HddModel::paper_calibrated()),
            clock,
            None,
            Box::new(store),
        );
        dev.install_cache(CacheConfig::lru(8)).unwrap();
        dev
    }

    /// Write-back dirty blocks + a kill: `sync` + `save_state` is the
    /// commit point (it flushes the cache into the journaled file);
    /// dirty blocks absorbed *after* it die with the process, and the
    /// reopened device reads back exactly the committed bytes.
    #[test]
    fn dirty_write_back_blocks_flush_at_snapshot_and_roll_back_after() {
        let scratch = Scratch::new("persist-cache-dirty");
        let committed: Vec<_> = (0..SLOTS)
            .map(|a| sealer().seal(a, 0, format!("committed {a}").as_bytes()))
            .collect();

        let mut dev = open_device(&scratch.device(), SimClock::new());
        for (a, block) in committed.iter().enumerate() {
            // write_block absorbs into the cache dirty; evictions beyond
            // the 8-slot capacity write back as we go.
            dev.write_block(a as u64, block.clone()).unwrap();
        }
        dev.sync().unwrap(); // commit point: flush + file sync
        let mut w = StateWriter::new();
        dev.save_state(&mut w).unwrap();
        let saved = w.into_bytes();

        // Post-snapshot dirty writes: stranded in RAM, never synced.
        for a in 0..16u64 {
            dev.write_block(a, sealer().seal(a, 1, b"doomed")).unwrap();
        }
        assert!(
            dev.cache_stats().unwrap().writebacks < SLOTS + 16,
            "setup: some post-snapshot writes must still sit dirty in RAM"
        );
        drop(dev); // the kill: no sync, no state save

        // Reopen: the journal rolls the file back to the commit point,
        // load_state re-installs residency, and every slot reads the
        // committed value — the doomed writes are gone without a trace.
        let mut recovered = open_device(&scratch.device(), SimClock::new());
        let mut r = StateReader::new(&saved);
        recovered.load_state(&mut r).unwrap();
        r.finish().unwrap();
        for (a, block) in committed.iter().enumerate() {
            assert_eq!(
                recovered.read_block(a as u64).unwrap(),
                *block,
                "slot {a} lost the committed bytes"
            );
        }
    }

    /// A torn state blob never panics and never half-loads: the device
    /// state (cache section included — it sits at the end) errors at
    /// every truncation boundary.
    #[test]
    fn torn_device_state_with_cache_errors_at_every_boundary() {
        let scratch = Scratch::new("persist-cache-torn");
        let mut dev = open_device(&scratch.device(), SimClock::new());
        for a in 0..SLOTS {
            dev.write_block(a, sealer().seal(a, 0, b"payload")).unwrap();
        }
        dev.sync().unwrap();
        let mut w = StateWriter::new();
        dev.save_state(&mut w).unwrap();
        let saved = w.into_bytes();

        for cut in 0..saved.len() {
            let mut torn = open_device(&scratch.device(), SimClock::new());
            let mut r = StateReader::new(&saved[..cut]);
            assert!(
                torn.load_state(&mut r).and_then(|_| r.finish()).is_err(),
                "truncation at byte {cut} accepted"
            );
        }
    }
}

mod sharded {
    use super::*;

    const SHARDS: u64 = 4;

    fn sharded_config() -> ShardedConfig {
        ShardedConfig::new(
            HOramConfig::new(256, PAYLOAD, 64)
                .with_seed(4242)
                .with_worker_threads(1),
            SHARDS,
        )
    }

    fn build_sharded() -> ShardedOram {
        ShardedOram::new(sharded_config(), master(), |_| MemoryHierarchy::dac2019()).unwrap()
    }

    fn sharded_workload(len: usize, seed: u64) -> Vec<Request> {
        let mut rng = DeterministicRng::from_u64_seed(seed);
        (0..len)
            .map(|_| {
                let id = rng.gen_range(0..256u64);
                if rng.gen_bool(0.35) {
                    Request::write(id, vec![rng.gen::<u8>(); PAYLOAD])
                } else {
                    Request::read(id)
                }
            })
            .collect()
    }

    #[test]
    fn snapshot_restore_continues_byte_identically_across_shards() {
        let prefix = sharded_workload(80, 91);
        let suffix = sharded_workload(120, 92);

        let mut original = build_sharded();
        original.run_batch(&prefix).unwrap();
        let snapshot = original.snapshot().unwrap();
        let marks: Vec<usize> = original
            .shards()
            .iter()
            .map(|s| s.trace().snapshot().len())
            .collect();
        let original_responses = original.run_batch(&suffix).unwrap();

        let mut restored =
            ShardedOram::restore(master(), |_| MemoryHierarchy::dac2019(), &snapshot).unwrap();
        let restored_responses = restored.run_batch(&suffix).unwrap();

        assert_eq!(original_responses, restored_responses);
        assert_eq!(original.stats(), restored.stats());
        assert_eq!(original.shard_stats(), restored.shard_stats());
        assert_eq!(original.clock().now(), restored.clock().now());
        for (i, ((a, mark), b)) in original
            .shards()
            .iter()
            .zip(marks)
            .zip(restored.shards())
            .enumerate()
        {
            assert_eq!(
                a.trace().snapshot()[mark..].to_vec(),
                b.trace().snapshot(),
                "shard {i} trace diverged"
            );
        }
        assert!(original.stats().shuffles >= SHARDS, "periods must turn");
    }

    #[test]
    fn sharded_manifest_rejects_truncation_and_single_kind() {
        let mut oram = build_sharded();
        oram.run_batch(&sharded_workload(30, 77)).unwrap();
        let manifest = oram.snapshot().unwrap();
        // Stride through boundaries (every byte is covered by the single-
        // instance torn test; the manifest adds the nested layer).
        for cut in (0..manifest.len()).step_by(97).chain([manifest.len() - 1]) {
            assert!(
                ShardedOram::restore(master(), |_| MemoryHierarchy::dac2019(), &manifest[..cut])
                    .is_err(),
                "cut at {cut}"
            );
        }
        // A sharded manifest is not a single-instance snapshot.
        assert!(HOram::restore(MemoryHierarchy::dac2019(), master(), &manifest).is_err());
    }

    /// The corruption → quarantine → restore round trip: a shard whose
    /// storage returns bit-rotted blocks fails authentication, is
    /// quarantined (its tickets resolve to typed failures, the healthy
    /// shards keep serving byte-exact answers, and a new checkpoint is
    /// refused), and a pre-failure snapshot restores the full instance
    /// to byte-exact health.
    #[test]
    fn corrupted_shard_quarantines_and_restores_from_snapshot() {
        use horam::storage::fault::FaultConfig;

        let prefix = sharded_workload(80, 93);
        let mut oram = build_sharded();
        oram.run_batch(&prefix).unwrap();
        let snapshot = oram.snapshot().unwrap();

        // A deterministic twin provides the expected value of every block.
        let mut twin = build_sharded();
        twin.run_batch(&prefix).unwrap();

        let target = 0usize;
        oram.inject_storage_faults(
            target,
            FaultConfig {
                seed: 17,
                corrupt_permille: 1000,
                ..FaultConfig::default()
            },
        );

        let tickets: Vec<(u64, u64)> = (0..256u64)
            .map(|id| (id, oram.enqueue(Request::read(id)).unwrap()))
            .collect();
        let mut rounds = 0;
        while !oram.is_drained() {
            oram.run_cycle_window(8).unwrap();
            rounds += 1;
            assert!(rounds < 100_000, "pump stalled");
        }

        assert_eq!(
            oram.degraded_shards(),
            vec![target],
            "bit rot must quarantine exactly the corrupted shard"
        );
        let mut failed = 0;
        for (id, ticket) in tickets {
            match oram.take_response(ticket) {
                Some(bytes) => assert_eq!(
                    bytes,
                    twin.read(BlockId(id)).unwrap(),
                    "a served answer must stay byte-exact"
                ),
                None => {
                    oram.take_failure(ticket)
                        .expect("lost tickets resolve to typed failures");
                    failed += 1;
                    assert_eq!(
                        oram.mapper().shard_of(BlockId(id)).unwrap() as usize,
                        target,
                        "only the corrupted shard may lose tickets"
                    );
                }
            }
        }
        assert!(failed > 0, "the corrupted shard must actually fail");

        // Quarantined: a checkpoint would lose the degraded shard's
        // blocks, so it is refused typed.
        assert!(matches!(
            oram.snapshot(),
            Err(OramError::SnapshotInvalid { .. })
        ));

        // The pre-failure snapshot restores full byte-exact health.
        let mut restored =
            ShardedOram::restore(master(), |_| MemoryHierarchy::dac2019(), &snapshot).unwrap();
        assert!(restored.degraded_shards().is_empty());
        for id in 0..256u64 {
            assert_eq!(
                restored.read(BlockId(id)).unwrap(),
                twin.read(BlockId(id)).unwrap(),
                "block {id} diverged after restore"
            );
        }
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_ops(max: usize) -> impl Strategy<Value = Vec<(u64, Option<u8>)>> {
        proptest::collection::vec((0u64..CAPACITY, proptest::option::of(any::<u8>())), 1..max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// `snapshot → restore` is the identity over arbitrary access
        /// prefixes: the restored instance and the original produce
        /// byte-identical responses, traces, stats, and clocks on any
        /// continuation.
        #[test]
        fn restore_is_identity_on_arbitrary_prefixes(
            prefix in arbitrary_ops(50),
            suffix in arbitrary_ops(40),
        ) {
            let prefix = requests_from(&prefix);
            let suffix = requests_from(&suffix);

            let mut original = build();
            original.run_batch(&prefix).expect("prefix");
            let snapshot = original.snapshot().expect("snapshot");
            let mark = original.trace().snapshot().len();
            let original_responses = original.run_batch(&suffix).expect("suffix");

            let mut restored =
                HOram::restore(MemoryHierarchy::dac2019(), master(), &snapshot).expect("restore");
            let restored_responses = restored.run_batch(&suffix).expect("replay");

            prop_assert_eq!(original_responses, restored_responses);
            prop_assert_eq!(
                original.trace().snapshot()[mark..].to_vec(),
                restored.trace().snapshot()
            );
            prop_assert_eq!(original.stats(), restored.stats());
            prop_assert_eq!(original.clock().now(), restored.clock().now());
        }

        /// The same identity at 4 shards, through the manifest path.
        #[test]
        fn sharded_restore_is_identity(
            prefix in proptest::collection::vec((0u64..256, proptest::option::of(any::<u8>())), 1..40),
            suffix in proptest::collection::vec((0u64..256, proptest::option::of(any::<u8>())), 1..30),
        ) {
            let config = ShardedConfig::new(
                HOramConfig::new(256, PAYLOAD, 64).with_seed(5151).with_worker_threads(1),
                4,
            );
            let prefix = requests_from(&prefix);
            let suffix = requests_from(&suffix);

            let mut original =
                ShardedOram::new(config, master(), |_| MemoryHierarchy::dac2019()).expect("builds");
            original.run_batch(&prefix).expect("prefix");
            let snapshot = original.snapshot().expect("snapshot");
            let original_responses = original.run_batch(&suffix).expect("suffix");

            let mut restored =
                ShardedOram::restore(master(), |_| MemoryHierarchy::dac2019(), &snapshot)
                    .expect("restore");
            let restored_responses = restored.run_batch(&suffix).expect("replay");

            prop_assert_eq!(original_responses, restored_responses);
            prop_assert_eq!(original.stats(), restored.stats());
            prop_assert_eq!(original.shard_stats(), restored.shard_stats());
            prop_assert_eq!(original.clock().now(), restored.clock().now());
        }
    }
}

mod service {
    use super::*;
    use horam::core::{Permission, UserId};
    use horam_server::{FifoPolicy, OramService, ServiceConfig};

    #[test]
    fn service_checkpoint_drains_then_snapshots() {
        let mut service = OramService::new(
            build(),
            Box::new(FifoPolicy),
            ServiceConfig {
                batch_size: 16,
                ..ServiceConfig::default()
            },
        );
        service.register_tenant(UserId(0), 0..CAPACITY, Permission::ReadWrite);
        let mut tickets = Vec::new();
        for request in workload(40, 61) {
            tickets.push(service.submit(UserId(0), request).unwrap());
        }
        // Checkpoint with everything still queued: it must drain first.
        let snapshot = service.checkpoint().unwrap();
        for ticket in tickets {
            assert!(
                service.take_response(ticket).is_some(),
                "checkpoint must have completed queued work"
            );
        }

        // The snapshot restores into a working engine that continues the
        // same timeline.
        let mut restored = HOram::restore(MemoryHierarchy::dac2019(), master(), &snapshot).unwrap();
        let continuation = workload(20, 62);
        let responses = restored.run_batch(&continuation).unwrap();
        assert_eq!(responses.len(), continuation.len());
    }
}

/// The PR-5 durability stack with the recursive position map installed:
/// snapshots seal the per-level ORAM state (or the full level devices
/// when the levels are volatile), and recovery must stay byte-identical
/// to the uninterrupted run in both modes.
mod recursive_posmap {
    use super::*;
    use horam::core::{PosmapMode, RecursivePosmapConfig};

    fn recursive_config(backing: Option<&Path>) -> HOramConfig {
        config().with_posmap(PosmapMode::Recursive(RecursivePosmapConfig {
            cache_pages: 4,
            backing_dir: backing.map(|p| p.to_string_lossy().into_owned()),
            ..RecursivePosmapConfig::default()
        }))
    }

    /// Volatile levels (no backing dir): the snapshot embeds the level
    /// blocks, and restore continues the same timeline byte-for-byte.
    #[test]
    fn volatile_levels_snapshot_restores_byte_identically() {
        let prefix = workload(60, 71);
        let suffix = workload(90, 72);

        let mut original =
            HOram::new(recursive_config(None), MemoryHierarchy::dac2019(), master()).unwrap();
        original.run_batch(&prefix).unwrap();
        let snapshot = original.snapshot().unwrap();
        let trace_mark = original.trace().snapshot().len();
        let original_responses = original.run_batch(&suffix).unwrap();
        let original_trace = original.trace().snapshot()[trace_mark..].to_vec();
        assert!(original.stats().shuffles >= 2, "setup: periods must turn");

        let mut restored = HOram::restore(MemoryHierarchy::dac2019(), master(), &snapshot).unwrap();
        let restored_responses = restored.run_batch(&suffix).unwrap();

        assert_eq!(original_responses, restored_responses);
        assert_eq!(original_trace, restored.trace().snapshot());
        assert_eq!(original.stats(), restored.stats());
        assert_eq!(original.clock().now(), restored.clock().now());
    }

    /// Durable levels + durable data device: kill the engine mid-workload
    /// at several cycle boundaries (level write-back and shuffle stream in
    /// flight), recover from snapshot + files, replay — byte-identical to
    /// the uninterrupted reference.
    #[test]
    fn kill_mid_workload_with_durable_levels_recovers_byte_identically() {
        let pre = workload(40, 73);
        let post = workload(70, 74);

        let reference_scratch = Scratch::new("persist-rec-reference");
        let reference_config = recursive_config(Some(&reference_scratch.0.join("posmap")));
        let mut reference = HOram::new(
            reference_config,
            file_hierarchy(&reference_scratch.device()),
            master(),
        )
        .unwrap();
        reference.run_batch(&pre).unwrap();
        let _ = reference.snapshot().unwrap();
        let ref_mark = reference.trace().snapshot().len();
        let ref_responses = reference.run_batch(&post).unwrap();
        let ref_trace = reference.trace().snapshot()[ref_mark..].to_vec();
        let ref_stats = reference.stats();
        assert!(ref_stats.shuffles >= 2, "setup: periods must turn");

        for kill_after_cycles in [0u64, 2, 5, 11, 23] {
            let scratch = Scratch::new("persist-rec-kill");
            let victim_config = recursive_config(Some(&scratch.0.join("posmap")));
            let mut engine =
                HOram::new(victim_config, file_hierarchy(&scratch.device()), master()).unwrap();
            engine.run_batch(&pre).unwrap();
            let snapshot = engine.snapshot().unwrap();

            for request in &post {
                engine.enqueue(request.clone()).unwrap();
            }
            for _ in 0..kill_after_cycles {
                if engine.queue().is_drained() {
                    break;
                }
                engine.run_cycle().unwrap();
            }
            drop(engine); // the kill: no sync, no checkpoint

            let mut recovered =
                HOram::restore(file_hierarchy(&scratch.device()), master(), &snapshot).unwrap();
            let responses = recovered.run_batch(&post).unwrap();
            assert_eq!(
                ref_responses, responses,
                "kill after {kill_after_cycles} cycles: responses diverged"
            );
            assert_eq!(
                ref_trace,
                recovered.trace().snapshot(),
                "kill after {kill_after_cycles} cycles: trace diverged"
            );
            assert_eq!(
                ref_stats,
                recovered.stats(),
                "kill after {kill_after_cycles} cycles: stats diverged"
            );
            assert_eq!(reference.clock().now(), recovered.clock().now());
        }
    }

    /// Durable levels shrink the snapshot: the same engine state seals to
    /// far fewer bytes when the level blocks live in files instead of
    /// being embedded in the snapshot.
    #[test]
    fn durable_levels_keep_level_blocks_out_of_the_snapshot() {
        let scratch = Scratch::new("persist-rec-size");
        let mut durable = HOram::new(
            recursive_config(Some(&scratch.0.join("posmap"))),
            file_hierarchy(&scratch.device()),
            master(),
        )
        .unwrap();
        durable.run_batch(&workload(30, 75)).unwrap();
        let durable_snapshot = durable.snapshot().unwrap();

        let mut volatile =
            HOram::new(recursive_config(None), MemoryHierarchy::dac2019(), master()).unwrap();
        volatile.run_batch(&workload(30, 75)).unwrap();
        let volatile_snapshot = volatile.snapshot().unwrap();

        assert!(
            durable_snapshot.len() * 2 < volatile_snapshot.len(),
            "durable-level snapshot ({}) must be far smaller than the volatile one ({})",
            durable_snapshot.len(),
            volatile_snapshot.len()
        );
    }
}

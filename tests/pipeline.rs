//! Differential battery for the pipelined cycle scheduler: at any
//! pipeline depth — any shard count, with or without the block cache,
//! flat or recursive position map — the engine must be **byte-identical**
//! to the sequential (depth-1) engine on *everything*:
//!
//! * byte-identical responses over arbitrary request sequences;
//! * identical protocol counters (requests, loads, dummies, shuffles…);
//! * an identical bus trace — same devices, op kinds, physical slots,
//!   byte counts, in the same order;
//! * an **identical simulated clock** (unlike the cache differential in
//!   `tests/cache.rs`, which only bounds the clock, the pipeline is
//!   host-side overlap: simulated device charges must not move at all).
//!
//! Checked across the full configuration grid by example and by
//! property, and the battery's teeth are proven on a deliberately leaky
//! fixture (`HOram::set_hazard_skip`) that plans lookahead windows
//! across period boundaries — the battery must *detect* that leak.

use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::crypto::rng::DeterministicRng;
use horam::prelude::*;
use horam::storage::cache::CacheConfig;
use horam::storage::device::AccessKind;
use horam::storage::trace::TraceEvent;
use rand::Rng;

const CAPACITY: u64 = 256;
const PAYLOAD: usize = 8;
const MEMORY_SLOTS: u64 = 64;
const IO_BATCH: u64 = 8;

/// One point in the configuration grid the battery sweeps.
#[derive(Clone, Copy)]
struct Point {
    cached: bool,
    recursive: bool,
}

impl Point {
    fn label(&self) -> String {
        format!(
            "{}/{} posmap",
            if self.cached { "cached" } else { "uncached" },
            if self.recursive { "recursive" } else { "flat" },
        )
    }
}

const GRID: [Point; 4] = [
    Point {
        cached: false,
        recursive: false,
    },
    Point {
        cached: true,
        recursive: false,
    },
    Point {
        cached: false,
        recursive: true,
    },
    Point {
        cached: true,
        recursive: true,
    },
];

fn config(point: Point, depth: u64) -> HOramConfig {
    let mut config = HOramConfig::new(CAPACITY, PAYLOAD, MEMORY_SLOTS)
        .with_seed(0x91e)
        .with_io_batch(IO_BATCH)
        .with_pipeline_depth(depth);
    if point.cached {
        config = config.with_cache(CacheConfig::lru(16));
    }
    if point.recursive {
        config = config.with_recursive_posmap(None, 4);
    }
    config
}

fn build(point: Point, depth: u64) -> HOram {
    HOram::new(
        config(point, depth),
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([0x5D; 32]),
    )
    .expect("construction succeeds")
}

fn build_sharded(point: Point, depth: u64, shards: u64) -> ShardedOram {
    ShardedOram::new(
        ShardedConfig::new(config(point, depth), shards),
        MasterKey::from_bytes([0x5D; 32]),
        |_| MemoryHierarchy::dac2019(),
    )
    .expect("sharded instance builds")
}

/// A deterministic mixed read/write workload.
fn workload(len: usize, seed: u64) -> Vec<Request> {
    let mut rng = DeterministicRng::from_u64_seed(seed);
    (0..len)
        .map(|_| {
            let id = rng.gen_range(0..CAPACITY);
            if rng.gen_bool(0.3) {
                Request::write(id, vec![rng.gen::<u8>(); PAYLOAD])
            } else {
                Request::read(id)
            }
        })
        .collect()
}

/// The adversary-visible part of an event: everything except the
/// timestamp, which is asserted separately (and exactly) through the
/// clock frontier.
fn shape(events: &[TraceEvent]) -> Vec<(u16, bool, u64, u64)> {
    events
        .iter()
        .map(|e| (e.device.0, e.kind == AccessKind::Read, e.addr, e.bytes))
        .collect()
}

/// Every protocol counter in [`HOramStats`] that the pipeline must not
/// move. Time fields ride the clock assertion instead, where the pipeline
/// contract is *equality*, not a bound.
fn counters(stats: &HOramStats) -> [u64; 10] {
    [
        stats.requests,
        stats.writes,
        stats.cycles,
        stats.memory_hits,
        stats.dummy_memory_accesses,
        stats.real_io_loads,
        stats.dummy_io_loads,
        stats.prefetched_blocks,
        stats.shuffles,
        stats.spilled_blocks,
    ]
}

struct Observed {
    responses: Vec<Vec<u8>>,
    counters: [u64; 10],
    shapes: Vec<Vec<(u16, bool, u64, u64)>>,
    clock: u64,
}

fn observe(point: Point, depth: u64, requests: &[Request]) -> Observed {
    let mut oram = build(point, depth);
    let responses = oram.run_batch(requests).expect("batch runs");
    Observed {
        responses,
        counters: counters(&oram.stats()),
        shapes: vec![shape(&oram.trace().snapshot())],
        clock: oram.clock().now().as_nanos(),
    }
}

fn observe_sharded(point: Point, depth: u64, shards: u64, requests: &[Request]) -> Observed {
    let mut oram = build_sharded(point, depth, shards);
    let responses = oram.run_batch(requests).expect("batch runs");
    Observed {
        responses,
        counters: counters(&oram.stats()),
        shapes: oram
            .shards()
            .iter()
            .map(|shard| shape(&shard.trace().snapshot()))
            .collect(),
        clock: oram.clock().now().as_nanos(),
    }
}

fn assert_identical(observed: &Observed, reference: &Observed, label: &str) {
    assert_eq!(
        observed.responses, reference.responses,
        "{label}: responses diverged"
    );
    assert_eq!(
        observed.counters, reference.counters,
        "{label}: counters diverged"
    );
    assert_eq!(
        observed.shapes, reference.shapes,
        "{label}: bus trace diverged"
    );
    assert_eq!(
        observed.clock, reference.clock,
        "{label}: simulated clock diverged"
    );
}

/// The headline differential: over the full grid — cached/uncached ×
/// flat/recursive posmap, at 1 and 4 shards — depths 2 and 4 are
/// byte-identical to depth 1 on responses, counters, every per-shard bus
/// trace, and the simulated clock.
#[test]
fn any_depth_is_byte_identical_to_sequential() {
    let requests = workload(300, 0xA1);
    for point in GRID {
        let reference = observe(point, 1, &requests);
        assert!(
            reference.counters[8] >= 2,
            "{}: setup must cross shuffle periods",
            point.label()
        );
        for depth in [2u64, 4] {
            let observed = observe(point, depth, &requests);
            assert_identical(
                &observed,
                &reference,
                &format!("1 shard, {}, depth {depth}", point.label()),
            );
        }

        let sharded_reference = observe_sharded(point, 1, 4, &requests);
        for depth in [2u64, 4] {
            let observed = observe_sharded(point, depth, 4, &requests);
            assert_identical(
                &observed,
                &sharded_reference,
                &format!("4 shards, {}, depth {depth}", point.label()),
            );
        }
    }
}

/// The differential above is not vacuous: at depth 4 the pipeline
/// actually engages — windows are planned ahead and commits overlap
/// planning — while a depth-1 run never plans ahead.
#[test]
fn deep_runs_actually_pipeline() {
    let requests = workload(300, 0xA1);

    let mut sequential = build(GRID[0], 1);
    sequential.run_batch(&requests).expect("batch runs");
    assert_eq!(sequential.pipeline_stats().planned_ahead_windows, 0);

    let mut piped = build(GRID[0], 4);
    piped.run_batch(&requests).expect("batch runs");
    let stats = piped.pipeline_stats();
    assert!(
        stats.planned_ahead_windows > 0,
        "depth-4 run planned nothing ahead: {stats:?}"
    );
    assert!(
        stats.period_stalls > 0,
        "workload crosses periods, so lookahead must have stalled at \
         boundaries: {stats:?}"
    );

    // Sharded engagement needs a per-shard access period that holds more
    // than one window: at the grid geometry each shard's period I/O limit
    // equals the window size, so lookahead (correctly) stalls at every
    // boundary. Double the memory budget so each shard fits two windows
    // per period.
    let config = HOramConfig::new(CAPACITY, PAYLOAD, 2 * MEMORY_SLOTS)
        .with_seed(0x91e)
        .with_io_batch(IO_BATCH)
        .with_pipeline_depth(4);
    let mut sharded = ShardedOram::new(
        ShardedConfig::new(config, 4),
        MasterKey::from_bytes([0x5D; 32]),
        |_| MemoryHierarchy::dac2019(),
    )
    .expect("sharded instance builds");
    sharded.run_batch(&requests).expect("batch runs");
    let engaged: u64 = sharded
        .shards()
        .iter()
        .map(|shard| shard.pipeline_stats().planned_ahead_windows)
        .sum();
    assert!(engaged > 0, "sharded depth-4 run planned nothing ahead");
}

/// Teeth check: a deliberately leaky scheduler — lookahead planning that
/// ignores the period boundary (`HOram::set_hazard_skip`) — must be
/// *caught* by this battery's observables. The leak delays shuffles, so
/// the trace and clock diverge from the honest depth-1 reference.
#[test]
fn battery_detects_period_hazard_violations() {
    let requests = workload(300, 0xA1);
    let reference = observe(GRID[0], 1, &requests);

    // At depth 1 there is no lookahead, so the broken clamp is dead code
    // and the leak is invisible: a single-depth test suite would pass.
    let mut sequential = build(GRID[0], 1);
    sequential.set_hazard_skip(true);
    let responses = sequential.run_batch(&requests).expect("batch runs");
    assert_eq!(responses, reference.responses);
    assert_eq!(shape(&sequential.trace().snapshot()), reference.shapes[0]);
    assert_eq!(sequential.clock().now().as_nanos(), reference.clock);

    // At depth 4 lookahead planning crosses the period boundary and the
    // cross-depth differential catches it.
    let mut leaky = build(GRID[0], 4);
    leaky.set_hazard_skip(true);
    let responses = leaky.run_batch(&requests).expect("batch runs");
    let diverged = responses != reference.responses
        || counters(&leaky.stats()) != reference.counters
        || shape(&leaky.trace().snapshot()) != reference.shapes[0]
        || leaky.clock().now().as_nanos() != reference.clock;
    assert!(
        diverged,
        "the hazard-skip leak went undetected: a depth-4 run with \
         period-boundary clamping disabled matched the sequential \
         reference on every observable"
    );
}

/// Depth composes with the serving layer's burst pump: driving the
/// engine through explicit `run_cycle_burst` windows (as `OramService`
/// does) reaches the same final state as `run_batch`, at both 1 and 4
/// shards.
#[test]
fn burst_pumping_matches_batch_draining() {
    use horam::core::engine::OramEngine;
    let requests = workload(120, 0xB7);
    let reference = observe(GRID[0], 1, &requests);

    let mut pumped = build(GRID[0], 4);
    let tickets: Vec<u64> = requests
        .iter()
        .map(|request| pumped.enqueue(request.clone()).expect("enqueues"))
        .collect();
    while OramEngine::pending_requests(&pumped) > 0 {
        OramEngine::run_cycle_burst(&mut pumped, IO_BATCH, 4).expect("burst runs");
    }
    let responses: Vec<Vec<u8>> = tickets
        .iter()
        .map(|ticket| pumped.take_response(*ticket).expect("response ready"))
        .collect();
    assert_eq!(responses, reference.responses, "pumped responses diverged");
    assert_eq!(counters(&pumped.stats()), reference.counters);
    assert_eq!(shape(&pumped.trace().snapshot()), reference.shapes[0]);
    assert_eq!(pumped.clock().now().as_nanos(), reference.clock);

    let sharded_reference = observe_sharded(GRID[0], 1, 4, &requests);
    let mut sharded = build_sharded(GRID[0], 4, 4);
    let tickets: Vec<u64> = requests
        .iter()
        .map(|request| sharded.enqueue(request.clone()).expect("enqueues"))
        .collect();
    while OramEngine::pending_requests(&sharded) > 0 {
        OramEngine::run_cycle_burst(&mut sharded, IO_BATCH, 4).expect("burst runs");
    }
    let responses: Vec<Vec<u8>> = tickets
        .iter()
        .map(|ticket| sharded.take_response(*ticket).expect("response ready"))
        .collect();
    assert_eq!(responses, sharded_reference.responses);
    assert_eq!(counters(&sharded.stats()), sharded_reference.counters);
    assert_eq!(sharded.clock().now().as_nanos(), sharded_reference.clock);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_ops(max: usize) -> impl Strategy<Value = Vec<(u64, Option<u8>)>> {
        proptest::collection::vec((0u64..64, proptest::option::of(any::<u8>())), 1..max)
    }

    fn requests_from(ops: &[(u64, Option<u8>)]) -> Vec<Request> {
        ops.iter()
            .map(|(id, write)| match write {
                Some(byte) => Request::write(*id, vec![*byte; PAYLOAD]),
                None => Request::read(*id),
            })
            .collect()
    }

    /// A tiny geometry (16 memory slots) so arbitrary sequences cross
    /// shuffle periods — the regime where pipelined planning must stall
    /// and re-plan deterministically.
    fn small(depth: u64, recursive: bool) -> HOram {
        let mut config = HOramConfig::new(64, PAYLOAD, 16)
            .with_seed(0x97)
            .with_io_batch(4)
            .with_pipeline_depth(depth);
        if recursive {
            config = config.with_recursive_posmap(None, 4);
        }
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0x5D; 32]),
        )
        .expect("construction succeeds")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For arbitrary read/write interleavings, every pipeline depth
        /// is byte-identical to the sequential engine on responses,
        /// counters, the bus trace, and the simulated clock — for both
        /// position-map implementations.
        #[test]
        fn any_depth_identical_for_arbitrary_sequences(
            ops in arbitrary_ops(70),
        ) {
            let requests = requests_from(&ops);
            for recursive in [false, true] {
                let mut reference = small(1, recursive);
                let expected = reference.run_batch(&requests).expect("sequential runs");
                let expected_counters = counters(&reference.stats());
                let expected_shape = shape(&reference.trace().snapshot());
                let expected_clock = reference.clock().now();

                for depth in [2u64, 4] {
                    let label = format!("depth {depth} recursive {recursive}");
                    let mut oram = small(depth, recursive);
                    let responses = oram.run_batch(&requests).expect("pipelined runs");
                    prop_assert_eq!(&responses, &expected, "{}: responses", label);
                    prop_assert_eq!(
                        counters(&oram.stats()), expected_counters, "{}: counters", label
                    );
                    prop_assert_eq!(
                        &shape(&oram.trace().snapshot()), &expected_shape, "{}: shape", label
                    );
                    prop_assert_eq!(
                        oram.clock().now(), expected_clock, "{}: clock", label
                    );
                }
            }
        }

        /// The same equivalence at 4 shards: per-shard pipelines compose
        /// with routing, and every shard's trace stays byte-identical.
        #[test]
        fn sharded_depth_identical_for_arbitrary_sequences(
            ops in arbitrary_ops(60),
        ) {
            let requests = requests_from(&ops);
            let sharded = |depth: u64| {
                let config = HOramConfig::new(64, PAYLOAD, 16)
                    .with_seed(0x97)
                    .with_io_batch(4)
                    .with_pipeline_depth(depth);
                ShardedOram::new(
                    ShardedConfig::new(config, 4),
                    MasterKey::from_bytes([0x5D; 32]),
                    |_| MemoryHierarchy::dac2019(),
                )
                .expect("sharded instance builds")
            };

            let mut reference = sharded(1);
            let expected = reference.run_batch(&requests).expect("sequential runs");

            let mut piped = sharded(4);
            let responses = piped.run_batch(&requests).expect("pipelined runs");
            prop_assert_eq!(responses, expected);
            prop_assert_eq!(counters(&piped.stats()), counters(&reference.stats()));
            for (i, (a, b)) in piped.shards().iter().zip(reference.shards()).enumerate() {
                prop_assert_eq!(
                    shape(&a.trace().snapshot()),
                    shape(&b.trace().snapshot()),
                    "shard {} trace diverged", i
                );
            }
            prop_assert_eq!(piped.clock().now(), reference.clock().now());
        }
    }
}

//! Position-map conformance: the flat table and the recursive ORAM map
//! implement one contract. Every scripted and randomized call sequence
//! must produce identical answers from both, and whole engines built on
//! either map must be response-identical — at one shard and at four.

use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::core::{build_posmap, Location, PositionMap};
use horam::prelude::*;

fn config(capacity: u64, seed: u64) -> HOramConfig {
    HOramConfig::new(capacity, 8, (capacity / 4).max(16)).with_seed(seed)
}

/// Both implementations over the same geometry, boxed behind the trait.
///
/// Construction state is owned by the storage layer (the flat map starts
/// on its seed permutation, the recursive map all-in-memory, and the
/// layer's initial layout overwrites both) — so conformance scripts first
/// normalize through the public contract: one full-image rebuild placing
/// block `i` at slot `i`.
fn both(capacity: u64, seed: u64) -> Vec<Box<dyn PositionMap>> {
    let master = MasterKey::from_bytes([0x77; 32]);
    let flat = build_posmap(&config(capacity, seed), &master, false).expect("flat builds");
    let recursive = build_posmap(
        &config(capacity, seed).with_recursive_posmap(None, 4),
        &master,
        false,
    )
    .expect("recursive builds");
    let mut maps = vec![flat, recursive];
    let total_slots = maps[0].total_slots() as usize;
    let mut image: Vec<Option<BlockId>> = vec![None; total_slots];
    for id in 0..capacity {
        image[id as usize] = Some(BlockId(id));
    }
    for map in &mut maps {
        map.rebuild_all(&image).expect("normalizing rebuild");
    }
    maps
}

/// Runs one mutating step against a map and returns its observable
/// outcome, so scripted sequences can be compared across implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Place(u64, u64),
    TakeOwner(u64),
    SetInMemory(u64),
    Location(u64),
    InMemoryCount,
}

fn apply(map: &mut dyn PositionMap, step: Step) -> String {
    match step {
        Step::Place(id, slot) => format!("{:?}", map.place(BlockId(id), slot)),
        Step::TakeOwner(slot) => format!("{:?}", map.take_owner(slot)),
        Step::SetInMemory(id) => format!("{:?}", map.set_in_memory(BlockId(id))),
        Step::Location(id) => format!("{:?}", map.location(BlockId(id))),
        Step::InMemoryCount => format!("{}", map.in_memory_count()),
    }
}

#[test]
fn scripted_sequences_agree_across_implementations() {
    // From the normalized layout (block `i` at slot `i`, slots 64..79
    // free), walk the storage layer's real call discipline: misses
    // (`location` → `take_owner` → `set_in_memory`), dummy prefetches
    // (`take_owner` on an empty slot), and re-homing (`place` into a free
    // slot).
    let script = [
        Step::InMemoryCount,
        Step::Location(0),
        Step::Location(63),
        Step::TakeOwner(0),
        Step::SetInMemory(0),
        Step::Location(0),
        Step::InMemoryCount,
        Step::TakeOwner(0),
        Step::Place(0, 70),
        Step::Location(0),
        Step::InMemoryCount,
        Step::TakeOwner(5),
        Step::SetInMemory(5),
        Step::InMemoryCount,
        Step::Place(5, 0),
        Step::Location(5),
        Step::InMemoryCount,
        Step::TakeOwner(70),
        Step::SetInMemory(0),
        Step::Location(0),
        Step::InMemoryCount,
    ];
    let mut maps = both(64, 11);
    let mut transcripts: Vec<Vec<String>> = vec![Vec::new(); maps.len()];
    for &step in &script {
        for (map, transcript) in maps.iter_mut().zip(&mut transcripts) {
            transcript.push(apply(map.as_mut(), step));
        }
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "flat and recursive maps diverged on the scripted sequence"
    );
}

#[test]
fn randomized_sequences_agree_with_a_naive_model() {
    use horam::crypto::rng::DeterministicRng;
    use rand::Rng;

    let capacity = 128u64;
    let mut maps = both(capacity, 7);
    let total_slots = maps[0].total_slots();
    // The naive model of the normalized layout: block `i` at slot `i`.
    let mut model: Vec<Option<u64>> = (0..capacity).map(Some).collect();
    let mut owners: Vec<Option<u64>> = (0..total_slots)
        .map(|s| (s < capacity).then_some(s))
        .collect();

    let mut rng = DeterministicRng::from_u64_seed(0xBEEF);
    for _ in 0..600 {
        // Each iteration follows the storage layer's discipline: a take
        // of a real owner is followed by its promotion to memory.
        let steps: Vec<Step> = match rng.gen_range(0..4u8) {
            0 => {
                // Re-home a currently-in-memory block into a free slot.
                let free: Vec<u64> = (0..total_slots)
                    .filter(|&s| owners[s as usize].is_none())
                    .collect();
                let homeless: Vec<u64> = (0..capacity)
                    .filter(|&id| model[id as usize].is_none())
                    .collect();
                if free.is_empty() || homeless.is_empty() {
                    continue;
                }
                let id = homeless[rng.gen_range(0..homeless.len())];
                let slot = free[rng.gen_range(0..free.len())];
                model[id as usize] = Some(slot);
                owners[slot as usize] = Some(id);
                vec![Step::Place(id, slot)]
            }
            1 => {
                // A miss or dummy prefetch on a random slot.
                let slot = rng.gen_range(0..total_slots);
                match owners[slot as usize].take() {
                    Some(id) => {
                        model[id as usize] = None;
                        vec![Step::TakeOwner(slot), Step::SetInMemory(id)]
                    }
                    None => vec![Step::TakeOwner(slot)],
                }
            }
            2 => vec![Step::Location(rng.gen_range(0..capacity))],
            _ => vec![Step::InMemoryCount],
        };
        for step in steps {
            let outcomes: Vec<String> = maps
                .iter_mut()
                .map(|map| apply(map.as_mut(), step))
                .collect();
            assert_eq!(
                outcomes[0], outcomes[1],
                "implementations diverged on {step:?}"
            );
        }
    }

    // Final sweep: every block's location matches the model in both maps.
    for id in 0..capacity {
        let expected = match model[id as usize] {
            Some(slot) => Location::Storage { slot },
            None => Location::Memory,
        };
        for map in &mut maps {
            assert_eq!(map.location(BlockId(id)).unwrap(), expected);
        }
    }
}

#[test]
fn rebuild_all_agrees_across_implementations() {
    let capacity = 64u64;
    let mut maps = both(capacity, 3);
    let total_slots = maps[0].total_slots();

    // A full image placing every other block (at spread-out slots),
    // leaving the rest in memory.
    let mut image: Vec<Option<BlockId>> = vec![None; total_slots as usize];
    for id in (0..capacity).step_by(2) {
        image[id as usize] = Some(BlockId(id));
    }
    let placed = image.iter().flatten().count() as u64;
    for map in &mut maps {
        map.rebuild_all(&image).expect("full rebuild");
    }
    for id in 0..capacity {
        let expected = match image.iter().position(|o| *o == Some(BlockId(id))) {
            Some(slot) => Location::Storage { slot: slot as u64 },
            None => Location::Memory,
        };
        for map in &mut maps {
            assert_eq!(map.location(BlockId(id)).unwrap(), expected);
        }
    }
    for map in &maps {
        assert_eq!(map.in_memory_count(), capacity - placed);
    }

    // Pass-sized owner sweeps agree with the image too.
    let half = total_slots / 2;
    let in_first_half = image[..half as usize].iter().flatten().count();
    for map in &mut maps {
        let taken = map.take_pass_owners(0, half).unwrap();
        assert_eq!(taken.iter().flatten().count(), in_first_half);
        assert_eq!(&taken[..], &image[..half as usize]);
    }
}

#[test]
fn trusted_memory_accounting_is_sublinear_for_the_recursive_map() {
    let small = both(1 << 10, 5).remove(1);
    let large = both(1 << 14, 5).remove(1);
    let flat_large = both(1 << 14, 5).remove(0);
    // 16× the capacity must cost far less than 16× the trusted bytes —
    // and undercut the flat table outright.
    assert!(large.memory_bytes() < small.memory_bytes() * 8);
    assert!(large.memory_bytes() * 4 < flat_large.memory_bytes());
    assert!(!large.level_views().is_empty());
    assert!(flat_large.level_views().is_empty());
}

mod engine_equivalence {
    use super::*;
    use proptest::prelude::*;

    fn engine(capacity: u64, recursive: bool, seed: u64) -> HOram {
        let mut config = HOramConfig::new(capacity, 8, 16).with_seed(seed);
        if recursive {
            config = config.with_recursive_posmap(None, 4);
        }
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0x41; 32]),
        )
        .expect("engine builds")
    }

    fn sharded(capacity: u64, shards: u64, recursive: bool, seed: u64) -> ShardedOram {
        let mut config = HOramConfig::new(capacity, 8, 16).with_seed(seed);
        if recursive {
            config = config.with_recursive_posmap(None, 4);
        }
        ShardedOram::new(
            ShardedConfig::new(config, shards),
            MasterKey::from_bytes([0x41; 32]),
            |_| MemoryHierarchy::dac2019(),
        )
        .expect("sharded engine builds")
    }

    fn requests(ops: &[(u64, Option<u8>)]) -> Vec<Request> {
        ops.iter()
            .map(|(id, write)| match write {
                Some(byte) => Request::write(*id, vec![*byte; 8]),
                None => Request::read(*id),
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For arbitrary read/write interleavings, a recursive-posmap
        /// engine answers byte-identically to the flat-posmap engine —
        /// and so do its data-bus trace and simulated clock (tiny memory
        /// tree, so sequences cross shuffle periods).
        #[test]
        fn flat_and_recursive_engines_are_identical(
            ops in proptest::collection::vec((0u64..64, proptest::option::of(any::<u8>())), 1..70),
        ) {
            let batch = requests(&ops);
            let mut flat = engine(64, false, 29);
            let expected = flat.run_batch(&batch).expect("flat runs");
            let mut recursive = engine(64, true, 29);
            let responses = recursive.run_batch(&batch).expect("recursive runs");
            prop_assert_eq!(responses, expected);
            prop_assert_eq!(recursive.trace().snapshot(), flat.trace().snapshot());
            prop_assert_eq!(recursive.clock().now(), flat.clock().now());
        }

        /// The same equivalence holds through the sharded scale-out path
        /// at four shards (each shard gets its own recursive map).
        #[test]
        fn flat_and_recursive_sharded_engines_are_identical(
            ops in proptest::collection::vec((0u64..64, proptest::option::of(any::<u8>())), 1..60),
        ) {
            let batch = requests(&ops);
            let mut flat = sharded(64, 4, false, 31);
            let expected = flat.run_batch(&batch).expect("flat runs");
            let mut recursive = sharded(64, 4, true, 31);
            let responses = recursive.run_batch(&batch).expect("recursive runs");
            prop_assert_eq!(responses, expected);
        }
    }
}

//! Multi-tenant serving-layer integration: correctness of batching,
//! dedup, fairness and ticket ordering end-to-end through the scheduler.

use horam::core::{Permission, UserId};
use horam::prelude::*;
use horam::workload::{TenantSchedule, ZipfWorkload};
use horam_server::{
    DeadlinePolicy, FairSharePolicy, FifoPolicy, OramService, ServeError, ServiceConfig,
    ServiceTicket,
};
use std::collections::HashMap;

const CAPACITY: u64 = 1024;
const PAYLOAD: usize = 16;

fn service(batch_size: usize, policy: &str) -> OramService {
    let config = HOramConfig::new(CAPACITY, PAYLOAD, 256).with_seed(33);
    let oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([9u8; 32]),
    )
    .expect("builds");
    let policy: Box<dyn horam_server::AdmissionPolicy> = match policy {
        "fifo" => Box::new(FifoPolicy),
        "fair" => Box::new(FairSharePolicy::default()),
        "deadline" => Box::new(DeadlinePolicy),
        other => panic!("unknown policy {other}"),
    };
    OramService::new(
        oram,
        policy,
        ServiceConfig {
            batch_size,
            ..ServiceConfig::default()
        },
    )
}

fn payload(tag: u8) -> Vec<u8> {
    vec![tag; PAYLOAD]
}

/// N tenants with mixed reads/writes against a plain map reference:
/// every response must agree, across batch and shuffle boundaries.
#[test]
fn mixed_read_write_matches_reference() {
    for policy in ["fifo", "fair", "deadline"] {
        let mut service = service(32, policy);
        let tenants = 4u32;
        for t in 0..tenants {
            service.register_tenant(UserId(t), 0..CAPACITY, Permission::ReadWrite);
        }

        // A deterministic mixed workload over a shared region: tenant t
        // round r touches block (r * 7 + t * 13) % 64; every third access
        // is a write tagged by (tenant, round).
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut expected: HashMap<ServiceTicket, Vec<u8>> = HashMap::new();
        for round in 0..120u64 {
            for t in 0..tenants {
                let block = (round * 7 + t as u64 * 13) % 64;
                if (round + t as u64).is_multiple_of(3) {
                    let tag = (round as u8).wrapping_mul(31).wrapping_add(t as u8);
                    let ticket = service
                        .submit(UserId(t), Request::write(block, payload(tag)))
                        .unwrap();
                    let previous = reference
                        .insert(block, payload(tag))
                        .unwrap_or(vec![0; PAYLOAD]);
                    expected.insert(ticket, previous);
                } else {
                    let ticket = service.submit(UserId(t), Request::read(block)).unwrap();
                    expected.insert(
                        ticket,
                        reference.get(&block).cloned().unwrap_or(vec![0; PAYLOAD]),
                    );
                }
                // Pump mid-stream so admission interleaves with arrivals.
                if service.pending_total() >= 32 {
                    service.pump().unwrap();
                }
            }
        }
        service.pump_until_idle().unwrap();

        for (ticket, want) in expected {
            let got = service.take_response(ticket);
            assert_eq!(
                got.as_ref(),
                Some(&want),
                "policy {policy}, ticket {ticket:?}"
            );
        }
        assert!(
            service.oram().stats().shuffles >= 1,
            "workload must cross a period"
        );
    }
}

/// Per-tenant responses come back in submission order and tickets are
/// collectable in any order.
#[test]
fn ticket_response_ordering() {
    let mut service = service(16, "fifo");
    service.register_tenant(UserId(0), 0..CAPACITY, Permission::ReadWrite);

    // Writes 1..=20 to the same block: each response is the previous
    // write's payload — any reordering of same-block requests would break
    // the chain.
    let block = 5u64;
    let tickets: Vec<ServiceTicket> = (1..=20u8)
        .map(|tag| {
            service
                .submit(UserId(0), Request::write(block, payload(tag)))
                .unwrap()
        })
        .collect();
    service.pump_until_idle().unwrap();

    // Collect in reverse order: buffering must not care.
    for (i, ticket) in tickets.iter().enumerate().rev() {
        let want = if i == 0 {
            vec![0; PAYLOAD]
        } else {
            payload(i as u8)
        };
        assert_eq!(
            service.take_response(*ticket),
            Some(want),
            "write {}",
            i + 1
        );
    }
}

/// Duplicate same-block reads inside one batch collapse onto one ORAM
/// request and all get the same (correct) answer.
#[test]
fn dedup_of_same_block_requests() {
    let mut service = service(64, "fifo");
    service.register_tenant(UserId(0), 0..CAPACITY, Permission::ReadWrite);
    service.register_tenant(UserId(1), 0..CAPACITY, Permission::ReadOnly);

    let seed = service
        .submit(UserId(0), Request::write(9u64, payload(0xAB)))
        .unwrap();
    service.pump_until_idle().unwrap();
    assert_eq!(service.take_response(seed), Some(vec![0; PAYLOAD]));
    let oram_requests_before = service.stats().oram.requests;

    // 30 reads of the same block from two tenants, one batch.
    let tickets: Vec<ServiceTicket> = (0..30)
        .map(|i| service.submit(UserId(i % 2), Request::read(9u64)).unwrap())
        .collect();
    service.pump_until_idle().unwrap();

    for ticket in tickets {
        assert_eq!(service.take_response(ticket), Some(payload(0xAB)));
    }
    let issued = service.stats().oram.requests - oram_requests_before;
    assert_eq!(issued, 1, "29 of 30 reads piggyback on one carrier");
    assert_eq!(service.stats().deduped, 29);
    let piggybacked: u64 = (0..2)
        .map(|t| service.tenant_stats(UserId(t)).unwrap().piggybacked)
        .sum();
    assert_eq!(piggybacked, 29);
}

/// A write between two same-block reads in one batch fences dedup: the
/// second read must observe the new value through its own access.
#[test]
fn dedup_respects_intervening_writes() {
    let mut service = service(64, "fifo");
    service.register_tenant(UserId(0), 0..CAPACITY, Permission::ReadWrite);

    let r1 = service.submit(UserId(0), Request::read(3u64)).unwrap();
    let w = service
        .submit(UserId(0), Request::write(3u64, payload(0x77)))
        .unwrap();
    let r2 = service.submit(UserId(0), Request::read(3u64)).unwrap();
    service.pump_until_idle().unwrap();

    assert_eq!(
        service.take_response(r1),
        Some(vec![0; PAYLOAD]),
        "pre-write value"
    );
    assert_eq!(
        service.take_response(w),
        Some(vec![0; PAYLOAD]),
        "previous bytes"
    );
    assert_eq!(
        service.take_response(r2),
        Some(payload(0x77)),
        "post-write value"
    );
}

/// Under a hot tenant submitting 8x everyone else's traffic, fair-share
/// admission keeps the cold tenants' latency near the hot tenant's —
/// FIFO lets the hot tenant starve them.
#[test]
fn fairness_under_a_hot_tenant() {
    let tenants = 4u32;
    let mut latency_ratio = HashMap::new();
    for policy in ["fifo", "fair"] {
        let mut service = service(16, policy);
        for t in 0..tenants {
            service.register_tenant(UserId(t), 0..CAPACITY, Permission::ReadWrite);
        }
        let mut generator = ZipfWorkload::new(CAPACITY, 1.1, 0.0, 5);
        let schedule = TenantSchedule::with_hot_tenant("hot", &mut generator, tenants, 8, 1200);
        let arrivals = schedule
            .arrivals
            .iter()
            .map(|a| (UserId(a.tenant), a.request.clone()));
        service.serve_all(arrivals).unwrap();

        let hot = service.tenant_stats(UserId(0)).unwrap().mean_latency();
        let cold_worst = (1..tenants)
            .map(|t| service.tenant_stats(UserId(t)).unwrap().mean_latency())
            .max()
            .unwrap();
        latency_ratio.insert(
            policy,
            cold_worst.as_nanos() as f64 / hot.as_nanos().max(1) as f64,
        );
    }

    let fifo = latency_ratio["fifo"];
    let fair = latency_ratio["fair"];
    assert!(
        fair < fifo,
        "fair-share must serve cold tenants sooner relative to the hot tenant \
         (cold/hot latency ratio: fifo {fifo:.2}, fair {fair:.2})"
    );
    assert!(
        fair <= 1.5,
        "cold tenants track the hot tenant under fair share, got {fair:.2}"
    );
}

/// `serve_all` must complete even when `batch_size` exceeds the total
/// backpressure capacity — it pumps to make room instead of surfacing
/// `QueueFull` mid-stream.
#[test]
fn serve_all_survives_tight_backpressure() {
    let config = HOramConfig::new(CAPACITY, PAYLOAD, 256).with_seed(33);
    let oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([9u8; 32]),
    )
    .expect("builds");
    let mut service = OramService::new(
        oram,
        Box::new(FairSharePolicy::default()),
        // batch_size far above what one tenant may ever queue.
        ServiceConfig {
            batch_size: 256,
            max_pending_per_tenant: 10,
            ..ServiceConfig::default()
        },
    );
    service.register_tenant(UserId(0), 0..CAPACITY, Permission::ReadWrite);

    let arrivals = (0..150u64).map(|i| (UserId(0), Request::read(i % 32)));
    let (tickets, report) = service
        .serve_all(arrivals)
        .expect("completes without QueueFull");
    assert_eq!(tickets.len(), 150);
    assert_eq!(report.completed, 150);
    for ticket in tickets {
        assert!(service.take_response(ticket).is_some());
    }
}

/// Unregistered tenants, ACL denials and backpressure all reject without
/// touching the ORAM.
#[test]
fn rejections_produce_no_accesses() {
    let config = HOramConfig::new(CAPACITY, PAYLOAD, 256).with_seed(33);
    let oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([9u8; 32]),
    )
    .expect("builds");
    let mut service = OramService::new(
        oram,
        Box::new(FifoPolicy),
        ServiceConfig {
            batch_size: 8,
            max_pending_per_tenant: 4,
            ..ServiceConfig::default()
        },
    );
    service.register_tenant(UserId(0), 0..16, Permission::ReadOnly);

    assert!(matches!(
        service.submit(UserId(9), Request::read(1u64)),
        Err(ServeError::UnknownTenant(UserId(9)))
    ));
    assert!(matches!(
        service.submit(UserId(0), Request::write(1u64, payload(1))),
        Err(ServeError::Denied(_))
    ));
    assert!(matches!(
        service.submit(UserId(0), Request::read(999u64)),
        Err(ServeError::Denied(_)), // outside the granted range
    ));
    for _ in 0..4 {
        service.submit(UserId(0), Request::read(1u64)).unwrap();
    }
    assert!(matches!(
        service.submit(UserId(0), Request::read(2u64)),
        Err(ServeError::QueueFull {
            tenant: UserId(0),
            limit: 4
        })
    ));

    let stats = service.tenant_stats(UserId(0)).unwrap();
    assert_eq!(stats.denied, 2);
    assert_eq!(stats.rejected_backpressure, 1);
    assert!(service.oram().trace().is_empty(), "rejections reach no bus");
}

/// Graceful degradation through the serving layer: when one shard of the
/// engine dies mid-service, every ticket routed to it resolves to
/// `Err(ServeError::Degraded)` through `take_result`, while the other
/// shards' tenants keep receiving byte-exact answers — and later
/// submissions to the dead shard fail typed at the same surface instead
/// of stalling the pump.
#[test]
fn degraded_shard_fails_typed_while_others_keep_serving() {
    use horam::core::shard::{ShardedConfig, ShardedOram};
    use horam::storage::fault::FaultConfig;

    const SHARDED_CAPACITY: u64 = 256;
    let config = ShardedConfig::new(
        HOramConfig::new(SHARDED_CAPACITY, PAYLOAD, 64).with_seed(33),
        4,
    );
    let mut oram = ShardedOram::new(config, MasterKey::from_bytes([9u8; 32]), |_| {
        MemoryHierarchy::dac2019()
    })
    .expect("sharded engine builds");

    // Ground truth written while healthy, then shard 0's storage dies
    // (every read faults; writes and the layout survive).
    let init: Vec<Request> = (0..SHARDED_CAPACITY)
        .map(|id| Request::write(id, vec![id as u8; PAYLOAD]))
        .collect();
    oram.run_batch(&init).expect("healthy init");
    let dead_shard = 0usize;
    oram.inject_storage_faults(
        dead_shard,
        FaultConfig {
            seed: 41,
            transient_read_permille: 1000,
            ..FaultConfig::default()
        },
    );
    let shard_of: Vec<usize> = (0..SHARDED_CAPACITY)
        .map(|id| oram.mapper().shard_of(BlockId(id)).unwrap() as usize)
        .collect();

    let mut service = OramService::new(
        oram,
        Box::new(FifoPolicy),
        ServiceConfig {
            batch_size: 16,
            ..ServiceConfig::default()
        },
    );
    service.register_tenant(UserId(0), 0..SHARDED_CAPACITY, Permission::ReadWrite);

    let tickets: Vec<(u64, ServiceTicket)> = (0..SHARDED_CAPACITY)
        .map(|id| (id, service.submit(UserId(0), Request::read(id)).unwrap()))
        .collect();
    service
        .pump_until_idle()
        .expect("the pump absorbs the failure");

    assert_eq!(service.degraded_shards(), vec![dead_shard]);
    let mut failed = 0;
    let mut served = 0;
    for (id, ticket) in tickets {
        match service
            .take_result(ticket)
            .expect("every ticket resolves to a response or a typed failure")
        {
            Ok(bytes) => {
                served += 1;
                assert_eq!(bytes, vec![id as u8; PAYLOAD], "block {id} served wrong");
            }
            Err(ServeError::Degraded { shard, .. }) => {
                failed += 1;
                assert_eq!(shard, dead_shard);
                assert_eq!(shard_of[id as usize], dead_shard, "healthy ticket failed");
            }
            Err(other) => panic!("unexpected failure kind: {other}"),
        }
    }
    assert!(failed > 0, "the dead shard must lose tickets");
    assert!(served > 0, "healthy shards must keep serving");

    // Submissions after the quarantine: the dead shard's tickets fail
    // typed at admission into the engine; healthy ones still serve.
    let (dead_id, _) = shard_of
        .iter()
        .enumerate()
        .find(|(_, shard)| **shard == dead_shard)
        .expect("some block maps to the dead shard");
    let (live_id, _) = shard_of
        .iter()
        .enumerate()
        .find(|(_, shard)| **shard != dead_shard)
        .expect("some block maps to a healthy shard");
    let dead_ticket = service
        .submit(UserId(0), Request::read(dead_id as u64))
        .expect("submission is accepted; the failure is typed at serve time");
    let live_ticket = service
        .submit(UserId(0), Request::read(live_id as u64))
        .expect("healthy submission");
    service.pump_until_idle().expect("pump stays live");
    assert!(matches!(
        service.take_result(dead_ticket),
        Some(Err(ServeError::Degraded { shard, .. })) if shard == dead_shard
    ));
    assert_eq!(
        service.take_result(live_ticket).unwrap().unwrap(),
        vec![live_id as u8; PAYLOAD]
    );
}

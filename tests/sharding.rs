//! End-to-end guarantees of the sharded scale-out path: a sharded
//! instance must be functionally indistinguishable from a single
//! instance (byte-identical responses over any request sequence), every
//! shard must independently keep the once-per-period shuffle invariant,
//! and the serving layer's shard router must preserve the single-engine
//! service semantics while aggregating per-shard statistics.

use horam::analysis::leakage::once_per_period;
use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::core::{Permission, UserId};
use horam::crypto::rng::DeterministicRng;
use horam::prelude::*;
use horam::storage::calibration::device_ids;
use horam::workload::{TenantSchedule, ZipfWorkload};
use horam_server::{FairSharePolicy, OramService, ServiceConfig, ServiceTicket};
use rand::Rng;

fn sharded(capacity: u64, memory_slots: u64, shards: u64, seed: u64) -> ShardedOram {
    let config = ShardedConfig::new(
        HOramConfig::new(capacity, 8, memory_slots).with_seed(seed),
        shards,
    );
    ShardedOram::new(config, MasterKey::from_bytes([0x6A; 32]), |_| {
        MemoryHierarchy::dac2019()
    })
    .expect("sharded instance builds")
}

fn single(capacity: u64, memory_slots: u64, seed: u64) -> HOram {
    HOram::new(
        HOramConfig::new(capacity, 8, memory_slots).with_seed(seed),
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([0x6A; 32]),
    )
    .expect("single instance builds")
}

fn mixed_workload(capacity: u64, len: usize, seed: u64) -> Vec<Request> {
    let mut rng = DeterministicRng::from_u64_seed(seed);
    (0..len)
        .map(|_| {
            let id = rng.gen_range(0..capacity);
            if rng.gen_bool(0.3) {
                Request::write(id, vec![rng.gen::<u8>(); 8])
            } else {
                Request::read(id)
            }
        })
        .collect()
}

/// Sharding is a pure scale-out change: the same mixed read/write
/// sequence produces byte-identical responses on one instance and on
/// 2/4/8 shards, across several shuffle periods.
#[test]
fn sharded_responses_match_single_instance() {
    let requests = mixed_workload(256, 400, 41);
    let mut reference = single(256, 64, 17);
    let expected = reference.run_batch(&requests).expect("single runs");
    assert!(reference.stats().shuffles >= 1, "setup: cross periods");

    for shards in [2u64, 4, 8] {
        let mut oram = sharded(256, 64, shards, 17);
        let responses = oram.run_batch(&requests).expect("sharded runs");
        assert_eq!(responses, expected, "{shards}-shard responses diverged");
    }
}

/// Every shard independently honours the once-per-period invariant:
/// exactly one I/O load per cycle, and a shuffle exactly each time the
/// shard's own period budget is spent.
#[test]
fn each_shard_keeps_the_shuffle_schedule() {
    let mut oram = sharded(256, 64, 4, 23);
    let requests = mixed_workload(256, 300, 91);
    oram.run_batch(&requests).expect("runs");

    let period = oram.config().shard_config(0).period_io_limit();
    assert_eq!(period, 8, "setup: 64/4 = 16 slots per shard, period 8");
    let mut total_shuffles = 0;
    for (i, stats) in oram.shard_stats().iter().enumerate() {
        assert_eq!(
            stats.total_io_loads(),
            stats.cycles,
            "shard {i}: one load per cycle"
        );
        assert_eq!(
            stats.shuffles,
            stats.cycles / period,
            "shard {i}: a shuffle exactly once per spent period budget"
        );
        total_shuffles += stats.shuffles;
    }
    assert!(
        total_shuffles >= 4,
        "setup: the workload must cross periods"
    );
}

/// Within a single access period, no shard reads the same storage slot
/// twice — the core obliviousness invariant, checked per shard on its
/// own bus trace.
#[test]
fn within_a_period_no_shard_rereads_a_slot() {
    let mut oram = sharded(256, 256, 4, 29);
    // 24 requests over an 8-block hot set: even if every request landed
    // on one shard, its cycle count stays below the per-shard period
    // budget of 32, so every shard remains inside its first period.
    let requests: Vec<Request> = (0..24u64).map(|i| Request::read(i % 8)).collect();
    oram.run_batch(&requests).expect("runs");

    for (i, shard) in oram.shards().iter().enumerate() {
        assert_eq!(
            shard.stats().shuffles,
            0,
            "shard {i}: setup stays in one period"
        );
        let events = shard.trace().snapshot();
        // One boundary at usize::MAX (clamped to the read count) makes
        // the whole run a single checked window; an empty boundary list
        // would check nothing.
        assert_eq!(
            once_per_period(&events, device_ids::STORAGE, &[usize::MAX]),
            None,
            "shard {i} read a storage slot twice within its period"
        );
    }
}

fn zipf_schedule(capacity: u64, tenants: u32, requests: usize) -> TenantSchedule {
    let mut generator = ZipfWorkload::new(capacity, 1.1, 0.2, 0x51ed).with_payload_len(8);
    TenantSchedule::shard("zipf", &mut generator, tenants, requests)
}

fn collect(
    service_responses: &mut dyn FnMut(ServiceTicket) -> Option<Vec<u8>>,
    tickets: &[ServiceTicket],
) -> Vec<Vec<u8>> {
    tickets
        .iter()
        .map(|t| service_responses(*t).expect("response completed"))
        .collect()
}

/// The shard router behind `OramService` is semantics-preserving: the
/// same tenant schedule (with dedup on) completes with byte-identical
/// per-ticket responses on a single-instance engine and a 4-shard
/// engine.
#[test]
fn shard_router_preserves_service_semantics() {
    let schedule = zipf_schedule(256, 6, 500);
    let config = ServiceConfig {
        batch_size: 32,
        ..ServiceConfig::default()
    };

    let mut single_service = OramService::new(
        single(256, 64, 31),
        Box::new(FairSharePolicy::default()),
        config.clone(),
    );
    let mut sharded_service = OramService::new(
        sharded(256, 64, 4, 31),
        Box::new(FairSharePolicy::default()),
        config,
    );
    for tenant in schedule.tenants() {
        single_service.register_tenant(UserId(tenant), 0..256, Permission::ReadWrite);
        sharded_service.register_tenant(UserId(tenant), 0..256, Permission::ReadWrite);
    }

    let arrivals = || {
        schedule
            .arrivals
            .iter()
            .map(|a| (UserId(a.tenant), a.request.clone()))
    };
    let (single_tickets, _) = single_service.serve_all(arrivals()).expect("single serves");
    let (sharded_tickets, _) = sharded_service
        .serve_all(arrivals())
        .expect("sharded serves");

    let single_responses = collect(&mut |t| single_service.take_response(t), &single_tickets);
    let sharded_responses = collect(&mut |t| sharded_service.take_response(t), &sharded_tickets);
    assert_eq!(
        single_responses, sharded_responses,
        "router changed responses"
    );
}

/// Per-shard statistics surface through the service and sum to the
/// aggregate the existing service accounting tracks.
#[test]
fn service_aggregates_per_shard_stats() {
    let schedule = zipf_schedule(256, 4, 300);
    let mut service = OramService::new(
        sharded(256, 64, 4, 37),
        Box::new(FairSharePolicy::default()),
        ServiceConfig::default(),
    );
    for tenant in schedule.tenants() {
        service.register_tenant(UserId(tenant), 0..256, Permission::ReadWrite);
    }
    let arrivals = schedule
        .arrivals
        .iter()
        .map(|a| (UserId(a.tenant), a.request.clone()));
    service.serve_all(arrivals).expect("serves");

    assert_eq!(service.shard_count(), 4);
    let per_shard = service.shard_stats();
    assert_eq!(per_shard.len(), 4);
    let aggregate = service.stats().oram;
    assert_eq!(
        per_shard.iter().map(|s| s.requests).sum::<u64>(),
        aggregate.requests,
        "per-shard requests must sum to the service aggregate"
    );
    assert_eq!(
        per_shard.iter().map(|s| s.cycles).sum::<u64>(),
        aggregate.cycles,
        "per-shard cycles must sum to the service aggregate"
    );
    assert!(
        per_shard.iter().filter(|s| s.requests > 0).count() >= 2,
        "a Zipf schedule must touch several shards"
    );
}

/// The hot-shard stress: a schedule funnelled entirely into one shard
/// (via the instance's own mapper) drives work on that shard alone —
/// the router never touches banks that own none of the addressed blocks.
#[test]
fn hot_shard_schedule_stays_on_one_shard() {
    let mut oram = sharded(256, 64, 4, 43);
    let target = 2usize;
    let mut generator = ZipfWorkload::new(256, 1.1, 0.0, 7).with_payload_len(8);
    let mapper = oram.mapper().clone();
    let schedule = TenantSchedule::single_shard(
        "hot-shard",
        &mut generator,
        2,
        40,
        |id| mapper.shard_of(id).expect("in range") as usize,
        target,
    );
    let requests: Vec<Request> = schedule
        .arrivals
        .iter()
        .map(|a| a.request.clone())
        .collect();
    oram.run_batch(&requests).expect("runs");

    for (i, stats) in oram.shard_stats().iter().enumerate() {
        if i == target {
            assert_eq!(stats.requests, 40, "target shard serves everything");
        } else {
            assert_eq!(stats.cycles, 0, "shard {i} must stay idle");
        }
    }
    // Scale-out degenerates gracefully: the shared clock equals the hot
    // shard's timeline.
    assert_eq!(
        oram.clock().now(),
        oram.shards()[target].clock().now(),
        "frontier follows the only busy shard"
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For arbitrary read/write interleavings and shard counts, the
        /// sharded instance's responses are byte-identical to a single
        /// instance over the same sequence (both against tiny memory
        /// trees, so every shard crosses shuffle periods).
        #[test]
        fn sharded_equals_single_for_arbitrary_sequences(
            ops in proptest::collection::vec((0u64..64, proptest::option::of(any::<u8>())), 1..70),
            shards in 2u64..5,
        ) {
            let requests: Vec<Request> = ops
                .iter()
                .map(|(id, write)| match write {
                    Some(byte) => Request::write(*id, vec![*byte; 8]),
                    None => Request::read(*id),
                })
                .collect();

            let mut reference = single(64, 16, 53);
            let expected = reference.run_batch(&requests).expect("single runs");

            let mut oram = sharded(64, 16, shards, 53);
            let responses = oram.run_batch(&requests).expect("sharded runs");
            prop_assert_eq!(responses, expected);
        }

        /// The once-per-period schedule holds per shard for arbitrary
        /// read sequences: one load per cycle, one shuffle per spent
        /// period budget, on every shard.
        #[test]
        fn per_shard_period_schedule_holds(
            ids in proptest::collection::vec(0u64..128, 1..60),
            shards in 2u64..5,
        ) {
            let mut oram = sharded(128, 32, shards, 59);
            let requests: Vec<Request> = ids.into_iter().map(Request::read).collect();
            oram.run_batch(&requests).expect("runs");
            let period = oram.config().shard_config(0).period_io_limit();
            for stats in oram.shard_stats() {
                prop_assert_eq!(stats.total_io_loads(), stats.cycles);
                prop_assert_eq!(stats.shuffles, stats.cycles / period);
            }
        }
    }
}

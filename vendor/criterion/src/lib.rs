//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Provides enough of criterion's API for the workspace's benches to
//! compile and produce useful wall-clock numbers offline: `Criterion`,
//! benchmark groups, `Throughput`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! calibrated loop reporting the mean time per iteration — no statistics,
//! no plots, no comparison to previous runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput hint attached to a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter, like `shuffle/1024`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Measurement driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_hint: u64,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, first warming up and sizing the iteration count so
    /// the measured window is long enough to be meaningful.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up / calibration: run until ~20ms of work or the hint cap.
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < Duration::from_millis(20)
            && calibration_iters < self.iters_hint
        {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = calibration_start.elapsed() / calibration_iters.max(1) as u32;

        // Measured window: aim for ~100ms, capped by the sample-size hint.
        let target = Duration::from_millis(100);
        let iters = if per_iter.is_zero() {
            self.iters_hint
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, self.iters_hint as u128)
                as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn report(name: &str, throughput: Option<Throughput>, measured: Option<(Duration, u64)>) {
    let Some((elapsed, iters)) = measured else {
        println!("{name:<40} (no measurement)");
        return;
    };
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{name:<40} {:>12.3} µs/iter{rate}   ({iters} iters)",
        per_iter * 1e6
    );
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10_000,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            iters_hint: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        report(name, None, bencher.measured);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 10_000,
        }
    }
}

/// A group of related benchmarks sharing throughput/sizing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters_hint: self.sample_size,
            measured: None,
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            bencher.measured,
        );
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters_hint: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        report(
            &format!("{}/{id}", self.name),
            self.throughput,
            bencher.measured,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}

//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free locking
//! API (`lock()` returns the guard directly; poisoning is ignored, which
//! matches `parking_lot` semantics).

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

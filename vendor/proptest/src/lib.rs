//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`], integer
//! range strategies, tuple strategies, [`collection::vec`],
//! [`option::of`] and [`any`].
//!
//! Differences from real proptest, deliberately accepted for a shim:
//! cases are generated from a **fixed deterministic seed** (identical
//! inputs on every run — reproducible CI), there is **no shrinking** (a
//! failing case panics with its index so it can be replayed), and
//! assertion macros panic instead of returning `Err`.

use std::ops::{Range, RangeInclusive};

/// Strategy trait: something that can produce values of `Self::Value`.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A value generator (shim flavour of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (shim flavour of
        /// `Strategy::prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Uniform choice between boxed strategies over one value type —
    /// what the [`prop_oneof!`](crate::prop_oneof) macro builds.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .finish()
        }
    }

    /// Builds a uniform [`Union`] from its arms.
    ///
    /// # Panics
    ///
    /// Panics on an empty arm list.
    pub fn union<V>(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof needs at least one arm");
        Union { arms }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u128) as usize;
            self.arms[pick].sample(rng)
        }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Per-`proptest!` configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim trades coverage for
            // CI time since it cannot shrink failures anyway.
            Self { cases: 32 }
        }
    }

    /// SplitMix64 generator driving all shim strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a value uniform in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u128) -> u128 {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary + Copy + Default, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Constant strategy: always yields a clone of its value (shim flavour
/// of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies producing the same value type.
/// Unlike real proptest there are no weights — every arm is equally
/// likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$(::std::boxed::Box::new($strat)),+])
    };
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy: `None` one time in four, like real proptest's
    /// default `of` weighting (75% `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
    };
}

/// Property-test assertion; panics on failure (the shim has no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-test equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property-test inequality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal test that runs the body over `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Fixed seed: reproducible cases on every run. Vary per
                // property via the test name so sibling tests differ.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                    });
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: property {} failed at case {case}/{} (seed {seed:#x})",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u8..=255, flip in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            let _ = (y, flip);
        }

        #[test]
        fn composite_strategies(
            ops in crate::collection::vec((0u64..32, crate::option::of(any::<u8>())), 1..60),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 60);
            for (id, byte) in ops {
                prop_assert!(id < 32);
                let _ = byte;
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: the [`RngCore`] /
//! [`CryptoRng`] / [`SeedableRng`] traits and the [`Rng`] extension trait
//! with `gen`, `gen_range`, `gen_bool` and `fill`. Integer ranges sample by
//! wide (128-bit) modulo reduction — bias is negligible for simulator and
//! test purposes — and floats sample uniformly from `[0, 1)` with 53 bits.
//!
//! The workspace's actual randomness source is
//! `oram_crypto::rng::DeterministicRng` (pure ChaCha20), which implements
//! these traits; nothing here is used for key material.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this shim).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`fill_bytes`](Self::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker for cryptographically secure generators.
pub trait CryptoRng {}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and seeds from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a range (`rand`'s `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform sample from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from the closed range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

fn wide_random<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high - low) as u128;
                low + (wide_random(rng) % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let span = (high - low) as u128 + 1;
                low + (wide_random(rng) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as $wide - low as $wide) as u128;
                (low as $wide + (wide_random(rng) % span) as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let span = (high as $wide - low as $wide) as u128 + 1;
                (low as $wide + (wide_random(rng) % span) as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range in gen_range");
        low + f64::standard_sample(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        wide_random(rng)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> StandardSample for [u8; N] {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Convenience extension methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::standard_sample(self) < p
    }

    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = rng.gen_range(0..=255u8);
            let _ = y;
            let z: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

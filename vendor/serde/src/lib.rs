//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a tiny value-tree serialization framework that is API-compatible with
//! the slice of serde the codebase uses: the [`Serialize`] / [`Deserialize`]
//! traits, the derive macros of the same names (from the sibling
//! `serde_derive` shim), and a JSON front-end in the `serde_json` shim.
//!
//! Instead of serde's visitor architecture, types convert to and from a
//! concrete [`Value`] tree. The derives follow serde's default external
//! tagging, so the JSON produced for this workspace's types matches what
//! real serde would emit (modulo map ordering, which the derive keeps in
//! declaration order anyway).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON-shaped number (kept wide enough to round-trip `u64`/`i64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

/// A self-describing value tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected map with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Interprets the value as a sequence.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }

    /// Interprets the value as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }

    /// Interprets the value as a map.
    pub fn as_map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::msg(format!("expected map, got {other:?}"))),
        }
    }
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Num(Number::U(u)) => *u,
                    Value::Num(Number::I(i)) if *i >= 0 => *i as u64,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!(
                        concat!("value {} out of range for ", stringify!($t)), wide)))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Num(Number::U(v as u64)) } else { Value::Num(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::Num(Number::I(i)) => *i,
                    Value::Num(Number::U(u)) => i64::try_from(*u)
                        .map_err(|_| Error::msg(format!("value {u} out of i64 range")))?,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::msg(format!(
                        concat!("value {} out of range for ", stringify!($t)), wide)))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(Number::F(f)) => Ok(*f as $t),
                    Value::Num(Number::U(u)) => Ok(*u as $t),
                    Value::Num(Number::I(i)) => Ok(*i as $t),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = value
            .as_seq()?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq()?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected}, got {}", seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn out_of_range_is_an_error() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
    }
}

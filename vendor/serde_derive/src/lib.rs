//! Vendored minimal `serde_derive` stand-in.
//!
//! Hand-rolled (no `syn`/`quote` available offline) derive macros that
//! generate `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored value-tree `serde` shim. Supports exactly the shapes this
//! workspace uses: non-generic named structs, tuple structs, unit structs,
//! and enums with unit / tuple / struct variants, all externally tagged
//! like real serde's default.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (value-tree shim flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives `serde::Deserialize` (value-tree shim flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => {
            return format!("::core::compile_error!({message:?});")
                .parse()
                .unwrap()
        }
    };
    let code = if serialize {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` not supported"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("serde shim derive: unexpected token {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => {
                    return Err(format!(
                        "serde shim derive: expected enum body, got {other:?}"
                    ))
                }
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!(
            "serde shim derive: expected struct or enum, got `{other}`"
        )),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *pos += 1;
                }
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            Ok(i.to_string())
        }
        other => Err(format!(
            "serde shim derive: expected identifier, got {other:?}"
        )),
    }
}

/// Splits a field-list token stream at top-level commas (angle-bracket
/// depth aware, since `,` inside `HashMap<K, V>` is not a field boundary).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(token);
    }
    chunks.retain(|chunk| !chunk.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&chunk, &mut pos);
        names.push(expect_ident(&chunk, &mut pos)?);
    }
    Ok(Fields::Named(names))
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&chunk, &mut pos);
        let name = expect_ident(&chunk, &mut pos)?;
        let fields = match chunk.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_named_fields(g.stream())?
            }
            _ => Fields::Unit, // unit variant (an `= discr` tail would also land here)
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    map_literal(names.iter().map(|f| (f.clone(), format!("&self.{f}"))))
                }
            };
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
            .unwrap();
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => write!(
                        arms,
                        "Self::{variant} => \
                         ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                    )
                    .unwrap(),
                    Fields::Tuple(1) => write!(
                        arms,
                        "Self::{variant}(f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{variant}\"), \
                         ::serde::Serialize::to_value(f0))]),"
                    )
                    .unwrap(),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        write!(
                            arms,
                            "Self::{variant}({binds}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{variant}\"), \
                             ::serde::Value::Seq(::std::vec![{items}]))]),",
                            binds = binders.join(", "),
                            items = items.join(", "),
                        )
                        .unwrap();
                    }
                    Fields::Named(names) => {
                        let inner = map_literal(names.iter().map(|f| (f.clone(), f.clone())));
                        write!(
                            arms,
                            "Self::{variant} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{variant}\"), {inner})]),",
                            binds = names.join(", "),
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            )
            .unwrap();
        }
    }
    out
}

fn map_literal(fields: impl Iterator<Item = (String, String)>) -> String {
    let entries: Vec<String> = fields
        .map(|(key, expr)| {
            format!(
                "(::std::string::String::from(\"{key}\"), ::serde::Serialize::to_value({expr}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match value {{ ::serde::Value::Null => ::std::result::Result::Ok(Self), \
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"expected null for {name}, got {{other:?}}\"))) }}"
                ),
                Fields::Tuple(1) => {
                    "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(value)?))"
                        .to_string()
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                        .collect();
                    format!(
                        "let seq = value.as_seq()?; \
                         if seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::msg(::std::format!(\
                         \"expected {n} elements for {name}, got {{}}\", seq.len()))); }} \
                         ::std::result::Result::Ok(Self({items}))",
                        items = items.join(", "),
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
                }
            };
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(value: &::serde::Value) \
                   -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
            )
            .unwrap();
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => write!(
                        unit_arms,
                        "\"{variant}\" => return ::std::result::Result::Ok(Self::{variant}),"
                    )
                    .unwrap(),
                    Fields::Tuple(1) => write!(
                        tagged_arms,
                        "\"{variant}\" => return ::std::result::Result::Ok(\
                         Self::{variant}(::serde::Deserialize::from_value(inner)?)),"
                    )
                    .unwrap(),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        write!(
                            tagged_arms,
                            "\"{variant}\" => {{ let seq = inner.as_seq()?; \
                             if seq.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::msg(::std::format!(\
                             \"expected {n} elements for {name}::{variant}, got {{}}\", \
                             seq.len()))); }} \
                             return ::std::result::Result::Ok(Self::{variant}({items})); }}",
                            items = items.join(", "),
                        )
                        .unwrap();
                    }
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        write!(
                            tagged_arms,
                            "\"{variant}\" => return ::std::result::Result::Ok(\
                             Self::{variant} {{ {} }}),",
                            inits.join(", "),
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(value: &::serde::Value) \
                   -> ::std::result::Result<Self, ::serde::Error> {{\
                     if let ::serde::Value::Str(tag) = value {{\
                       match tag.as_str() {{ {unit_arms} _ => {{}} }} }}\
                     if let ::serde::Value::Map(entries) = value {{\
                       if entries.len() == 1 {{\
                         let (tag, inner) = &entries[0];\
                         match tag.as_str() {{ {tagged_arms} _ => {{}} }} }} }}\
                     ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                       \"no variant of {name} matches {{value:?}}\"))) }} }}"
            )
            .unwrap();
        }
    }
    out
}

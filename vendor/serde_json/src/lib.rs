//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde` shim's value tree to JSON text and
//! parses it back: `to_string`, `to_string_pretty` and `from_str`, which is
//! all this workspace uses. The emitter writes integers exactly (no float
//! round-trip for `u64`), and the parser is a plain recursive-descent JSON
//! reader with `\uXXXX` escape support.

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// A JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the shim's value model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, indented JSON.
///
/// # Errors
///
/// Never fails for the shim's value model (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(Into::into)
}

// ---------------------------------------------------------------- emitter

fn emit(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Num(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Num(Number::F(f)) => {
            if f.is_finite() {
                let text = f.to_string();
                out.push_str(&text);
                // Keep the float/integer distinction for re-parsing.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => emit_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            emit(&items[i], out, indent, depth + 1)
        }),
        Value::Map(entries) => {
            emit_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (key, item) = &entries[i];
                emit_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent, depth + 1)
            })
        }
    }
}

fn emit_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut emit_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        emit_item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("surrogate \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                None => return Err(Error("unterminated string".into())),
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        let number = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|e| Error(format!("bad number {text}: {e}")))?,
            )
        } else if text.starts_with('-') {
            Number::I(
                text.parse::<i64>()
                    .map_err(|e| Error(format!("bad number {text}: {e}")))?,
            )
        } else {
            Number::U(
                text.parse::<u64>()
                    .map_err(|e| Error(format!("bad number {text}: {e}")))?,
            )
        };
        Ok(Value::Num(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Value::Map(vec![
            ("label".into(), Value::Str("zipf α=1.1 \"hot\"".into())),
            (
                "requests".into(),
                Value::Seq(vec![
                    Value::Num(Number::U(u64::MAX)),
                    Value::Num(Number::I(-5)),
                    Value::Num(Number::F(1.5)),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(value.clone())).unwrap();
        let pretty = to_string_pretty(&Raw(value.clone())).unwrap();
        for text in [compact, pretty] {
            let mut parser = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            assert_eq!(parser.parse_value().unwrap(), value, "from {text}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<Option<u64>> = vec![Some(3), None, Some(u64::MAX)];
        let json = to_string(&v).unwrap();
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 trailing").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
